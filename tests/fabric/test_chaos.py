"""Fault-injection integration: faulted campaigns converge bit-identically.

The contract under test (ISSUE/DESIGN.md §13): for any planned fault —
kill -9 mid-unit, a wedged-but-heartbeating stall, silent heartbeat
loss, a crash on either side of the commit — a campaign run on the
fabric produces a ``deterministic_view`` equal to an unfaulted serial
run, with every unit committed exactly once and the recovery visibly
recorded in the queue's counters.
"""

import numpy as np
import pytest

from repro.fabric import (
    ChaosPlan,
    ChaosRule,
    FabricExecutor,
    FabricSupervisor,
    WorkQueue,
)
from repro.parallel.campaign import (
    CampaignSpec,
    deterministic_view,
    plan_campaign,
    run_campaign,
)
from repro.store.ids import run_id_for

SPEC = CampaignSpec.from_dict(
    {
        "name": "chaos",
        "seed": 11,
        "defaults": {
            "explainer_samples": 15,
            "generalizer_samples": 0,
            "generator": {
                "max_subspaces": 1,
                "tree_extra_samples": 40,
                "significance_pairs": 12,
            },
        },
        "jobs": [
            {
                "name": f"band-{i}",
                "problem": {
                    "factory": "repro.parallel._testing:band_problem",
                    "kwargs": {"dim": 2, "lo": 0.5 + 0.05 * i, "hi": 0.9},
                },
            }
            for i in range(3)
        ],
    }
)

LEASE = 1.0


@pytest.fixture(scope="module")
def baseline():
    return deterministic_view(run_campaign(SPEC, workers=1))


def _run_on_fabric(tmp_path, plan, workers, unit_ttl=60.0):
    """One campaign on a fresh chaos-armed fabric; returns its status."""
    plan_path = plan.write(tmp_path / "chaos.json")
    queue = WorkQueue(
        tmp_path, unit_ttl=unit_ttl, backoff_base=0.05, default_max_attempts=8
    )
    supervisor = FabricSupervisor(
        tmp_path,
        workers=workers,
        lease_seconds=LEASE,
        unit_ttl=unit_ttl,
        chaos_path=plan_path,
    )
    supervisor.start()
    try:
        executor = FabricExecutor(queue, supervisor=supervisor)
        report = run_campaign(SPEC, executor=executor)
    finally:
        supervisor.stop()
    return report, queue, supervisor


def _assert_exactly_once(queue):
    """Every planned run ID is committed exactly once, none twice."""
    for payload in plan_campaign(SPEC):
        row = queue.unit(run_id_for(payload))
        assert row["status"] == "done"
        assert row["commit_count"] == 1, (
            f"unit {row['unit_id']} committed {row['commit_count']} times"
        )


class TestSeededKill:
    def test_kill_at_seeded_unit_index_converges(self, tmp_path, baseline):
        """kill -9 at a seeded-random unit K: restart, retry, identical."""
        rng = np.random.default_rng(7)
        kill_index = 1 + int(rng.integers(len(SPEC.jobs)))
        # One worker claims the units in order, so its Kth claim IS the
        # campaign's Kth unit — the seeded index maps exactly.
        plan = ChaosPlan(
            [ChaosRule(action="kill", worker="w0.g0", unit_index=kill_index)]
        )
        report, queue, supervisor = _run_on_fabric(tmp_path, plan, workers=1)
        assert deterministic_view(report) == baseline
        _assert_exactly_once(queue)
        counters = queue.status()["counters"]
        assert counters["retries"] >= 1, "the kill must be visible as a retry"
        assert counters["lease_expiries"] >= 1
        assert counters["commits"] == len(SPEC.jobs)
        assert supervisor.restarts >= 1, "the dead worker must be replaced"


class TestFaultMatrix:
    @pytest.mark.parametrize(
        "fault", ["kill", "drop_heartbeat", "crash_before_commit"]
    )
    def test_recovered_fault_converges_with_a_retry(
        self, tmp_path, baseline, fault
    ):
        """Faults that lose work force a retry and still converge."""
        # Pin the fault to every first-generation worker's first claim:
        # whichever slot wins the race faults, so injection is certain;
        # restarted workers carry a new generation and never re-fire.
        stall = 3.0 * LEASE if fault == "drop_heartbeat" else 0.0
        plan = ChaosPlan(
            [
                ChaosRule(
                    action=fault,
                    worker=f"w{slot}.g0",
                    unit_index=1,
                    stall_seconds=stall,
                )
                for slot in range(2)
            ]
        )
        report, queue, _ = _run_on_fabric(tmp_path, plan, workers=2)
        assert deterministic_view(report) == baseline
        _assert_exactly_once(queue)
        counters = queue.status()["counters"]
        assert counters["retries"] >= 1
        assert counters["commits"] == len(SPEC.jobs)

    def test_stalled_worker_is_unstuck_by_the_ttl(self, tmp_path, baseline):
        """A wedged-but-heartbeating worker loses the unit at the TTL."""
        plan = ChaosPlan(
            [
                ChaosRule(
                    action="stall",
                    worker=f"w{slot}.g0",
                    unit_index=1,
                    stall_seconds=6.0 * LEASE,
                )
                for slot in range(2)
            ]
        )
        # TTL must bind below the stall, or the stalled worker's
        # heartbeats would hold the lease for the full six seconds.
        report, queue, _ = _run_on_fabric(
            tmp_path, plan, workers=2, unit_ttl=2.0 * LEASE
        )
        assert deterministic_view(report) == baseline
        _assert_exactly_once(queue)
        counters = queue.status()["counters"]
        assert counters["lease_expiries"] >= 1
        assert counters["commits"] == len(SPEC.jobs)

    def test_crash_after_commit_never_recommits(self, tmp_path, baseline):
        """Work that committed before the crash is never redone-and-
        recommitted: commit_count stays 1 for every unit."""
        plan = ChaosPlan(
            [
                ChaosRule(
                    action="crash_after_commit",
                    worker=f"w{slot}.g0",
                    unit_index=1,
                )
                for slot in range(2)
            ]
        )
        report, queue, _ = _run_on_fabric(tmp_path, plan, workers=2)
        assert deterministic_view(report) == baseline
        _assert_exactly_once(queue)
        assert queue.status()["counters"]["commits"] == len(SPEC.jobs)
