"""FabricExecutor + supervisor: determinism, degradation, restarts."""

import numpy as np
import pytest

from repro.exceptions import FabricError
from repro.fabric import (
    FabricExecutor,
    FabricSupervisor,
    WorkQueue,
    local_fabric,
)
from repro.parallel._testing import band_problem
from repro.parallel.executor import make_executor
from repro.parallel.work import EvalUnit, execute_unit


@pytest.fixture(scope="module")
def problem():
    return band_problem()


def _units(problem, count=5, points=16, seed=0):
    rng = np.random.default_rng(seed)
    dim = len(problem.input_names)
    return [EvalUnit(points=rng.random((points, dim))) for _ in range(count)]


def _assert_same_results(serial, fabric):
    assert len(serial) == len(fabric)
    for expected, got in zip(serial, fabric):
        assert np.array_equal(expected["benchmark"], got["benchmark"])
        assert np.array_equal(expected["heuristic"], got["heuristic"])
        assert np.array_equal(expected["feasible"], got["feasible"])


class TestLocalFabric:
    def test_results_bit_identical_to_serial(self, problem):
        units = _units(problem)
        serial = [execute_unit(unit, problem) for unit in units]
        executor = local_fabric(2, spec=problem.spec, lease_seconds=5.0)
        try:
            fabric = executor.map_units(units)
            status = executor.queue.status()
        finally:
            executor.close()
        _assert_same_results(serial, fabric)
        assert status["counters"]["commits"] == len(units)
        assert status["units"]["done"] == len(units)

    def test_make_executor_fabric_branch(self, problem):
        executor = make_executor("fabric", 1, problem)
        try:
            assert isinstance(executor, FabricExecutor)
            assert executor.in_process is False
            (result,) = executor.map_units(_units(problem, count=1))
        finally:
            executor.close()
        (expected,) = [
            execute_unit(unit, problem)
            for unit in _units(problem, count=1)
        ]
        assert np.array_equal(expected["benchmark"], result["benchmark"])

    def test_close_tears_down_the_fleet(self, problem):
        executor = local_fabric(1, spec=problem.spec)
        supervisor = executor.supervisor
        assert supervisor.alive_workers() == 1
        executor.close()
        assert supervisor.alive_workers() == 0


class TestGracefulDegradation:
    def test_inline_fallback_without_any_fleet(self, tmp_path, problem):
        """A dead (here: never-started) fleet still converges inline."""
        queue = WorkQueue(tmp_path)
        executor = FabricExecutor(queue, problem_spec=problem.spec)
        units = _units(problem, count=3)
        fabric = executor.map_units(units)
        serial = [execute_unit(unit, problem) for unit in units]
        _assert_same_results(serial, fabric)
        status = queue.status()
        assert status["units"]["done"] == len(units)
        assert status["counters"]["commits"] == len(units)

    def test_no_fallback_raises_instead_of_hanging(self, tmp_path, problem):
        queue = WorkQueue(tmp_path)
        executor = FabricExecutor(
            queue,
            problem_spec=problem.spec,
            inline_fallback=False,
            unit_timeout=0.2,
        )
        with pytest.raises(FabricError):
            executor.map_units(_units(problem, count=1))


class TestQuarantinePropagation:
    def test_poison_unit_fails_the_campaign_loudly(self, tmp_path):
        """A unit that can never succeed quarantines and raises."""
        from repro.parallel.spec import ProblemSpec
        from repro.parallel.work import CampaignUnit

        queue = WorkQueue(tmp_path, backoff_base=0.01)
        executor = FabricExecutor(queue, max_attempts=2)
        poison = CampaignUnit(
            {
                "name": "poison",
                "problem": ProblemSpec(
                    factory="repro.parallel._testing:flaky_problem",
                    kwargs={"flag_path": str(tmp_path / "never-created")},
                ).to_dict(),
                "config": {},
                "seed": 1,
            }
        )
        with pytest.raises(FabricError, match="quarantined after 2 attempts"):
            executor.map_units([poison])
        status = queue.status()
        assert status["units"]["quarantined"] == 1
        assert status["counters"]["quarantines"] == 1
        assert status["counters"]["retries"] == 1
        (entry,) = status["quarantined"]
        assert "injected mid-campaign crash" in entry["error"]


class TestSupervisor:
    def test_restarts_a_killed_worker_with_a_new_generation(self, tmp_path):
        supervisor = FabricSupervisor(tmp_path, workers=2, poll_interval=0.01)
        supervisor.start()
        try:
            assert supervisor.alive_workers() == 2
            _, process = supervisor._slots[0]
            process.kill()
            process.join(timeout=5.0)
            restarted = supervisor.poll()
            assert restarted == ["w0.g1"]
            assert supervisor.alive_workers() == 2
            assert supervisor.restarts == 1
            status = supervisor.status()
            assert status["slots"]["w0"]["generation"] == 1
            assert status["slots"]["w1"]["generation"] == 0
            # the dead incarnation is marked in the queue's worker table
            states = {
                w["worker_id"]: w["state"] for w in supervisor.queue.workers()
            }
            assert states.get("w0.g0") == "dead"
        finally:
            supervisor.stop()

    def test_restart_budget_is_bounded(self, tmp_path):
        supervisor = FabricSupervisor(
            tmp_path, workers=1, poll_interval=0.01, max_restarts_per_slot=2
        )
        supervisor.start()
        try:
            for _ in range(2):
                _, process = supervisor._slots[0]
                process.kill()
                process.join(timeout=5.0)
                assert supervisor.poll()  # restarted
            _, process = supervisor._slots[0]
            process.kill()
            process.join(timeout=5.0)
            assert supervisor.poll() == []  # budget exhausted: stays down
            assert supervisor.alive_workers() == 0
        finally:
            supervisor.stop()

    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(FabricError):
            FabricSupervisor(tmp_path, workers=0)
