"""WorkQueue state machine: leases, heartbeats, retry, quarantine.

Every test drives the queue's clock through the ``now`` parameters, so
lease expiry, backoff gating, and TTL capping are exact — no sleeps.
"""

import pytest

from repro.exceptions import FabricError
from repro.fabric.queue import WorkQueue, fabric_db_path


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue(
        tmp_path, default_max_attempts=3, backoff_base=1.0, backoff_cap=8.0,
        unit_ttl=100.0,
    )


def _enqueue(queue, unit_id="u1", now=0.0, **kwargs):
    return queue.enqueue(unit_id, "eval", {"points": [1.0]}, now=now, **kwargs)


class TestEnqueue:
    def test_new_unit_is_pending(self, queue):
        assert _enqueue(queue) == "pending"
        assert queue.unit("u1")["status"] == "pending"
        assert queue.status()["counters"]["enqueued"] == 1

    def test_enqueue_is_idempotent(self, queue):
        _enqueue(queue)
        assert _enqueue(queue) == "pending"
        assert queue.status()["counters"]["enqueued"] == 1

    def test_enqueue_reports_done_for_committed_unit(self, queue):
        _enqueue(queue)
        claimed = queue.claim("w", 10.0, now=0.0)
        queue.commit(claimed["unit_id"], "w", {"answer": 1}, now=1.0)
        assert _enqueue(queue, now=2.0) == "done"

    def test_db_file_lives_in_the_directory(self, queue, tmp_path):
        assert queue.db_path == fabric_db_path(tmp_path)
        assert queue.db_path.exists()


class TestClaim:
    def test_claim_returns_payload_and_attempt(self, queue):
        _enqueue(queue)
        claimed = queue.claim("w", 10.0, now=0.0)
        assert claimed["unit_id"] == "u1"
        assert claimed["payload"] == {"points": [1.0]}
        assert claimed["attempts"] == 1
        assert queue.unit("u1")["status"] == "leased"
        assert queue.unit("u1")["lease_owner"] == "w"

    def test_claim_is_exclusive(self, queue):
        _enqueue(queue)
        assert queue.claim("w1", 10.0, now=0.0) is not None
        assert queue.claim("w2", 10.0, now=0.0) is None

    def test_claim_orders_by_enqueue_time(self, queue):
        _enqueue(queue, unit_id="late", now=5.0)
        _enqueue(queue, unit_id="early", now=1.0)
        assert queue.claim("w", 10.0, now=6.0)["unit_id"] == "early"

    def test_backoff_gates_a_requeued_unit(self, queue):
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        queue.fail("u1", "w", "boom", now=1.0)  # backoff_base=1 -> +1s
        assert queue.claim("w", 10.0, now=1.5) is None
        assert queue.claim("w", 10.0, now=2.5)["attempts"] == 2


class TestHeartbeat:
    def test_heartbeat_extends_the_lease(self, queue):
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        assert queue.heartbeat("u1", "w", 10.0, now=8.0)
        assert queue.reap(now=15.0) == []  # deadline moved to 18

    def test_heartbeat_fails_for_non_owner(self, queue):
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        assert not queue.heartbeat("u1", "intruder", 10.0, now=1.0)

    def test_heartbeat_fails_after_reap(self, queue):
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        assert queue.reap(now=11.0) == ["u1"]
        assert not queue.heartbeat("u1", "w", 10.0, now=11.5)

    def test_ttl_caps_renewal(self, queue):
        """A wedged-but-heartbeating worker still loses the lease."""
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)  # unit_ttl=100 -> hard stop at 100
        assert queue.heartbeat("u1", "w", 10.0, now=95.0)
        assert queue.unit("u1")["lease_deadline"] == 100.0  # capped
        assert not queue.heartbeat("u1", "w", 10.0, now=101.0)
        assert queue.reap(now=101.0) == ["u1"]


class TestCommit:
    def test_commit_records_result_exactly_once(self, queue):
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        assert queue.commit("u1", "w", {"answer": 42}, now=1.0)
        row = queue.unit("u1")
        assert row["status"] == "done"
        assert row["commit_count"] == 1
        assert queue.result("u1") == {"answer": 42}

    def test_late_commit_is_a_counted_noop(self, queue):
        """A reaped worker finishing late never double-writes."""
        _enqueue(queue)
        queue.claim("w1", 10.0, now=0.0)
        queue.reap(now=11.0)
        queue.claim("w2", 10.0, now=12.0)
        assert queue.commit("u1", "w2", {"answer": 42}, now=13.0)
        # w1 wakes up and commits the identical (deterministic) result
        assert not queue.commit("u1", "w1", {"answer": 42}, now=14.0)
        row = queue.unit("u1")
        assert row["commit_count"] == 1
        assert row["late_commits"] == 1
        assert row["committed_by"] == "w2"
        assert queue.status()["counters"]["late_commits"] == 1

    def test_commit_from_a_reaped_lease_still_wins_if_first(self, queue):
        _enqueue(queue)
        queue.claim("w1", 10.0, now=0.0)
        queue.reap(now=11.0)  # unit pending again, nobody re-claimed yet
        assert queue.commit("u1", "w1", {"answer": 42}, now=12.0)
        assert queue.unit("u1")["status"] == "done"

    def test_commit_unknown_unit_raises(self, queue):
        with pytest.raises(FabricError):
            queue.commit("ghost", "w", {}, now=0.0)


class TestFailAndQuarantine:
    def test_fail_requeues_with_exponential_backoff(self, queue):
        _enqueue(queue, max_attempts=5)
        queue.claim("w", 10.0, now=0.0)
        queue.fail("u1", "w", "boom", now=1.0)
        assert queue.unit("u1")["error"] == "boom"
        queue.claim("w", 10.0, now=2.5)
        queue.fail("u1", "w", "boom", now=3.0)  # attempt 2 -> delay 2s
        row = queue.unit("u1")
        assert row["status"] == "pending"
        assert queue.claim("w", 10.0, now=4.5) is None
        assert queue.claim("w", 10.0, now=5.5) is not None

    def test_backoff_is_capped(self, queue):
        assert queue.backoff_cap == 8.0
        _enqueue(queue, max_attempts=20)
        now = 0.0
        for _ in range(6):  # uncapped would reach 32s by attempt 6
            queue.claim("w", 10.0, now=now)
            queue.fail("u1", "w", "boom", now=now)
            now += 100.0
        unit = queue.unit("u1")
        assert unit["status"] == "pending"
        # last fail at now=500 -> claimable at 508, not 532
        assert queue.claim("w", 10.0, now=509.0) is not None

    def test_quarantine_after_max_attempts(self, queue):
        _enqueue(queue)  # max_attempts=3
        for attempt in range(3):
            now = float(attempt * 100)
            queue.claim("w", 10.0, now=now)
            status = queue.fail("u1", "w", "poison", now=now + 1)
        assert status == "quarantined"
        row = queue.unit("u1")
        assert row["status"] == "quarantined"
        assert row["attempts"] == 3
        assert queue.claim("w", 10.0, now=1000.0) is None
        assert queue.status()["counters"]["quarantines"] == 1

    def test_fail_by_non_owner_changes_nothing(self, queue):
        _enqueue(queue)
        queue.claim("w1", 10.0, now=0.0)
        assert queue.fail("u1", "w2", "not mine", now=1.0) == "leased"
        assert queue.unit("u1")["status"] == "leased"

    def test_reenqueue_revives_a_quarantined_unit(self, queue):
        _enqueue(queue)
        for attempt in range(3):
            now = float(attempt * 100)
            queue.claim("w", 10.0, now=now)
            queue.fail("u1", "w", "poison", now=now + 1)
        assert _enqueue(queue, now=1000.0) == "pending"
        row = queue.unit("u1")
        assert row["attempts"] == 0
        assert row["error"] is None
        assert queue.status()["counters"]["revived"] == 1
        assert queue.claim("w", 10.0, now=1000.0) is not None


class TestReaper:
    def test_reap_requeues_expired_leases(self, queue):
        _enqueue(queue, unit_id="a", now=0.0)
        _enqueue(queue, unit_id="b", now=0.0)
        queue.claim("w1", 10.0, now=0.0)
        queue.claim("w2", 50.0, now=0.0)
        assert queue.reap(now=11.0) == ["a"]
        assert queue.unit("a")["status"] == "pending"
        assert queue.unit("b")["status"] == "leased"
        counters = queue.status()["counters"]
        assert counters["lease_expiries"] == 1
        assert counters["retries"] == 1

    def test_reap_quarantines_at_the_attempt_budget(self, queue):
        _enqueue(queue, max_attempts=1)
        queue.claim("w", 10.0, now=0.0)
        queue.reap(now=11.0)
        assert queue.unit("u1")["status"] == "quarantined"

    def test_reap_is_idempotent(self, queue):
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        assert queue.reap(now=11.0) == ["u1"]
        assert queue.reap(now=11.0) == []


class TestWorkers:
    def test_register_beat_and_mark(self, queue):
        queue.register_worker("w0.g0", pid=123, now=0.0)
        queue.worker_beat("w0.g0", now=5.0)
        (worker,) = queue.workers()
        assert worker["state"] == "alive"
        assert worker["last_heartbeat"] == 5.0
        queue.mark_worker("w0.g0", "dead")
        assert queue.workers()[0]["state"] == "dead"

    def test_units_done_survives_reregistration(self, queue):
        queue.register_worker("w", now=0.0)
        _enqueue(queue)
        queue.claim("w", 10.0, now=0.0)
        queue.commit("u1", "w", {}, now=1.0)
        assert queue.workers()[0]["units_done"] == 1
        queue.register_worker("w", now=2.0)  # restart, same ID
        assert queue.workers()[0]["units_done"] == 1


class TestStatus:
    def test_status_shape(self, queue):
        _enqueue(queue, unit_id="a")
        _enqueue(queue, unit_id="b")
        queue.claim("w", 10.0, now=0.0)
        status = queue.status(now=1.0)
        assert status["units"] == {
            "pending": 1, "leased": 1, "done": 0, "quarantined": 0,
        }
        (lease,) = status["leases"]
        assert lease["owner"] == "w"
        assert lease["deadline_in"] == 9.0
        assert status["quarantined"] == []

    def test_config_validation(self, tmp_path):
        with pytest.raises(FabricError):
            WorkQueue(tmp_path, default_max_attempts=0)
        with pytest.raises(FabricError):
            WorkQueue(tmp_path, unit_ttl=0)
