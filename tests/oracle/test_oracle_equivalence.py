"""Oracle-engine equivalence: batched vs scalar, cache on vs off."""

import numpy as np
import pytest

from repro.analyzer import (
    AnalyzedProblem,
    BlackBoxAnalyzer,
    GapSample,
    GapSamples,
)
from repro.domains.binpack import first_fit_problem
from repro.domains.te import (
    build_demand_set,
    demand_pinning_problem,
    fig1a_demand_pairs,
    fig1a_topology,
)
from repro.oracle import GapCache, OracleEngine, OracleStats
from repro.subspace import AdversarialSubspaceGenerator, GeneratorConfig
from repro.subspace.region import Box


@pytest.fixture(scope="module")
def dp_problem():
    demand_set = build_demand_set(
        fig1a_topology(), fig1a_demand_pairs(), num_paths=2
    )
    return demand_pinning_problem(demand_set, threshold=50.0, d_max=100.0)


@pytest.fixture(scope="module")
def ff_problem():
    return first_fit_problem(num_balls=4, num_bins=3)


def make_band_problem():
    def evaluate(x):
        gap = 1.0 if 0.6 <= x[0] <= 0.9 else 0.0
        return GapSample(x=x, benchmark_value=gap, heuristic_value=0.0)

    return AnalyzedProblem(
        name="band",
        input_names=["x0", "x1"],
        input_box=Box.from_arrays(np.zeros(2), np.ones(2)),
        evaluate=evaluate,
    )


class TestBatchedScalarEquivalence:
    def test_te_batched_matches_raw_scalar(self, dp_problem):
        """The LP-template oracle reproduces the reference scalar oracle."""
        rng = np.random.default_rng(0)
        points = rng.uniform(0.0, 100.0, size=(40, dp_problem.dim))
        reference = np.array(
            [dp_problem.evaluate(x).gap for x in points]
        )
        batched = dp_problem.evaluate_batch(points).gaps
        assert np.allclose(batched, reference, atol=1e-7)

    def test_te_engine_scalar_and_batch_identical(self, dp_problem):
        """gap() and gaps() run the same engine path: bit-identical."""
        rng = np.random.default_rng(1)
        points = rng.uniform(0.0, 100.0, size=(25, dp_problem.dim))
        batched = dp_problem.gaps(points)
        scalar = np.array([dp_problem.gap(x) for x in points])
        assert np.array_equal(batched, scalar)

    def test_binpack_batched_matches_raw_scalar(self, ff_problem):
        """Vectorized first fit + per-point OPT equals the scalar oracle
        bit for bit (integer bin counts)."""
        rng = np.random.default_rng(2)
        points = rng.uniform(0.0, 1.0, size=(40, ff_problem.dim))
        reference = np.array(
            [ff_problem.evaluate(x).gap for x in points]
        )
        batched = ff_problem.evaluate_batch(points).gaps
        assert np.array_equal(batched, reference)

    def test_binpack_feasibility_flags_match(self, ff_problem):
        rng = np.random.default_rng(3)
        points = rng.uniform(0.0, 1.0, size=(20, ff_problem.dim))
        batched = ff_problem.evaluate_batch(points)
        for i, x in enumerate(points):
            assert batched.heuristic_feasible[i] == (
                ff_problem.evaluate(x).heuristic_feasible
            )


class TestGapSamples:
    def test_roundtrip(self):
        samples = [
            GapSample(np.array([0.1, 0.2]), 3.0, 1.0),
            GapSample(np.array([0.3, 0.4]), 5.0, 5.0, heuristic_feasible=False),
        ]
        batch = GapSamples.from_samples(samples, dim=2)
        assert len(batch) == 2
        assert batch.gaps == pytest.approx([2.0, 0.0])
        back = batch.sample(1)
        assert back.heuristic_feasible is False
        assert back.gap == pytest.approx(0.0)

    def test_empty(self):
        batch = GapSamples.from_samples([], dim=3)
        assert len(batch) == 0
        assert batch.xs.shape == (0, 3)


class TestCacheEquivalence:
    def test_cache_on_off_same_generator_output(self, dp_problem):
        """Seeded §5.2 runs are unchanged by the memoizing cache."""

        def run(cache: bool):
            dp_problem.configure_oracle(cache=cache)
            analyzer = BlackBoxAnalyzer(
                dp_problem, strategy="random", budget=120, seed=4
            )
            generator = AdversarialSubspaceGenerator(
                dp_problem,
                analyzer,
                GeneratorConfig(
                    max_subspaces=1,
                    tree_extra_samples=60,
                    significance_pairs=20,
                    seed=4,
                ),
            )
            report = generator.run()
            stats = report.oracle_stats
            dp_problem.configure_oracle(cache=True)  # restore default
            return report, stats

        cached, cached_stats = run(cache=True)
        uncached, uncached_stats = run(cache=False)
        assert len(cached.subspaces) == len(uncached.subspaces)
        assert len(cached.rejected) == len(uncached.rejected)
        assert cached.threshold == uncached.threshold
        for a, b in zip(
            cached.subspaces + cached.rejected,
            uncached.subspaces + uncached.rejected,
        ):
            assert np.allclose(a.region.box.lo_array, b.region.box.lo_array)
            assert np.allclose(a.region.box.hi_array, b.region.box.hi_array)
            assert a.significance.significant == b.significance.significant
            assert a.significance.p_value == pytest.approx(
                b.significance.p_value
            )
        assert uncached_stats.cache_hits == 0
        assert cached_stats.points == uncached_stats.points

    def test_exact_repeats_hit_the_cache(self):
        problem = make_band_problem()
        rng = np.random.default_rng(5)
        points = rng.uniform(0.0, 1.0, size=(30, 2))
        first = problem.gaps(points)
        second = problem.gaps(points)
        assert np.array_equal(first, second)
        stats = problem.oracle.stats_snapshot()
        assert stats.cache_hits >= 30
        assert stats.scalar_fallback == 30  # only the first pass evaluated

    def test_cache_disabled_evaluates_every_time(self):
        problem = make_band_problem()
        engine = OracleEngine(problem, cache=False)
        points = np.full((4, 2), 0.5)
        engine.evaluate_many(points)
        engine.evaluate_many(points)
        assert engine.stats.cache_hits == 0
        assert engine.stats.scalar_fallback == 8

    def test_cache_key_quantization(self):
        box = Box.from_arrays(np.zeros(2), np.ones(2))
        cache = GapCache(box, resolution=0.1)
        assert cache.key(np.array([0.52, 0.52])) == cache.key(
            np.array([0.54, 0.54])
        )
        assert cache.key(np.array([0.52, 0.52])) != cache.key(
            np.array([0.62, 0.52])
        )


class TestOracleStats:
    def test_generator_report_carries_stats(self):
        problem = make_band_problem()
        analyzer = BlackBoxAnalyzer(
            problem, strategy="random", budget=100, seed=6
        )
        report = AdversarialSubspaceGenerator(
            problem,
            analyzer,
            GeneratorConfig(
                max_subspaces=1,
                tree_extra_samples=40,
                significance_pairs=16,
                seed=6,
            ),
        ).run()
        stats = report.oracle_stats
        assert isinstance(stats, OracleStats)
        assert stats.points > 100  # search + expansion + significance
        assert stats.points == stats.cache_hits + stats.cache_misses
        assert "oracle:" in stats.describe()

    def test_te_stats_count_warm_solves(self, dp_problem):
        engine = dp_problem.configure_oracle(cache=True)
        rng = np.random.default_rng(7)
        before = engine.stats_snapshot()
        dp_problem.gaps(rng.uniform(0.0, 100.0, size=(30, dp_problem.dim)))
        delta = engine.stats_snapshot() - before
        assert delta.native_batched == 30
        assert delta.warm_solves + delta.cold_solves == 60  # OPT + DP each
        assert delta.warm_solves > 0
        assert "lp templates" in delta.describe()

    def test_snapshot_delta(self):
        a = OracleStats(points=10, cache_hits=4, warm_solves=3)
        b = OracleStats(points=4, cache_hits=1, warm_solves=1)
        delta = a - b
        assert delta.points == 6
        assert delta.cache_hits == 3
        assert delta.warm_solves == 2
        assert a.hit_rate == pytest.approx(0.4)
