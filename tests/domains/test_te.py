"""Tests for the traffic-engineering domain (topology through DP)."""

import numpy as np
import pytest

from repro.domains.te import (
    Topology,
    all_pairs_demand_set,
    build_demand_set,
    fig1a_demand_pairs,
    fig1a_topology,
    fig4a_demand_pairs,
    k_shortest_paths,
    line_topology,
    pinned_demands,
    pinning_gap,
    solve_demand_pinning,
    solve_optimal_te,
)
from repro.exceptions import DslError


@pytest.fixture(scope="module")
def fig1a():
    topo = fig1a_topology()
    demand_set = build_demand_set(topo, fig1a_demand_pairs(), num_paths=2)
    return topo, demand_set


class TestTopology:
    def test_fig1a_shape(self):
        topo = fig1a_topology()
        assert topo.num_nodes == 5
        assert topo.num_links == 5
        assert topo.capacity("1", "2") == 100.0
        assert topo.capacity("4", "5") == 50.0
        assert topo.min_capacity() == 50.0

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_link("a", "b", 1.0)
        with pytest.raises(DslError):
            topo.add_link("a", "b", 2.0)

    def test_nonpositive_capacity_rejected(self):
        topo = Topology()
        with pytest.raises(DslError):
            topo.add_link("a", "b", 0.0)

    def test_duplex_link(self):
        topo = Topology()
        topo.add_duplex_link("a", "b", 7.0)
        assert topo.has_link("a", "b") and topo.has_link("b", "a")

    def test_random_topology_connected_cycle(self):
        rng = np.random.default_rng(3)
        topo = Topology.random(5, 0.2, (10, 20), rng)
        # The Hamiltonian cycle guarantees a path between all ordered pairs.
        for a in topo.nodes:
            for b in topo.nodes:
                if a != b:
                    assert k_shortest_paths(topo, a, b, 1)

    def test_networkx_roundtrip(self):
        topo = fig1a_topology()
        g = topo.to_networkx()
        assert g.number_of_edges() == 5
        assert g["1"]["2"]["capacity"] == 100.0


class TestPaths:
    def test_shortest_first(self):
        topo = fig1a_topology()
        paths = k_shortest_paths(topo, "1", "3", 3)
        assert paths[0].name == "1-2-3"
        assert paths[1].name == "1-4-5-3"
        assert len(paths) == 2  # only two simple paths exist

    def test_path_properties(self):
        topo = fig1a_topology()
        path = k_shortest_paths(topo, "1", "3", 1)[0]
        assert path.length == 2
        assert path.links == (("1", "2"), ("2", "3"))
        assert path.uses_link("1", "2")
        assert not path.uses_link("1", "4")
        assert path.min_capacity(topo) == 100.0

    def test_no_path_returns_empty(self):
        topo = line_topology(3)
        assert k_shortest_paths(topo, "3", "1", 2) == []

    def test_same_endpoints_rejected(self):
        with pytest.raises(DslError):
            k_shortest_paths(fig1a_topology(), "1", "1", 1)


class TestDemandSet:
    def test_build_and_keys(self, fig1a):
        _, ds = fig1a
        assert ds.keys == ["1->3", "1->2", "2->3"]
        assert ds.demand("1->3").shortest_path.name == "1-2-3"

    def test_values_from_vector_and_mapping(self, fig1a):
        _, ds = fig1a
        by_vec = ds.values_from(np.array([1.0, 2.0, 3.0]))
        assert by_vec == {"1->3": 1.0, "1->2": 2.0, "2->3": 3.0}
        by_map = ds.values_from({"1->3": 1, "1->2": 2, "2->3": 3})
        assert by_map == by_vec

    def test_missing_values_rejected(self, fig1a):
        _, ds = fig1a
        with pytest.raises(DslError):
            ds.values_from({"1->3": 1.0})
        with pytest.raises(DslError):
            ds.values_from(np.ones(5))

    def test_all_pairs_demand_set(self):
        ds = all_pairs_demand_set(line_topology(3))
        # Line 1->2->3: pairs (1,2), (1,3), (2,3)
        assert ds.size == 3

    def test_fig4a_has_eight_demands(self):
        topo = fig1a_topology()
        ds = build_demand_set(topo, fig4a_demand_pairs(), num_paths=2)
        assert ds.size == 8


class TestOptimalTE:
    def test_fig1a_optimal_is_250(self, fig1a):
        _, ds = fig1a
        result = solve_optimal_te(
            ds, {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}
        )
        assert result.total_flow == pytest.approx(250.0)
        # OPT routes 1->3 on the long path, freeing 1-2/2-3.
        assert result.flow_on_path("1->3", "1-4-5-3") == pytest.approx(50.0)
        assert result.flow_on_path("1->2", "1-2") == pytest.approx(100.0)

    def test_capacity_respected(self, fig1a):
        topo, ds = fig1a
        result = solve_optimal_te(ds, {"1->3": 999, "1->2": 999, "2->3": 999})
        for link_key, load in result.link_loads.items():
            assert load <= topo.capacity(*link_key) + 1e-6

    def test_zero_demands(self, fig1a):
        _, ds = fig1a
        result = solve_optimal_te(ds, np.zeros(3))
        assert result.total_flow == pytest.approx(0.0)

    def test_routed_for_accounting(self, fig1a):
        _, ds = fig1a
        result = solve_optimal_te(ds, {"1->3": 10, "1->2": 20, "2->3": 0})
        assert result.routed_for("1->2") == pytest.approx(20.0)


class TestDemandPinning:
    def test_fig1a_dp_is_150(self, fig1a):
        _, ds = fig1a
        result = solve_demand_pinning(
            ds, {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}, threshold=50.0
        )
        assert result.total_flow == pytest.approx(150.0)
        assert result.pinned == frozenset({"1->3"})
        # The pinned demand sits on its shortest path.
        assert result.flow_on_path("1->3", "1-2-3") == pytest.approx(50.0)
        assert result.flow_on_path("1->3", "1-4-5-3") == pytest.approx(0.0)

    def test_no_pinning_equals_optimal(self, fig1a):
        _, ds = fig1a
        values = {"1->3": 60.0, "1->2": 100.0, "2->3": 100.0}
        dp = solve_demand_pinning(ds, values, threshold=50.0)
        opt = solve_optimal_te(ds, values)
        assert dp.pinned == frozenset()
        assert dp.total_flow == pytest.approx(opt.total_flow)

    def test_pinned_demand_set_predicate(self, fig1a):
        _, ds = fig1a
        values = {"1->3": 50.0, "1->2": 0.0, "2->3": 70.0}
        pinned = pinned_demands(ds, values, threshold=50.0)
        assert pinned == frozenset({"1->3"})  # zero demands are not pinned

    def test_strict_mode_infeasible_reports(self):
        # Two pinnable demands share a capacity-10 link; strict pinning of
        # 8 + 8 = 16 > 10 must be infeasible.
        topo = Topology()
        topo.add_link("a", "b", 10.0)
        topo.add_link("b", "c", 10.0)
        ds = build_demand_set(topo, [("a", "b"), ("a", "c")], num_paths=1)
        values = {"a->b": 8.0, "a->c": 8.0}
        strict = solve_demand_pinning(ds, values, threshold=9.0, strict=True)
        assert not strict.feasible
        relaxed = solve_demand_pinning(ds, values, threshold=9.0, strict=False)
        assert relaxed.feasible
        assert relaxed.total_flow == pytest.approx(10.0)

    def test_relaxed_equals_strict_when_feasible(self, fig1a):
        _, ds = fig1a
        values = {"1->3": 40.0, "1->2": 80.0, "2->3": 90.0}
        strict = solve_demand_pinning(ds, values, threshold=50.0, strict=True)
        relaxed = solve_demand_pinning(ds, values, threshold=50.0, strict=False)
        assert strict.feasible
        assert strict.total_flow == pytest.approx(relaxed.total_flow)

    def test_gap_nonnegative(self, fig1a):
        _, ds = fig1a
        rng = np.random.default_rng(0)
        for _ in range(5):
            values = rng.uniform(0, 100, size=3)
            assert pinning_gap(ds, values, threshold=50.0) >= -1e-6

    def test_fig1a_gap_is_100(self, fig1a):
        _, ds = fig1a
        gap = pinning_gap(
            ds, {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}, threshold=50.0
        )
        assert gap == pytest.approx(100.0)
