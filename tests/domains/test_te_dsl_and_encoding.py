"""Tests for the TE DSL model (Fig. 4a) and the DP MetaOpt encoding."""

import numpy as np
import pytest

from repro.analyzer import MetaOptAnalyzer
from repro.domains.te import (
    build_demand_set,
    build_dp_encoding,
    build_te_graph,
    demand_pinning_problem,
    fig1a_demand_pairs,
    fig1a_topology,
    fig4a_demand_pairs,
    solve_demand_pinning,
    solve_optimal_te,
    solve_te_graph,
    te_flows_for_result,
)
from repro.dsl import NodeKind


@pytest.fixture(scope="module")
def fig1a_set():
    return build_demand_set(
        fig1a_topology(), fig1a_demand_pairs(), num_paths=2
    )


@pytest.fixture(scope="module")
def fig4a_set():
    return build_demand_set(
        fig1a_topology(), fig4a_demand_pairs(), num_paths=2
    )


class TestTeGraph:
    def test_fig4a_structure(self, fig4a_set):
        graph = build_te_graph(fig4a_set, max_demand=100.0)
        demands = graph.nodes_in_group("DEMANDS")
        paths = graph.nodes_in_group("PATHS")
        links = graph.nodes_in_group("EDGES")
        assert len(demands) == 8
        assert len(links) == 5
        # Fig. 4a draws 9 distinct paths for these 8 demands.
        assert len(paths) == 9
        assert all(n.routing_kind is NodeKind.COPY for n in paths)
        assert graph.objective_sense == "min"

    def test_demand_nodes_are_input_split_sources(self, fig4a_set):
        graph = build_te_graph(fig4a_set, max_demand=100.0)
        for node in graph.nodes_in_group("DEMANDS"):
            assert node.is_input
            assert node.routing_kind is NodeKind.SPLIT

    def test_compiled_graph_matches_lp_benchmark(self, fig1a_set):
        graph = build_te_graph(fig1a_set, max_demand=100.0)
        values = {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}
        total, _ = solve_te_graph(graph, fig1a_set, values)
        lp = solve_optimal_te(fig1a_set, values)
        assert total == pytest.approx(lp.total_flow)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_compiled_graph_matches_lp_on_random_demands(self, fig1a_set, seed):
        graph = build_te_graph(fig1a_set, max_demand=100.0)
        rng = np.random.default_rng(seed)
        values = dict(zip(fig1a_set.keys, rng.uniform(0, 100, size=3)))
        total, _ = solve_te_graph(graph, fig1a_set, values)
        lp = solve_optimal_te(fig1a_set, values)
        assert total == pytest.approx(lp.total_flow, abs=1e-5)

    def test_flows_mapping_conserves(self, fig1a_set):
        graph = build_te_graph(fig1a_set, max_demand=100.0)
        values = {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}
        result = solve_demand_pinning(fig1a_set, values, threshold=50.0)
        flows = te_flows_for_result(graph, fig1a_set, values, result)
        # Per demand: routed + spilled == demand value.
        for demand in fig1a_set.demands:
            dnode = f"d[{demand.key}]"
            out = sum(
                flow for (src, _), flow in flows.items() if src == dnode
            )
            assert out == pytest.approx(values[demand.key], abs=1e-6)

    def test_dp_flows_use_shortest_path_edge(self, fig1a_set):
        graph = build_te_graph(fig1a_set, max_demand=100.0)
        values = {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}
        dp = solve_demand_pinning(fig1a_set, values, threshold=50.0)
        opt = solve_optimal_te(fig1a_set, values)
        dp_flows = te_flows_for_result(graph, fig1a_set, values, dp)
        opt_flows = te_flows_for_result(graph, fig1a_set, values, opt)
        # The divergence of Fig. 4a: DP uses p[1-2-3], OPT uses p[1-4-5-3].
        assert dp_flows[("d[1->3]", "p[1-2-3]")] > 0
        assert opt_flows[("d[1->3]", "p[1-4-5-3]")] > 0
        assert opt_flows[("d[1->3]", "p[1-2-3]")] == pytest.approx(0.0)


class TestDpEncoding:
    def test_fig1a_worst_case_gap(self, fig1a_set):
        problem = demand_pinning_problem(fig1a_set, threshold=50.0, d_max=100.0)
        analyzer = MetaOptAnalyzer(problem, backend="scipy")
        example = analyzer.find_adversarial()
        assert example is not None
        assert example.validated_gap == pytest.approx(100.0, abs=1e-3)
        assert example.consistent

    def test_adversarial_demand_matches_paper_shape(self, fig1a_set):
        problem = demand_pinning_problem(fig1a_set, threshold=50.0, d_max=100.0)
        example = MetaOptAnalyzer(problem, backend="scipy").find_adversarial()
        values = dict(zip(problem.input_names, example.x))
        # Type-1 shape from §3: the pinnable demand sits at the threshold,
        # the interfering demands saturate their capacity.
        assert values["1->3"] == pytest.approx(50.0, abs=1e-3)
        assert values["1->2"] == pytest.approx(100.0, abs=1e-3)
        assert values["2->3"] == pytest.approx(100.0, abs=1e-3)

    def test_encoding_agrees_with_oracle_on_random_points(self, fig1a_set):
        """The KKT encoding's DP value must equal the LP oracle's.

        We fix the demand variables in the encoding to random points and
        compare the heuristic total against solve_demand_pinning.
        """
        rng = np.random.default_rng(7)
        eps = 1e-6 * 100.0
        for _ in range(4):
            demands = rng.uniform(0, 100, size=3)
            # Stay clear of the indicator sliver (T, T+eps).
            demands = np.where(
                (demands > 50.0) & (demands < 50.0 + 2 * eps), 52.0, demands
            )
            encoding = build_dp_encoding(fig1a_set, threshold=50.0, d_max=100.0)
            for var, value in zip(encoding.input_vars, demands):
                encoding.model.add_constraint(var == float(value))
            solution = encoding.model.solve(backend="scipy")
            assert solution.is_optimal
            gap_from_encoding = solution.objective
            values = dict(zip(fig1a_set.keys, demands))
            opt = solve_optimal_te(fig1a_set, values)
            dp = solve_demand_pinning(
                fig1a_set, values, threshold=50.0, strict=True
            )
            assert dp.feasible
            assert gap_from_encoding == pytest.approx(
                opt.total_flow - dp.total_flow, abs=1e-4
            )

    def test_min_gap_cutoff_returns_none(self, fig1a_set):
        problem = demand_pinning_problem(fig1a_set, threshold=50.0, d_max=100.0)
        analyzer = MetaOptAnalyzer(problem, backend="scipy")
        assert analyzer.find_adversarial(min_gap=1000.0) is None

    def test_naive_encoding_same_optimum(self, fig1a_set):
        lean = build_dp_encoding(fig1a_set, threshold=50.0, d_max=100.0)
        fat = build_dp_encoding(
            fig1a_set, threshold=50.0, d_max=100.0, naive=True
        )
        assert fat.model.num_variables > lean.model.num_variables
        lean_obj = lean.model.solve(backend="scipy").objective
        fat_obj = fat.model.solve(backend="scipy").objective
        assert lean_obj == pytest.approx(fat_obj, abs=1e-4)

    def test_problem_features_present(self, fig1a_set):
        problem = demand_pinning_problem(fig1a_set, threshold=50.0, d_max=100.0)
        x = np.array([50.0, 100.0, 100.0])
        assert problem.features["pinnable_count"](x) == 1.0
        assert problem.features["pinnable_volume"](x) == 50.0
        assert problem.features["pinned_path_length"](x) == 2.0
        assert problem.features["pinned_bottleneck"](x) == 100.0
