"""The domain plugin registry: discovery, resolution, round trips, CLI."""

import json

import numpy as np
import pytest

from repro import XPlain, XPlainConfig
from repro.cli import build_parser, main
from repro.domains.registry import (
    DomainKnob,
    DomainPlugin,
    DomainRegistry,
    registry,
    smoke_campaign_spec,
)
from repro.exceptions import AnalyzerError
from repro.parallel.campaign import CampaignSpec, plan_campaign
from repro.parallel.spec import ProblemSpec
from repro.subspace.generator import GeneratorConfig

BUILTIN_DOMAINS = ("binpack", "caching", "sched", "te")


def tiny_config(plugin, seed=3, **overrides):
    """A fast pipeline config honoring the plugin's analyzer override."""
    defaults = dict(
        generator=GeneratorConfig(
            max_subspaces=1,
            tree_extra_samples=60,
            significance_pairs=12,
            seed=seed,
        ),
        explainer_samples=15,
        generalizer_samples=0,
        blackbox_budget=120,
        seed=seed,
    )
    defaults.update(plugin.config_defaults)
    defaults.update(overrides)
    return XPlainConfig(**defaults)


class TestDiscovery:
    def test_builtins_registered(self):
        names = registry().names()
        assert set(BUILTIN_DOMAINS) <= set(names)
        assert len(names) >= 4

    def test_aliases_resolve(self):
        assert registry().get("dp").name == "te"
        assert registry().get("vbp").name == "binpack"
        assert registry().get("cache").name == "caching"

    def test_unknown_domain_lists_registered(self):
        with pytest.raises(AnalyzerError) as excinfo:
            registry().get("frobnicate")
        message = str(excinfo.value)
        assert "frobnicate" in message
        for name in BUILTIN_DOMAINS:
            assert name in message

    def test_descriptors_are_json_safe(self):
        for plugin in registry():
            parsed = json.loads(json.dumps(plugin.to_dict()))
            assert parsed["name"] == plugin.name
            assert parsed["factory"] == plugin.factory

    def test_registry_rejects_name_collisions(self):
        fresh = DomainRegistry()
        plugin = DomainPlugin(name="a", title="t", factory="m:f", aliases=("b",))
        fresh.register(plugin)
        for clash in ("a", "b"):
            with pytest.raises(AnalyzerError, match="already registered"):
                fresh.register(
                    DomainPlugin(name=clash, title="t", factory="m:f")
                )

    def test_knob_validation(self):
        with pytest.raises(AnalyzerError, match="unknown type"):
            DomainKnob("x", "complex", 1)
        with pytest.raises(AnalyzerError, match="smoke kwarg"):
            DomainPlugin(
                name="x",
                title="t",
                factory="m:f",
                smoke_kwargs={"not_a_knob": 1},
            )
        with pytest.raises(AnalyzerError, match="preset"):
            DomainPlugin(
                name="x",
                title="t",
                factory="m:f",
                presets={"p": {"not_a_knob": 1}},
            )


@pytest.mark.parametrize("domain", BUILTIN_DOMAINS)
class TestRoundTrip:
    """Every registered domain builds, evaluates, and runs a tiny pipeline."""

    def test_smoke_spec_builds_and_evaluates(self, domain):
        plugin = registry().get(domain)
        problem = plugin.smoke_spec().build()
        assert problem.spec is not None  # process-executor ready
        rng = np.random.default_rng(0)
        xs = problem.input_box.sample(rng, 8)
        samples = problem.evaluate_many(xs)
        assert len(samples) == 8
        assert np.all(np.isfinite(samples.gaps))
        assert np.all(samples.gaps >= -1e-9)

    def test_domain_key_spec_round_trips(self, domain):
        plugin = registry().get(domain)
        spec = ProblemSpec.from_dict(
            {"domain": domain, "kwargs": dict(plugin.smoke_kwargs)}
        )
        assert spec.factory == plugin.factory
        # Serialization is canonical (factory-addressed): the domain
        # spelling must not leak into content-addressed payloads.
        assert spec.to_dict() == {
            "factory": plugin.factory,
            "kwargs": dict(plugin.smoke_kwargs),
        }
        assert spec.build().dim >= 1

    def test_tiny_pipeline_runs(self, domain):
        plugin = registry().get(domain)
        problem = plugin.smoke_spec().build()
        report = XPlain(problem, tiny_config(plugin)).run()
        assert report.worst_gap >= 0
        for explained in report.explained:
            assert explained.heatmap.num_samples > 0


class TestSpecErrors:
    def test_unknown_domain_in_problem_spec(self):
        with pytest.raises(AnalyzerError) as excinfo:
            ProblemSpec.from_dict({"domain": "nonexistent", "kwargs": {}})
        message = str(excinfo.value)
        assert "nonexistent" in message
        for name in BUILTIN_DOMAINS:
            assert name in message

    def test_domain_and_factory_are_exclusive(self):
        with pytest.raises(AnalyzerError, match="both 'domain' and 'factory'"):
            ProblemSpec.from_dict(
                {"domain": "te", "factory": "a.b:c", "kwargs": {}}
            )

    def test_missing_both_keys(self):
        with pytest.raises(AnalyzerError, match="'factory' or 'domain'"):
            ProblemSpec.from_dict({"kwargs": {}})

    def test_factory_import_failure_names_registered_domains(self):
        spec = ProblemSpec(factory="repro.domains.nonexistent:build")
        with pytest.raises(AnalyzerError) as excinfo:
            spec.build()
        message = str(excinfo.value)
        assert "registered domains" in message
        assert "caching" in message

    def test_factory_attribute_failure_names_registered_domains(self):
        spec = ProblemSpec(factory="repro.domains.caching:no_such_factory")
        with pytest.raises(AnalyzerError) as excinfo:
            spec.build()
        assert "registered domains" in str(excinfo.value)

    def test_non_domain_import_failure_has_no_hint(self):
        spec = ProblemSpec(factory="repro.nonexistent_module:build")
        with pytest.raises(AnalyzerError) as excinfo:
            spec.build()
        assert "registered domains" not in str(excinfo.value)


class TestSmokeCampaignSpec:
    def test_all_domains_spec_is_valid(self):
        data = smoke_campaign_spec()
        spec = CampaignSpec.from_dict(data)
        assert {job.name for job in spec.jobs} == {
            f"{name}-smoke" for name in registry().names()
        }
        payloads = plan_campaign(spec)
        # Domain-addressed problems canonicalize to factories in the plan.
        for payload in payloads:
            assert "factory" in payload["problem"]
            assert "domain" not in payload["problem"]

    def test_single_domain_spec(self):
        data = smoke_campaign_spec(["caching"])
        spec = CampaignSpec.from_dict(data)
        assert len(spec.jobs) == 1
        assert spec.jobs[0].problem.factory == registry().get("caching").factory

    def test_unknown_domain_rejected(self):
        with pytest.raises(AnalyzerError, match="unknown domain"):
            smoke_campaign_spec(["frobnicate"])


class TestCli:
    def test_analyze_subcommands_exist_for_every_domain(self):
        parser = build_parser()
        for plugin in registry():
            args = parser.parse_args(["analyze", plugin.name])
            assert args.domain == plugin.name
            assert args.workers == 1

    def test_analyze_accepts_aliases(self):
        args = build_parser().parse_args(["analyze", "dp", "--fig4a"])
        assert registry().get(args.domain).name == "te"
        assert args.fig4a

    def test_legacy_commands_route_to_analyze(self):
        args = build_parser().parse_args(["dp"])
        assert args.command == "dp"
        assert args.domain == "te"
        args = build_parser().parse_args(["vbp", "--balls", "5"])
        assert args.domain == "binpack"
        assert args.balls == 5
        args = build_parser().parse_args(["sched", "--machines", "3"])
        assert args.domain == "sched"
        assert args.machines == 3

    def test_caching_knobs(self):
        args = build_parser().parse_args(
            ["analyze", "caching", "--items", "5", "--capacity", "3",
             "--trace-len", "9", "--policy", "fifo"]
        )
        assert (args.items, args.capacity, args.trace_len, args.policy) == (
            5, 3, 9, "fifo"
        )

    def test_domains_lists_every_domain(self, capsys):
        assert main(["domains"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_DOMAINS:
            assert name in out

    def test_domains_json_is_machine_readable(self, capsys):
        assert main(["domains", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in data]
        assert set(BUILTIN_DOMAINS) <= set(names)
        assert len(names) >= 4

    def test_domains_campaign_spec_loads(self, capsys, tmp_path):
        assert main(["domains", "--campaign-spec", "caching"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert CampaignSpec.from_dict(data).jobs[0].name == "caching-smoke"

    def test_analyze_caching_runs_and_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = main(
            ["analyze", "caching", "--smoke", "--samples", "25",
             "--seed", "1", "--json-out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "XPlain report" in out
        data = json.loads(out_path.read_text())
        assert data["name"] == "caching"
        assert data["worst_gap"] >= 0
        assert data["problem"]["factory"] == registry().get("caching").factory

    def test_analyze_smoke_uses_smoke_kwargs(self):
        args = build_parser().parse_args(["analyze", "sched", "--smoke"])
        from repro.cli import _analyze_kwargs

        plugin = registry().get("sched")
        kwargs = _analyze_kwargs(args, plugin)
        assert kwargs["num_jobs"] == plugin.smoke_kwargs["num_jobs"]

    def test_analyze_explicit_knob_beats_smoke(self):
        args = build_parser().parse_args(
            ["analyze", "sched", "--smoke", "--jobs", "4"]
        )
        from repro.cli import _analyze_kwargs

        kwargs = _analyze_kwargs(args, registry().get("sched"))
        assert kwargs["num_jobs"] == 4

    def test_analyze_preset_applies(self):
        args = build_parser().parse_args(["analyze", "te", "--preset", "fig4a"])
        from repro.cli import _analyze_kwargs

        kwargs = _analyze_kwargs(args, registry().get("te"))
        assert kwargs["fig4a"] is True
