"""Tests for the scheduling extension domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import BlackBoxAnalyzer
from repro.domains.sched import (
    SchedInstance,
    build_sched_graph,
    list_scheduling,
    list_scheduling_problem,
    longest_processing_time,
    optimal_makespan,
    sched_flows_for_schedule,
    solve_optimal_schedule,
)
from repro.exceptions import DslError


class TestInstance:
    def test_basic(self):
        inst = SchedInstance((1.0, 2.0, 3.0), num_machines=2)
        assert inst.num_jobs == 3
        assert inst.duration_array.sum() == 6.0

    def test_validation(self):
        with pytest.raises(DslError):
            SchedInstance((), num_machines=1)
        with pytest.raises(DslError):
            SchedInstance((1.0,), num_machines=0)
        with pytest.raises(DslError):
            SchedInstance((-1.0,), num_machines=1)


class TestHeuristics:
    def test_list_scheduling_balances(self):
        inst = SchedInstance((3.0, 3.0, 2.0, 2.0), num_machines=2)
        schedule = list_scheduling(inst)
        assert schedule.makespan(inst) == pytest.approx(5.0)
        assert schedule.validate(inst)

    def test_graham_worst_case_shape(self):
        # Classic bad case for list scheduling: many small jobs then one
        # large one. 2 machines: [1,1,1,1,2] -> LS puts the 2 on a loaded
        # machine; makespan 4 vs optimal 3.
        inst = SchedInstance((1.0, 1.0, 1.0, 1.0, 2.0), num_machines=2)
        ls = list_scheduling(inst).makespan(inst)
        opt = optimal_makespan(inst)
        assert ls == pytest.approx(4.0)
        assert opt == pytest.approx(3.0)

    def test_lpt_fixes_the_worst_case(self):
        inst = SchedInstance((1.0, 1.0, 1.0, 1.0, 2.0), num_machines=2)
        lpt = longest_processing_time(inst).makespan(inst)
        assert lpt == pytest.approx(3.0)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1.0), min_size=2, max_size=6
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_graham_bound(self, durations, machines):
        """List scheduling is within (2 - 1/m) of optimal."""
        inst = SchedInstance(tuple(durations), num_machines=machines)
        ls = list_scheduling(inst).makespan(inst)
        opt = optimal_makespan(inst)
        assert opt - 1e-6 <= ls <= (2 - 1 / machines) * opt + 1e-6


class TestOptimal:
    def test_even_split(self):
        inst = SchedInstance((2.0, 2.0, 2.0, 2.0), num_machines=2)
        assert optimal_makespan(inst) == pytest.approx(4.0)

    def test_single_machine(self):
        inst = SchedInstance((1.0, 2.0), num_machines=1)
        assert optimal_makespan(inst) == pytest.approx(3.0)

    def test_assignment_valid(self):
        inst = SchedInstance((1.0, 2.0, 3.0), num_machines=2)
        schedule = solve_optimal_schedule(inst)
        assert schedule.validate(inst)


class TestProblemAndGraph:
    def test_graph_structure(self):
        graph = build_sched_graph(3, 2)
        assert len(graph.nodes_in_group("JOBS")) == 3
        assert len(graph.nodes_in_group("MACHINES")) == 2

    def test_flows_mapping(self):
        inst = SchedInstance((1.0, 2.0), num_machines=2)
        graph = build_sched_graph(2, 2)
        schedule = list_scheduling(inst)
        flows = sched_flows_for_schedule(graph, inst, schedule)
        assert flows[("job[0]", "machine[0]")] == pytest.approx(1.0)
        assert flows[("job[1]", "machine[1]")] == pytest.approx(2.0)

    def test_blackbox_analyzer_finds_gap(self):
        problem = list_scheduling_problem(5, 2)
        assert problem.exact_model is None
        analyzer = BlackBoxAnalyzer(
            problem, strategy="hillclimb", budget=150, seed=3
        )
        example = analyzer.find_adversarial()
        assert example is not None
        assert example.validated_gap > 0.1

    def test_gap_oracle_nonnegative(self):
        problem = list_scheduling_problem(4, 2)
        rng = np.random.default_rng(0)
        gaps = problem.gaps(problem.input_box.sample(rng, 8))
        assert np.all(gaps >= -1e-9)
