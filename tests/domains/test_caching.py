"""The caching domain: simulators, Belady optimality, oracle, pipeline."""

import numpy as np
import pytest

from repro import XPlain, XPlainConfig
from repro.domains.caching import (
    CacheInstance,
    CachingBatchOracle,
    belady_hits_batch,
    fifo_hits_batch,
    lru_caching_problem,
    lru_hits_batch,
    next_use_batch,
    optimal_misses,
    quantize_trace,
    simulate_belady,
    simulate_fifo,
    simulate_lru,
)
from repro.exceptions import AnalyzerError, DslError
from repro.subspace.generator import GeneratorConfig


def _random_traces(n, trace_len, num_items, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_items, size=(n, trace_len))


class TestInstance:
    def test_quantize_floors_and_clips(self):
        xs = np.array([[0.0, 0.99, 1.0, 2.7, 3.0]])
        assert quantize_trace(xs, 3).tolist() == [[0, 0, 1, 2, 2]]

    def test_from_vector_round_trip(self):
        inst = CacheInstance.from_vector([0.2, 2.9, 1.5], 3, 2)
        assert inst.trace == (0, 2, 1)
        assert inst.trace_len == 3

    def test_validation(self):
        with pytest.raises(DslError):
            CacheInstance(trace=(), num_items=3, capacity=2)
        with pytest.raises(DslError):
            CacheInstance(trace=(0, 3), num_items=3, capacity=2)
        with pytest.raises(DslError):
            CacheInstance(trace=(0,), num_items=3, capacity=0)


class TestSimulators:
    def test_cyclic_trace_is_lru_worst_case(self):
        # The classic LRU-pathological loop: 0,1,2 cycling through a
        # 2-slot cache. LRU misses every request; Belady keeps one item
        # pinned and hits twice.
        inst = CacheInstance(trace=(0, 1, 2, 0, 1, 2), num_items=3, capacity=2)
        assert simulate_lru(inst).misses == 6
        assert simulate_belady(inst).misses == 4
        assert optimal_misses(inst) == 4

    def test_repeats_hit(self):
        inst = CacheInstance(trace=(1, 1, 1, 1), num_items=3, capacity=2)
        for result in (simulate_lru(inst), simulate_fifo(inst), simulate_belady(inst)):
            assert result.misses == 1
            assert result.hits == [False, True, True, True]

    def test_lru_vs_fifo_differ(self):
        # LRU refreshes item 0 at t=1, FIFO does not — so the eviction at
        # t=2 differs (FIFO drops 0, LRU drops 1) and t=3's request for 0
        # hits under LRU only.
        inst = CacheInstance(trace=(0, 1, 0, 2, 0), num_items=3, capacity=2)
        lru, fifo = simulate_lru(inst), simulate_fifo(inst)
        assert lru.hits[2] and fifo.hits[2]
        assert lru.hits[4] and not fifo.hits[4]
        assert lru.misses < fifo.misses

    def test_cold_start_validation(self):
        inst = CacheInstance(trace=(0, 1, 0), num_items=2, capacity=1)
        for result in (simulate_lru(inst), simulate_fifo(inst), simulate_belady(inst)):
            assert result.validate(inst)

    def test_next_use_batch(self):
        traces = np.array([[0, 1, 0, 2, 0]])
        assert next_use_batch(traces).tolist() == [[2, 5, 4, 5, 5]]

    def test_belady_is_optimal_lower_bound(self):
        traces = _random_traces(300, 10, 4, seed=3)
        lru = (~lru_hits_batch(traces, 4, 2)).sum(axis=1)
        fifo = (~fifo_hits_batch(traces, 4, 2)).sum(axis=1)
        belady = (~belady_hits_batch(traces, 4, 2)).sum(axis=1)
        assert np.all(belady <= lru)
        assert np.all(belady <= fifo)
        assert (belady < lru).any()  # the gap is non-trivial

    def test_belady_matches_exhaustive_optimum(self):
        # Brute-force the offline optimum over all eviction decision
        # sequences on short traces and check Belady attains it.
        def exhaustive_min_misses(trace, num_items, capacity):
            # Dynamic program over cache contents: fewest misses that can
            # leave the cache in each state after each request.
            states = {frozenset(): 0}
            for item in trace:
                nxt = {}
                for cache, misses in states.items():
                    if item in cache:
                        options = [cache]
                        cost = misses
                    else:
                        cost = misses + 1
                        if len(cache) < capacity:
                            options = [cache | {item}]
                        else:
                            options = [
                                (cache - {evict}) | {item} for evict in cache
                            ]
                    for option in options:
                        key = frozenset(option)
                        if key not in nxt or nxt[key] > cost:
                            nxt[key] = cost
                states = nxt
            return min(states.values())

        rng = np.random.default_rng(11)
        for _ in range(25):
            trace = tuple(int(i) for i in rng.integers(0, 3, size=7))
            inst = CacheInstance(trace=trace, num_items=3, capacity=2)
            assert simulate_belady(inst).misses == exhaustive_min_misses(
                trace, 3, 2
            ), trace

    def test_scalar_matches_batch_rows(self):
        traces = _random_traces(50, 8, 3, seed=5)
        lru_batch = lru_hits_batch(traces, 3, 2)
        belady_batch = belady_hits_batch(traces, 3, 2)
        for i in range(len(traces)):
            inst = CacheInstance(
                trace=tuple(int(v) for v in traces[i]), num_items=3, capacity=2
            )
            assert simulate_lru(inst).hits == lru_batch[i].tolist()
            assert simulate_belady(inst).hits == belady_batch[i].tolist()


class TestOracleAndProblem:
    def test_batch_oracle_gap_convention(self):
        oracle = CachingBatchOracle(3, 2, "lru")
        xs = np.array([[0.1, 1.2, 2.3, 0.4, 1.5, 2.6]])  # the cyclic trace
        samples = oracle(xs)
        assert samples.benchmark_values[0] == -4.0
        assert samples.heuristic_values[0] == -6.0
        assert samples.gaps[0] == 2.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CachingBatchOracle(3, 2, "mru")
        with pytest.raises(AnalyzerError):
            lru_caching_problem(policy="mru")

    def test_capacity_must_leave_pressure(self):
        with pytest.raises(AnalyzerError, match="capacity"):
            lru_caching_problem(num_items=2, capacity=2)

    def test_gaps_nonnegative_and_scalar_consistent(self):
        problem = lru_caching_problem(num_items=4, capacity=2, trace_len=10)
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, 4, size=(200, 10))
        samples = problem.evaluate_many(xs)
        assert np.all(samples.gaps >= 0)
        assert (samples.gaps > 0).any()
        for i in range(10):
            assert problem.evaluate(xs[i]).gap == samples.gaps[i]

    def test_flows_route_one_unit_per_request(self):
        problem = lru_caching_problem(num_items=3, capacity=2, trace_len=6)
        x = np.array([0.1, 1.2, 2.3, 0.4, 1.5, 2.6])
        heuristic = problem.heuristic_flows(x)
        benchmark = problem.benchmark_flows(x)
        for flows in (heuristic, benchmark):
            for t in range(6):
                hit = flows[(f"req[{t}]", "hit")]
                miss = flows[(f"req[{t}]", "miss")]
                assert hit + miss == 1.0
        # On the cyclic trace the heuristic (LRU) misses everywhere,
        # Belady hits twice.
        assert sum(v for (src, dst), v in heuristic.items() if dst == "miss") == 6
        assert sum(v for (src, dst), v in benchmark.items() if dst == "hit") == 2

    def test_fifo_policy_problem(self):
        problem = lru_caching_problem(
            num_items=3, capacity=2, trace_len=6, policy="fifo"
        )
        assert "fifo" in problem.name
        assert problem.gap(np.array([0.0, 1.0, 2.0, 0.0, 1.0, 2.0])) >= 0

    def test_features_are_finite(self):
        problem = lru_caching_problem(num_items=4, capacity=2, trace_len=8)
        x = np.array([0.5, 1.5, 2.5, 3.5, 0.5, 1.5, 2.5, 3.5])
        assert problem.features["distinct_items"](x) == 4.0
        assert problem.features["working_set_excess"](x) == 2.0
        assert problem.features["max_item_share"](x) == 0.25


class TestPipeline:
    def test_full_pipeline_produces_explained_subspace(self):
        config = XPlainConfig(
            generator=GeneratorConfig(
                max_subspaces=1,
                tree_extra_samples=60,
                significance_pairs=12,
                seed=1,
            ),
            explainer_samples=40,
            generalizer_samples=40,
            seed=1,
        )
        report = XPlain(lru_caching_problem(), config).run()
        assert report.worst_gap >= 2
        assert report.num_subspaces == 1
        explained = report.explained[0]
        assert explained.narrative.headline
        # The divergence story is hit-vs-miss edges on request slots.
        divergent = {
            edge for edge, score in explained.heatmap.scores.items()
            if abs(score.mean_score) >= 0.2
        }
        assert divergent, "no divergent edges in the caching heatmap"
        assert all(dst in ("hit", "miss") for _, dst in divergent)
