"""Tests for the vector bin packing domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import MetaOptAnalyzer
from repro.domains.binpack import (
    VbpInstance,
    best_fit,
    build_ff_encoding,
    build_vbp_graph,
    fig2_sizes,
    first_fit,
    first_fit_decreasing,
    first_fit_problem,
    lower_bound,
    optimal_bin_count,
    solve_optimal_packing,
    vbp4_adversarial_sizes,
    vbp_flows_for_result,
)
from repro.exceptions import DslError


class TestInstance:
    def test_one_dimensional_constructor(self):
        inst = VbpInstance.one_dimensional([0.5, 0.3])
        assert inst.num_balls == 2
        assert inst.num_dims == 1
        assert inst.num_bins == 2
        assert list(inst.scalar_sizes()) == [0.5, 0.3]

    def test_multi_dimensional(self):
        inst = VbpInstance(
            sizes=((0.5, 0.2), (0.1, 0.9)), capacity=(1.0, 1.0), num_bins=2
        )
        assert inst.num_dims == 2
        with pytest.raises(DslError):
            inst.scalar_sizes()

    def test_validation(self):
        with pytest.raises(DslError):
            VbpInstance(sizes=((-0.1,),), capacity=(1.0,), num_bins=1)
        with pytest.raises(DslError):
            VbpInstance(sizes=((0.1,),), capacity=(0.0,), num_bins=1)
        with pytest.raises(DslError):
            VbpInstance(sizes=(), capacity=(1.0,), num_bins=1)
        with pytest.raises(DslError):
            VbpInstance(sizes=((0.1, 0.2),), capacity=(1.0,), num_bins=1)

    def test_with_sizes(self):
        inst = VbpInstance.one_dimensional([0.5, 0.3], num_bins=4)
        new = inst.with_sizes(np.array([0.1, 0.2]))
        assert list(new.scalar_sizes()) == [0.1, 0.2]
        assert new.num_bins == 4


class TestHeuristics:
    def test_first_fit_paper_example(self):
        inst = VbpInstance.one_dimensional(
            vbp4_adversarial_sizes(), num_bins=3
        )
        result = first_fit(inst)
        assert result.bins_used == 3
        assert result.validate(inst)
        # 0.01 and 0.49 share bin 0; each 0.51 needs its own bin.
        assert result.assignment == [0, 0, 1, 2]

    def test_first_fit_greedy_packing(self):
        inst = VbpInstance.one_dimensional([0.5, 0.5, 0.5])
        assert first_fit(inst).assignment == [0, 0, 1]

    def test_first_fit_infeasible_with_tiny_bins(self):
        inst = VbpInstance.one_dimensional([0.9, 0.9], num_bins=1)
        result = first_fit(inst)
        assert not result.feasible
        assert result.assignment == [0, -1]

    def test_best_fit_prefers_tighter_bin(self):
        # After 0.7 and 0.5 open two bins, a 0.3 ball best-fits the 0.7 bin.
        inst = VbpInstance.one_dimensional([0.7, 0.5, 0.3])
        result = best_fit(inst)
        assert result.assignment == [0, 1, 0]

    def test_first_fit_decreasing_beats_ff_here(self):
        sizes = vbp4_adversarial_sizes()
        inst = VbpInstance.one_dimensional(sizes, num_bins=4)
        ffd = first_fit_decreasing(inst)
        ff = first_fit(inst)
        assert ffd.bins_used == 2  # sorts the 0.51s first, pairs the rest
        assert ff.bins_used == 3
        assert ffd.validate(inst)

    def test_multi_dimensional_fit_requires_all_dims(self):
        inst = VbpInstance(
            sizes=((0.6, 0.1), (0.1, 0.6), (0.5, 0.5)),
            capacity=(1.0, 1.0),
            num_bins=3,
        )
        result = first_fit(inst)
        # Balls 0 and 1 share a bin (0.7, 0.7); ball 2 fails dim-wise
        # against (0.7+0.5) and opens a new bin.
        assert result.assignment == [0, 0, 1]

    def test_loads_accounting(self):
        inst = VbpInstance.one_dimensional([0.4, 0.4, 0.4])
        result = first_fit(inst)
        loads = result.loads(inst)
        assert loads[0, 0] == pytest.approx(0.8)
        assert loads[1, 0] == pytest.approx(0.4)


class TestOptimal:
    def test_paper_example_needs_two_bins(self):
        inst = VbpInstance.one_dimensional(
            vbp4_adversarial_sizes(), num_bins=3
        )
        assert optimal_bin_count(inst) == 2

    def test_fig2_optimal_is_eight(self):
        inst = VbpInstance.one_dimensional(fig2_sizes(), num_bins=12)
        assert optimal_bin_count(inst) == 8
        assert first_fit(inst).bins_used == 9

    def test_lower_bound_consistency(self):
        inst = VbpInstance.one_dimensional(fig2_sizes(), num_bins=12)
        assert lower_bound(inst) <= optimal_bin_count(inst)

    def test_optimal_assignment_valid(self):
        inst = VbpInstance.one_dimensional([0.5, 0.5, 0.5, 0.5])
        result = solve_optimal_packing(inst)
        assert result.validate(inst)
        assert result.bins_used == 2

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1,
            max_size=5,
        )
    )
    def test_ff_between_opt_and_two_opt(self, sizes):
        """First Fit's classic guarantee: OPT <= FF <= 2*OPT (weak form)."""
        inst = VbpInstance.one_dimensional(sizes, num_bins=len(sizes))
        ff = first_fit(inst).bins_used
        opt = optimal_bin_count(inst)
        assert opt <= ff <= 2 * opt


class TestVbpGraphAndFlows:
    def test_fig4b_structure(self):
        graph = build_vbp_graph(4, 3)
        assert len(graph.nodes_in_group("BALLS")) == 4
        assert len(graph.nodes_in_group("BINS")) == 3
        assert graph.num_edges == 4 * 3 + 3

    def test_flows_from_first_fit(self):
        inst = VbpInstance.one_dimensional(
            vbp4_adversarial_sizes(), num_bins=3
        )
        graph = build_vbp_graph(4, 3)
        flows = vbp_flows_for_result(graph, inst, first_fit(inst))
        assert flows[("ball[0]", "bin[0]")] == pytest.approx(0.01)
        assert flows[("ball[2]", "bin[1]")] == pytest.approx(0.51)
        assert flows[("bin[0]", "occupancy")] == pytest.approx(0.5)


class TestFfEncoding:
    def test_four_balls_three_bins_gap_is_one(self):
        problem = first_fit_problem(num_balls=4, num_bins=3)
        example = MetaOptAnalyzer(problem, backend="scipy").find_adversarial()
        assert example is not None
        assert example.validated_gap == pytest.approx(1.0)
        assert example.consistent

    def test_adversarial_instance_shape_matches_paper(self):
        # §2: "1%, 49%, 51%, 51%": one small ball, one just-under-half,
        # two just-over-half. Any permutation with that structure gives
        # FF=3 vs OPT=2; check the structural signature.
        problem = first_fit_problem(num_balls=4, num_bins=3)
        example = MetaOptAnalyzer(problem, backend="scipy").find_adversarial()
        sizes = np.sort(example.x)
        over_half = np.sum(sizes > 0.5 - 1e-6)
        assert over_half >= 2  # at least the two blockers

    def test_encoding_ff_logic_matches_simulation(self):
        """Fix sizes in the encoding; its alpha must equal simulated FF."""
        rng = np.random.default_rng(11)
        for _ in range(3):
            sizes = rng.uniform(0.05, 0.95, size=4)
            encoding = build_ff_encoding(4, 4)
            for var, value in zip(encoding.input_vars, sizes):
                encoding.model.add_constraint(var == float(value))
            solution = encoding.model.solve(backend="scipy")
            assert solution.is_optimal
            inst = VbpInstance.one_dimensional(sizes, num_bins=4)
            ff = first_fit(inst)
            for i in range(4):
                for j in range(4):
                    alpha = solution.value_by_name(f"alpha[{i}|{j}]")
                    expected = 1.0 if ff.assignment[i] == j else 0.0
                    assert alpha == pytest.approx(expected, abs=1e-6)

    def test_max_ball_above_capacity_rejected(self):
        with pytest.raises(ValueError):
            build_ff_encoding(3, 3, capacity=1.0, max_ball=1.5)

    def test_oracle_defined_on_whole_box(self):
        problem = first_fit_problem(num_balls=4, num_bins=3)
        rng = np.random.default_rng(5)
        gaps = problem.gaps(problem.input_box.sample(rng, 10))
        assert np.all(gaps >= -1e-9)
