"""Unit tests for linear expressions, variables and constraints."""

import math

import pytest

from repro.exceptions import ModelError
from repro.solver import LinExpr, Model, Relation, VarType, quicksum


@pytest.fixture()
def model():
    return Model("expr-tests")


class TestVariable:
    def test_default_domain_is_nonnegative(self, model):
        x = model.add_var("x")
        assert x.lb == 0.0
        assert x.ub == math.inf
        assert x.vartype is VarType.CONTINUOUS

    def test_binary_bounds_are_clamped(self, model):
        b = model.add_var("b", lb=-5, ub=9, vartype="binary")
        assert b.lb == 0.0
        assert b.ub == 1.0
        assert b.vartype is VarType.BINARY

    def test_inverted_bounds_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_var("bad", lb=2.0, ub=1.0)

    def test_duplicate_names_rejected(self, model):
        model.add_var("x")
        with pytest.raises(ModelError):
            model.add_var("x")

    def test_same_var_identity(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        assert x.same_var(x)
        assert not x.same_var(y)

    def test_hashable_and_usable_as_dict_key(self, model):
        x = model.add_var("x")
        d = {x: 3.0}
        assert d[x] == 3.0


class TestLinExpr:
    def test_addition_merges_terms(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = (x + y) + (x - y)
        assert expr.coefficient(x) == pytest.approx(2.0)
        assert expr.coefficient(y) == pytest.approx(0.0)
        assert y not in expr.terms

    def test_scalar_multiplication(self, model):
        x = model.add_var("x")
        expr = 3 * (2 * x + 4)
        assert expr.coefficient(x) == pytest.approx(6.0)
        assert expr.constant == pytest.approx(12.0)

    def test_division(self, model):
        x = model.add_var("x")
        expr = (4 * x + 2) / 2
        assert expr.coefficient(x) == pytest.approx(2.0)
        assert expr.constant == pytest.approx(1.0)

    def test_negation(self, model):
        x = model.add_var("x")
        expr = -(x + 1)
        assert expr.coefficient(x) == pytest.approx(-1.0)
        assert expr.constant == pytest.approx(-1.0)

    def test_rsub(self, model):
        x = model.add_var("x")
        expr = 5 - x
        assert expr.coefficient(x) == pytest.approx(-1.0)
        assert expr.constant == pytest.approx(5.0)

    def test_evaluate(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x - 3 * y + 1
        assert expr.evaluate({x: 2.0, y: 1.0}) == pytest.approx(2.0)

    def test_near_zero_coefficients_dropped(self, model):
        x = model.add_var("x")
        expr = x - x
        assert expr.is_constant

    def test_multiplying_expressions_rejected(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        with pytest.raises(ModelError):
            (x + 1) * (y + 1)  # type: ignore[operator]

    def test_nonfinite_coefficient_rejected(self, model):
        x = model.add_var("x")
        with pytest.raises(ModelError):
            LinExpr({x: float("nan")})

    def test_quicksum_matches_naive_sum(self, model):
        xs = model.add_vars(10, "v")
        fast = quicksum(xs)
        slow = sum(xs[1:], xs[0] + 0)
        for x in xs:
            assert fast.coefficient(x) == pytest.approx(slow.coefficient(x))

    def test_quicksum_with_constants(self, model):
        x = model.add_var("x")
        expr = quicksum([x, 2, 3.5])
        assert expr.constant == pytest.approx(5.5)


class TestConstraint:
    def test_le_normalization(self, model):
        x = model.add_var("x")
        con = model.add_constraint(2 * x + 3 <= 7)
        assert con.relation is Relation.LE
        assert con.rhs == pytest.approx(4.0)

    def test_ge_from_variable(self, model):
        x = model.add_var("x")
        con = model.add_constraint(x >= 2)
        assert con.relation is Relation.GE
        assert con.rhs == pytest.approx(2.0)

    def test_eq_from_equality_operator(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        con = model.add_constraint(x + y == 4)
        assert con.relation is Relation.EQ
        assert con.rhs == pytest.approx(4.0)

    def test_violation_measures(self, model):
        x = model.add_var("x")
        le = x <= 1
        assert le.violation({x: 3.0}) == pytest.approx(2.0)
        assert le.violation({x: 0.5}) == 0.0
        ge = x >= 1
        assert ge.violation({x: 0.0}) == pytest.approx(1.0)
        eq = x == 1
        assert eq.violation({x: 3.0}) == pytest.approx(2.0)

    def test_is_satisfied_with_tolerance(self, model):
        x = model.add_var("x")
        con = x <= 1
        assert con.is_satisfied({x: 1.0 + 1e-9})
        assert not con.is_satisfied({x: 1.1})

    def test_reversed_comparison_against_number(self, model):
        x = model.add_var("x")
        con = model.add_constraint(3 <= x)  # becomes x >= 3
        assert con.is_satisfied({x: 4.0})
        assert not con.is_satisfied({x: 2.0})

    def test_relation_flipped(self):
        assert Relation.LE.flipped() is Relation.GE
        assert Relation.GE.flipped() is Relation.LE
        assert Relation.EQ.flipped() is Relation.EQ
