"""Property-based tests: the from-scratch solver against SciPy/HiGHS.

These are the substitution-soundness tests promised in DESIGN.md: on random
LPs and MILPs, the two independently implemented backends must agree on
status and optimal value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import Model, SolveStatus, quicksum
from repro.solver.presolve import solve_with_presolve

N_VARS = st.integers(min_value=1, max_value=6)
N_CONS = st.integers(min_value=1, max_value=8)
COEFF = st.integers(min_value=-5, max_value=5)


def build_random_lp(draw_coeffs, n, m, ubs, sense):
    """Build a bounded random LP (finite var bounds keep it bounded)."""
    model = Model(sense=sense)
    xs = [model.add_var(f"x{i}", lb=0.0, ub=ubs[i]) for i in range(n)]
    idx = 0
    for _ in range(m):
        row = draw_coeffs[idx : idx + n]
        idx += n
        rhs = draw_coeffs[idx]
        idx += 1
        expr = quicksum(c * x for c, x in zip(row, xs))
        model.add_constraint(expr <= rhs + 5)  # +5 biases toward feasible
    obj_row = draw_coeffs[idx : idx + n]
    model.set_objective(quicksum(c * x for c, x in zip(obj_row, xs)))
    return model, xs


@st.composite
def random_lp(draw):
    n = draw(N_VARS)
    m = draw(N_CONS)
    coeffs = draw(
        st.lists(COEFF, min_size=m * (n + 1) + n, max_size=m * (n + 1) + n)
    )
    ubs = draw(
        st.lists(
            st.integers(min_value=1, max_value=10), min_size=n, max_size=n
        )
    )
    sense = draw(st.sampled_from(["min", "max"]))
    return build_random_lp(coeffs, n, m, ubs, sense)


class TestSimplexAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_same_status_and_objective(self, built):
        model, _ = built
        ours = model.solve(backend="simplex")
        scipy_sol = model.solve(backend="scipy")
        assert ours.status == scipy_sol.status
        if ours.status is SolveStatus.OPTIMAL:
            assert ours.objective == pytest.approx(
                scipy_sol.objective, abs=1e-6
            )
            assert model.is_feasible(ours.values)

    @settings(max_examples=40, deadline=None)
    @given(random_lp())
    def test_presolve_preserves_optimum(self, built):
        model, _ = built
        direct = model.solve(backend="scipy")
        via = solve_with_presolve(model, backend="scipy")
        assert direct.status == via.status
        if direct.status is SolveStatus.OPTIMAL:
            assert via.objective == pytest.approx(direct.objective, abs=1e-6)
            assert model.is_feasible(via.values)


@st.composite
def random_milp(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=5))
    coeffs = draw(
        st.lists(COEFF, min_size=m * (n + 1) + n, max_size=m * (n + 1) + n)
    )
    kinds = draw(
        st.lists(
            st.sampled_from(["continuous", "integer", "binary"]),
            min_size=n,
            max_size=n,
        )
    )
    sense = draw(st.sampled_from(["min", "max"]))
    model = Model(sense=sense)
    xs = [
        model.add_var(f"x{i}", lb=0.0, ub=4.0, vartype=kinds[i])
        for i in range(n)
    ]
    idx = 0
    for _ in range(m):
        row = coeffs[idx : idx + n]
        idx += n
        rhs = coeffs[idx]
        idx += 1
        model.add_constraint(
            quicksum(c * x for c, x in zip(row, xs)) <= rhs + 4
        )
    model.set_objective(
        quicksum(c * x for c, x in zip(coeffs[idx : idx + n], xs))
    )
    return model


class TestBranchAndBoundAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(random_milp())
    def test_same_milp_objective(self, model):
        ours = model.solve(backend="simplex")
        scipy_sol = model.solve(backend="scipy")
        assert ours.status == scipy_sol.status
        if ours.status is SolveStatus.OPTIMAL:
            assert ours.objective == pytest.approx(
                scipy_sol.objective, abs=1e-6
            )
            assert model.is_feasible(ours.values)

    @settings(max_examples=25, deadline=None)
    @given(random_milp())
    def test_integrality_of_solution(self, model):
        sol = model.solve(backend="simplex")
        if sol.status is SolveStatus.OPTIMAL:
            for var, value in sol.values.items():
                if var.vartype.is_integral:
                    assert value == pytest.approx(round(value), abs=1e-6)


class TestSolverDeterminism:
    def test_repeat_solves_identical(self):
        rng = np.random.default_rng(7)
        m = Model(sense="max")
        xs = m.add_vars(8, "x", ub=5)
        for _ in range(6):
            coeffs = rng.integers(-3, 4, size=8)
            m.add_constraint(
                quicksum(int(c) * x for c, x in zip(coeffs, xs)) <= 10
            )
        m.set_objective(quicksum(xs))
        first = m.solve(backend="simplex")
        second = m.solve(backend="simplex")
        assert first.objective == second.objective
        for x in xs:
            assert first[x] == second[x]
