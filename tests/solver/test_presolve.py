"""Unit tests for presolve (redundancy elimination + recovery maps)."""

import pytest

from repro.solver import Model, SolveStatus, presolve, quicksum, solve_with_presolve


class TestAliasMerging:
    def test_simple_equality_alias(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=5)
        y = m.add_var("y", ub=9)
        m.add_constraint(x == y)
        m.set_objective(x + y)
        result = presolve(m)
        assert result.reduced is not None
        assert result.reduced.num_variables == 1
        assert result.stats.aliased_variables == 1
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(10.0)
        assert sol[x] == pytest.approx(5.0)
        assert sol[y] == pytest.approx(5.0)

    def test_alias_chain_collapses(self):
        # AllEq-style chain a == b == c == d collapses to one variable.
        m = Model(sense="max")
        vs = m.add_vars(4, "v", ub=3)
        for left, right in zip(vs, vs[1:]):
            m.add_constraint(left == right)
        m.set_objective(quicksum(vs))
        result = presolve(m)
        assert result.reduced.num_variables == 1
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(12.0)

    def test_multiply_node_style_alias(self):
        # y == 3x (a MULTIPLY node row): y eliminated, bounds translated.
        m = Model(sense="max")
        x = m.add_var("x", ub=100)
        y = m.add_var("y", ub=6)
        m.add_constraint(y == 3 * x)
        m.set_objective(x)
        result = presolve(m)
        assert result.reduced.num_variables == 1
        sol = solve_with_presolve(m)
        # y <= 6 forces x <= 2.
        assert sol.objective == pytest.approx(2.0)
        assert sol[y] == pytest.approx(6.0)

    def test_negative_slope_alias_bounds(self):
        # y == -2x + 10 with y in [0, 10] -> x in [0, 5].
        m = Model(sense="max")
        x = m.add_var("x", ub=100)
        y = m.add_var("y", ub=10)
        m.add_constraint(y + 2 * x == 10)
        m.set_objective(x)
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(5.0)
        assert sol[y] == pytest.approx(0.0)

    def test_integer_variables_not_aliased_away(self):
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer", ub=5)
        y = m.add_var("y", vartype="integer", ub=5)
        m.add_constraint(x == y)
        m.set_objective(x + y)
        result = presolve(m)
        # Neither side is continuous, so the equality row must survive.
        assert result.reduced.num_constraints >= 1
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(10.0)


class TestConstantPropagation:
    def test_singleton_equality_fixes_variable(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constraint(x == 4)
        m.add_constraint(y <= x)  # becomes y <= 4 after substitution
        m.set_objective(y)
        result = presolve(m)
        assert result.stats.fixed_variables >= 1
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(4.0)
        assert sol[x] == pytest.approx(4.0)

    def test_cascading_fixes(self):
        m = Model(sense="min")
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        z = m.add_var("z", ub=10)
        m.add_constraint(x == 2)
        m.add_constraint(x + y == 5)  # -> y = 3
        m.add_constraint(y + z == 7)  # -> z = 4
        m.set_objective(z)
        result = presolve(m)
        assert result.reduced.num_variables == 0
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(4.0)
        assert sol[y] == pytest.approx(3.0)
        assert sol[z] == pytest.approx(4.0)

    def test_fix_outside_bounds_is_infeasible(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=3)
        m.add_constraint(x == 7)
        m.set_objective(x)
        result = presolve(m)
        assert result.infeasible
        sol = solve_with_presolve(m)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_contradictory_fixes_detected(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=10)
        m.add_constraint(x == 2)
        m.add_constraint(x == 3)
        m.set_objective(x)
        assert presolve(m).infeasible

    def test_fractional_fix_of_integer_var_infeasible(self):
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer", ub=10)
        m.add_constraint(2 * x == 5)
        m.set_objective(x)
        assert presolve(m).infeasible


class TestRowCleanup:
    def test_trivially_true_rows_dropped(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=1)
        m.add_constraint(x - x <= 5)
        m.set_objective(x)
        result = presolve(m)
        assert result.reduced.num_constraints == 0
        assert result.stats.dropped_constraints == 1

    def test_trivially_false_row_infeasible(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=1)
        m.add_constraint(x - x >= 5)
        m.set_objective(x)
        assert presolve(m).infeasible

    def test_duplicate_rows_deduplicated(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=100)
        y = m.add_var("y", ub=100)
        m.add_constraint(x + y <= 10)
        m.add_constraint(x + y <= 10)
        m.add_constraint(x + y <= 8)  # tighter duplicate wins
        m.set_objective(x + y)
        result = presolve(m)
        assert result.stats.deduplicated_constraints == 2
        assert result.reduced.num_constraints == 1
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(8.0)

    def test_objective_rewritten_through_aliases(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=100)
        m.add_constraint(y == 2 * x)
        m.set_objective(3 * y)  # = 6x
        sol = solve_with_presolve(m)
        assert sol.objective == pytest.approx(24.0)


class TestEndToEndEquivalence:
    def test_presolved_objective_matches_direct_solve(self):
        m = Model(sense="max")
        a = m.add_var("a", ub=10)
        b = m.add_var("b", ub=10)
        c = m.add_var("c", ub=10)
        d = m.add_var("d", ub=10)
        m.add_constraint(a == b)
        m.add_constraint(c == 2 * b)
        m.add_constraint(d == 3)
        m.add_constraint(a + c + d <= 12)
        m.set_objective(a + b + c + d)
        direct = m.solve(backend="simplex")
        via_presolve = solve_with_presolve(m, backend="simplex")
        assert direct.objective == pytest.approx(via_presolve.objective)
        # Recovered values satisfy the original model.
        assert m.is_feasible(via_presolve.values)

    def test_presolve_reduces_size(self):
        m = Model(sense="max")
        a = m.add_var("a", ub=10)
        b = m.add_var("b", ub=10)
        c = m.add_var("c", ub=10)
        m.add_constraint(a == b)
        m.add_constraint(b == c)
        m.add_constraint(a + b + c <= 9)
        m.set_objective(a + b + c)
        result = presolve(m)
        assert result.reduced.num_variables == 1
        assert result.reduced.num_constraints == 1
