"""Tests for StandardForm-level presolve (`repro.solver.sf_presolve`).

Presolve must be *solution-exact over the declared rhs range*: for every
rhs inside ``[b_lo, b_hi]`` the reduced LP's recovered solution and
objective equal the unreduced solve's. The property tests below draw
random rhs vectors for template structures shaped like each of the four
built-in domains and require presolve(on) == presolve(off).
"""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.solver import (
    LpTemplate,
    Model,
    SolveStatus,
    presolve_standard_form,
    quicksum,
)
from repro.solver.standard_form import from_matrix_form


def standard_form_of(model):
    return from_matrix_form(model.to_matrix_form(), normalize=False)


class TestReductions:
    def test_infeasible_by_bounds(self):
        model = Model("infeas", sense="max")
        x = model.add_var("x", lb=0.0)
        model.add_constraint(x >= 5.0, name="floor")
        model.add_constraint(x <= 1.0, name="cap")
        model.set_objective(x)
        sf = standard_form_of(model)
        ps = presolve_standard_form(sf)
        assert ps.infeasible
        template = LpTemplate(model, presolve=True)
        solution = template.solve()
        assert solution.status is SolveStatus.INFEASIBLE
        # matches the unpresolved verdict
        assert (
            LpTemplate(model, presolve=False).solve().status
            is SolveStatus.INFEASIBLE
        )

    def test_all_rows_redundant_leaves_trivial_lp(self):
        model = Model("trivial", sense="min")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        model.add_constraint(x <= 0.0, name="pin")
        model.add_constraint(x <= 3.0, name="loose")
        model.set_objective(x + y)
        sf = standard_form_of(model)
        ps = presolve_standard_form(sf)
        assert not ps.infeasible
        # x is fixed at 0, both rows become provably redundant
        assert ps.stats.columns_fixed == 1
        assert ps.stats.rows_dropped == 2
        assert ps.sf.a.shape[0] == 0
        template = LpTemplate(model, presolve=True)
        solution = template.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(0.0)
        assert solution.values[x] == 0.0
        assert solution.values[y] == 0.0

    def test_fixed_variable_recovery_round_trip(self):
        model = Model("fixed", sense="max")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        z = model.add_var("z", lb=0.0)
        model.add_constraint(x <= 0.0, name="pin_x")
        model.add_constraint(x + y <= 1.0, name="cap_xy")
        model.add_constraint(z <= 2.0, name="cap_z")
        model.set_objective(2.0 * x + y + z)
        on = LpTemplate(model, presolve=True)
        off = LpTemplate(model, presolve=False)
        assert on._presolved is not None
        assert on._presolved.stats.columns_fixed == 1
        s_on, s_off = on.solve(), off.solve()
        assert s_on.is_optimal and s_off.is_optimal
        assert s_on.objective == pytest.approx(s_off.objective, abs=1e-9)
        for var in (x, y, z):
            assert s_on.values[var] == pytest.approx(
                s_off.values[var], abs=1e-9
            )
        assert s_on.values[x] == 0.0  # fixed value re-enters bitwise

    def test_expand_y_scatters_exactly(self):
        model = Model("scatter", sense="max")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        model.add_constraint(x <= 0.0, name="pin")
        model.add_constraint(y <= 1.0, name="cap")
        model.add_constraint(x + y <= 9.0, name="loose")
        model.set_objective(x + y)
        sf = standard_form_of(model)
        ps = presolve_standard_form(sf)
        assert ps.sf.a.shape[1] < sf.a.shape[1]
        reduced_y = np.arange(1.0, ps.sf.a.shape[1] + 1)
        full = ps.expand_y(reduced_y)
        assert full.shape == (sf.a.shape[1],)
        assert np.array_equal(full[ps.keep_cols], reduced_y)
        assert np.array_equal(full[ps.removed_cols], ps.removed_vals)
        # batched form round-trips too
        batch = np.tile(reduced_y, (3, 1))
        assert np.array_equal(ps.expand_y(batch)[2], full)

    def test_self_certified_bound_rows_not_all_dropped(self):
        """Regression: duplicate cap rows must keep one copy.

        Three parallel copies of ``x <= 50`` each make the others look
        redundant under the implied bound ``u_x = 50`` — but that bound
        is certified *by these rows*, so dropping all three would lose
        the constraint entirely. At least one copy must survive and the
        optimum must stay 50.
        """
        model = Model("dup", sense="max")
        x = model.add_var("x", lb=0.0)
        model.add_constraint(x <= 100.0, name="loose")
        for i in range(3):
            model.add_constraint(x <= 50.0, name=f"cap{i}")
        model.set_objective(x)
        sf = standard_form_of(model)
        ps = presolve_standard_form(sf)
        dropped = {r.target for r in ps.reductions if r.kind == "drop_row"}
        assert len(dropped & {1, 2, 3}) <= 2  # one duplicate survives
        solution = LpTemplate(model, presolve=True).solve()
        assert solution.objective == pytest.approx(50.0)

    def test_reduce_b_rejects_out_of_range_rhs(self):
        model = Model("range", sense="max")
        x = model.add_var("x", lb=0.0)
        model.add_constraint(x <= 1.0, name="cap")
        model.set_objective(x)
        template = LpTemplate(
            model, presolve=True, rhs_ranges={"cap": (0.0, 5.0)}
        )
        ps = template._presolved
        assert ps is not None
        ps.reduce_b(np.array([5.0]))  # in range
        with pytest.raises(ModelError):
            ps.reduce_b(np.array([6.0]))
        with pytest.raises(ModelError):
            ps.reduce_b(np.array([[-1.0]]))

    def test_identity_when_nothing_reducible(self):
        model = Model("tight", sense="max")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        model.add_constraint(x + y <= 1.0, name="cap")
        model.set_objective(x + 2.0 * y)
        sf = standard_form_of(model)
        ps = presolve_standard_form(sf)
        assert ps.identity
        assert ps.stats.rows_dropped == 0
        assert ps.stats.columns_fixed == 0


# ---------------------------------------------------------------------------
# property: presolve(on) == presolve(off) on domain-shaped templates
# ---------------------------------------------------------------------------


def te_templates():
    """The real TE templates (fig. 1a), parametric demand rows."""
    from repro.domains.te import (
        build_demand_set,
        fig1a_demand_pairs,
        fig1a_topology,
    )
    from repro.domains.te.optimal import build_optimal_te_model
    from repro.domains.te.pinning import build_pinning_template_model

    ds = build_demand_set(fig1a_topology(), fig1a_demand_pairs(), num_paths=2)
    d_max = 100.0
    full = {key: d_max for key in ds.keys}
    ranges = {f"dem[{key}]": (0.0, d_max) for key in ds.keys}
    opt_model, _ = build_optimal_te_model(ds, full)
    dp_model, _ = build_pinning_template_model(ds, d_max)
    dp_ranges = dict(ranges)
    for demand in ds.demands:
        for path in demand.paths[1:]:
            dp_ranges[f"blk[{demand.key}|{path.name}]"] = (0.0, d_max)
    return [("te-opt", opt_model, ranges), ("te-dp", dp_model, dp_ranges)]


def binpack_template():
    """Fractional VBP relaxation: assignment rows + parametric bin caps."""
    sizes = [0.6, 0.5, 0.4, 0.3]
    bins = 3
    model = Model("vbp_lp", sense="min")
    x = {
        (i, j): model.add_var(f"x[{i}|{j}]", lb=0.0)
        for i in range(len(sizes))
        for j in range(bins)
    }
    for i in range(len(sizes)):
        model.add_constraint(
            quicksum(x[i, j] for j in range(bins)) == 1.0, name=f"assign[{i}]"
        )
        for j in range(bins):
            model.add_constraint(x[i, j] <= 1.0, name=f"frac[{i}|{j}]")
    for j in range(bins):
        model.add_constraint(
            quicksum(sizes[i] * x[i, j] for i in range(len(sizes))) <= 1.0,
            name=f"cap[{j}]",
        )
    model.set_objective(
        quicksum((j + 1) * x[i, j] for (i, j) in x)
    )
    ranges = {f"cap[{j}]": (0.8, 1.5) for j in range(bins)}
    return "binpack-lp", model, ranges


def sched_template():
    """Fractional makespan relaxation: parametric machine-load caps."""
    durations = [3.0, 2.0, 2.0, 1.0]
    machines = 2
    model = Model("sched_lp", sense="max")
    x = {
        (i, j): model.add_var(f"x[{i}|{j}]", lb=0.0)
        for i in range(len(durations))
        for j in range(machines)
    }
    for i in range(len(durations)):
        model.add_constraint(
            quicksum(x[i, j] for j in range(machines)) <= 1.0,
            name=f"once[{i}]",
        )
    for j in range(machines):
        model.add_constraint(
            quicksum(
                durations[i] * x[i, j] for i in range(len(durations))
            )
            <= 4.0,
            name=f"load[{j}]",
        )
    model.set_objective(quicksum(durations[i] * v for (i, _), v in x.items()))
    ranges = {f"load[{j}]": (1.0, 6.0) for j in range(machines)}
    return "sched-lp", model, ranges


def caching_template():
    """Fractional Belady relaxation: keep fractions under a cache cap."""
    weights = [5.0, 4.0, 3.0, 2.0, 1.0]
    model = Model("cache_lp", sense="max")
    keep = [
        model.add_var(f"keep[{i}]", lb=0.0) for i in range(len(weights))
    ]
    for i, k in enumerate(keep):
        model.add_constraint(k <= 1.0, name=f"unit[{i}]")
    model.add_constraint(quicksum(keep) <= 2.0, name="capacity")
    model.set_objective(
        quicksum(w * k for w, k in zip(weights, keep))
    )
    ranges = {"capacity": (1.0, float(len(weights)))}
    return "caching-lp", model, ranges


def all_domain_templates():
    return te_templates() + [
        binpack_template(),
        sched_template(),
        caching_template(),
    ]


@pytest.mark.parametrize(
    "name,model,ranges",
    all_domain_templates(),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_presolve_preserves_solutions(name, model, ranges):
    """Property: presolve(on) == presolve(off) over random in-range rhs."""
    on = LpTemplate(model, presolve=True, rhs_ranges=ranges)
    off = LpTemplate(model, presolve=False)
    rng = np.random.default_rng(abs(hash(name)) % 2 ** 32)
    names = sorted(ranges)
    for _ in range(25):
        for cname in names:
            lo, hi = ranges[cname]
            value = float(rng.uniform(lo, hi))
            on.set_rhs(cname, value)
            off.set_rhs(cname, value)
        s_on, s_off = on.solve(), off.solve()
        assert s_on.status == s_off.status, name
        if s_on.is_optimal:
            assert s_on.objective == pytest.approx(
                s_off.objective, abs=1e-7
            ), name


@pytest.mark.parametrize(
    "name,model,ranges",
    all_domain_templates(),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_presolve_slab_engines_agree(name, model, ranges):
    """Slab property: presolved tensor == presolved scalar bitwise, and
    both match the unpresolved slab within tolerance."""
    K = 16
    rng = np.random.default_rng(abs(hash(name + "slab")) % 2 ** 32)
    results = {}
    B_model = None
    names = sorted(ranges)
    for mode, presolve in (("on", True), ("off", False)):
        for engine in ("tensor", "scalar"):
            template = LpTemplate(
                model,
                presolve=presolve,
                rhs_ranges=ranges if presolve else None,
            )
            if B_model is None:
                lows = np.array([ranges[c][0] for c in names])
                highs = np.array([ranges[c][1] for c in names])
                B_model = rng.uniform(lows, highs, size=(K, len(names)))
            B = np.tile(template.base_rhs(), (K, 1))
            rows, signs, shifts = template.rhs_map(names)
            B[:, rows] = signs * B_model - shifts
            results[(mode, engine)] = template.solve_slab(B, engine=engine)
    for mode in ("on", "off"):
        a, b = results[(mode, "tensor")], results[(mode, "scalar")]
        assert a.statuses == b.statuses, name
        assert np.array_equal(a.objectives, b.objectives, equal_nan=True)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.iterations, b.iterations)
    on, off = results[("on", "tensor")], results[("off", "tensor")]
    assert on.statuses == off.statuses, name
    ok = on.ok
    assert np.allclose(on.objectives[ok], off.objectives[ok], atol=1e-7)
    assert np.allclose(on.x[ok], off.x[ok], atol=1e-7)
