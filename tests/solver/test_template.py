"""Tests for parametric LP templates and basis warm-starting."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.solver import LpTemplate, Model, SolveStatus, VarType, quicksum
from repro.solver.simplex import solve_with_basis
from repro.solver.standard_form import to_standard_form


def build_transport_model():
    """max sum(x) s.t. x_i <= d_i, group caps, one coupling row."""
    model = Model("transport", sense="max")
    xs = [model.add_var(f"x{i}", lb=0.0) for i in range(6)]
    for i, x in enumerate(xs):
        model.add_constraint(x <= 1.0, name=f"dem[{i}]")
    model.add_constraint(quicksum(xs[:3]) <= 2.0, name="cap0")
    model.add_constraint(quicksum(xs[3:]) <= 2.5, name="cap1")
    model.add_constraint(xs[0] + xs[3] <= 1.2, name="cap2")
    model.set_objective(quicksum(xs))
    return model, xs


def reference_solve(d, w):
    model = Model("ref", sense="max")
    xs = [model.add_var(f"x{i}", lb=0.0) for i in range(6)]
    for i, x in enumerate(xs):
        model.add_constraint(x <= float(d[i]))
    model.add_constraint(quicksum(xs[:3]) <= 2.0)
    model.add_constraint(quicksum(xs[3:]) <= 2.5)
    model.add_constraint(xs[0] + xs[3] <= 1.2)
    model.set_objective(quicksum(float(wi) * x for wi, x in zip(w, xs)))
    return model.solve(backend="scipy")


class TestLpTemplate:
    def test_matches_fresh_solves_on_random_rhs(self):
        """Warm-started re-solves agree with fresh cold solves (the ISSUE's
        randomized-RHS-perturbation equivalence check)."""
        model, xs = build_transport_model()
        template = LpTemplate(model)
        rng = np.random.default_rng(0)
        for _ in range(100):
            d = rng.uniform(0.0, 3.0, size=6)
            for i in range(6):
                template.set_rhs(f"dem[{i}]", d[i])
            solution = template.solve()
            assert solution.is_optimal
            reference = reference_solve(d, np.ones(6))
            assert solution.objective == pytest.approx(
                reference.objective, abs=1e-8
            )
        assert template.warm_solves > 0
        assert template.cold_solves > 0

    def test_small_rhs_perturbations_mostly_warm(self):
        """Nearby re-solves reuse the basis (the sample_in_box pattern)."""
        model, xs = build_transport_model()
        template = LpTemplate(model)
        rng = np.random.default_rng(1)
        base = np.full(6, 0.8)
        for i in range(6):
            template.set_rhs(f"dem[{i}]", base[i])
        template.solve()
        for _ in range(30):
            d = base + rng.uniform(-0.01, 0.01, size=6)
            for i in range(6):
                template.set_rhs(f"dem[{i}]", d[i])
            solution = template.solve()
            assert solution.is_optimal
            assert solution.objective == pytest.approx(
                reference_solve(d, np.ones(6)).objective, abs=1e-8
            )
        # Most (not all) nearby re-solves warm-start; boundary flips of the
        # binding set occasionally force a cold restart.
        assert template.warm_solves >= 18

    def test_objective_coefficient_updates(self):
        model, xs = build_transport_model()
        template = LpTemplate(model)
        rng = np.random.default_rng(2)
        for _ in range(40):
            d = rng.uniform(0.0, 1.5, size=6)
            w = rng.uniform(0.5, 2.0, size=6)
            for i in range(6):
                template.set_rhs(f"dem[{i}]", d[i])
                template.set_objective_coeff(xs[i], w[i])
            solution = template.solve()
            assert solution.is_optimal
            assert solution.objective == pytest.approx(
                reference_solve(d, w).objective, abs=1e-8
            )

    def test_values_respect_constraints(self):
        model, xs = build_transport_model()
        template = LpTemplate(model)
        for i in range(6):
            template.set_rhs(f"dem[{i}]", 0.7)
        solution = template.solve()
        values = [solution.values[x] for x in xs]
        assert all(-1e-9 <= v <= 0.7 + 1e-9 for v in values)
        assert sum(values[:3]) <= 2.0 + 1e-9

    def test_ge_and_eq_constraints(self):
        model = Model("mixed", sense="min")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        model.add_constraint(x + y >= 1.0, name="lo")
        model.add_constraint(x - y == 0.25, name="tie")
        model.set_objective(x + 2.0 * y)
        template = LpTemplate(model)
        first = template.solve()
        assert first.is_optimal
        # x - y = 0.25, x + y = 1 -> x = 0.625, y = 0.375
        assert first.objective == pytest.approx(0.625 + 0.75)
        template.set_rhs("lo", 2.0)
        second = template.solve()
        # x - y = 0.25, x + y = 2 -> x = 1.125, y = 0.875
        assert second.objective == pytest.approx(1.125 + 1.75)
        template.set_rhs("tie", 2.0)
        third = template.solve()
        # binding: x - y = 2, x + y >= 2 -> y = 0, x = 2
        assert third.objective == pytest.approx(2.0)

    def test_infeasible_rhs_reported(self):
        model = Model("inf", sense="max")
        x = model.add_var("x", lb=0.0, ub=1.0)
        model.add_constraint(x >= 0.0, name="lo")
        model.set_objective(x)
        template = LpTemplate(model)
        assert template.solve().is_optimal
        template.set_rhs("lo", 5.0)  # x >= 5 conflicts with x <= 1
        assert template.solve().status is SolveStatus.INFEASIBLE

    def test_unknown_constraint_rejected(self):
        model, _ = build_transport_model()
        template = LpTemplate(model)
        with pytest.raises(ModelError):
            template.set_rhs("nope", 1.0)

    def test_mip_rejected(self):
        model = Model("mip", sense="max")
        x = model.add_var("x", vartype=VarType.BINARY)
        model.set_objective(x)
        with pytest.raises(ModelError):
            LpTemplate(model)


class TestSolveWithBasis:
    def test_warm_start_matches_cold(self):
        from repro.solver.simplex import solve_standard_form

        model, _ = build_transport_model()
        sf = to_standard_form(model)
        cold = solve_standard_form(sf)
        assert cold.status is SolveStatus.OPTIMAL
        assert cold.basis is not None
        warm = solve_with_basis(sf, cold.basis)
        assert warm is not None
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.iterations == 0  # already optimal: no pivots needed

    def test_bad_basis_returns_none(self):
        model, _ = build_transport_model()
        sf = to_standard_form(model)
        m = sf.a.shape[0]
        # Repeated column: singular basis matrix.
        assert solve_with_basis(sf, [0] * m) is None
        # Out-of-range column index.
        assert solve_with_basis(sf, [sf.a.shape[1]] * m) is None
