"""Unit tests for the two-phase simplex LP solver."""

import pytest

from repro.solver import INF, Model, SolveStatus, quicksum


def solve(model):
    solution = model.solve(backend="simplex")
    return solution


class TestBasicLPs:
    def test_textbook_max(self):
        # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6)
        m = Model(sense="max")
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x <= 4)
        m.add_constraint(2 * y <= 12)
        m.add_constraint(3 * x + 2 * y <= 18)
        m.set_objective(3 * x + 5 * y)
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(36.0)
        assert sol[x] == pytest.approx(2.0)
        assert sol[y] == pytest.approx(6.0)

    def test_min_with_ge_constraints(self):
        # min 2x + 3y s.t. x + y >= 10, x >= 2 -> at (10 - y)...
        m = Model(sense="min")
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y >= 10)
        m.add_constraint(x >= 2)
        m.set_objective(2 * x + 3 * y)
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        # cheapest: push everything onto x (cost 2): x=10, y=0.
        assert sol.objective == pytest.approx(20.0)
        assert sol[x] == pytest.approx(10.0)

    def test_equality_constraints(self):
        m = Model(sense="max")
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y == 5)
        m.add_constraint(x <= 3)
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(3.0)
        assert sol[y] == pytest.approx(2.0)

    def test_objective_constant_carried(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=2)
        m.set_objective(x + 10)
        sol = solve(m)
        assert sol.objective == pytest.approx(12.0)

    def test_degenerate_lp(self):
        # Multiple constraints active at the optimum (degeneracy).
        m = Model(sense="max")
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y <= 1)
        m.add_constraint(x <= 1)
        m.add_constraint(y <= 1)
        m.add_constraint(x + 2 * y <= 2)
        m.set_objective(x + y)
        sol = solve(m)
        assert sol.objective == pytest.approx(1.0)

    def test_zero_objective_feasibility_problem(self):
        m = Model(sense="min")
        x = m.add_var("x")
        m.add_constraint(x >= 3)
        m.set_objective(0 * x)
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(0.0)
        assert sol[x] >= 3 - 1e-7


class TestBoundsHandling:
    def test_finite_lower_bound_shift(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=5)
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(5.0)

    def test_negative_lower_bound(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=-10, ub=10)
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(-10.0)

    def test_free_variable_split(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=-INF)
        m.add_constraint(x >= -7)
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(-7.0)

    def test_fixed_variable_bounds(self):
        m = Model(sense="max")
        x = m.add_var("x", lb=2.5, ub=2.5)
        y = m.add_var("y", ub=1)
        m.set_objective(x + y)
        sol = solve(m)
        assert sol.objective == pytest.approx(3.5)
        assert sol[x] == pytest.approx(2.5)

    def test_free_variable_with_upper_bound(self):
        m = Model(sense="max")
        x = m.add_var("x", lb=-INF, ub=4)
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(4.0)


class TestEdgeOutcomes:
    def test_infeasible(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=1)
        m.add_constraint(x >= 2)
        m.set_objective(x)
        sol = solve(m)
        assert sol.status is SolveStatus.INFEASIBLE
        assert sol.objective is None

    def test_infeasible_equalities(self):
        m = Model(sense="min")
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y == 1)
        m.add_constraint(x + y == 2)
        m.set_objective(x)
        sol = solve(m)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model(sense="max")
        x = m.add_var("x")
        m.set_objective(x)
        sol = solve(m)
        assert sol.status is SolveStatus.UNBOUNDED

    def test_unbounded_direction_through_constraints(self):
        m = Model(sense="max")
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x - y <= 1)
        m.set_objective(x)
        sol = solve(m)
        assert sol.status is SolveStatus.UNBOUNDED

    def test_redundant_rows_are_harmless(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=3)
        m.add_constraint(x + 0 <= 3)
        m.add_constraint(2 * x <= 6)
        m.add_constraint(x == 3)
        m.add_constraint(3 * x == 9)  # same row scaled
        m.set_objective(x)
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)


class TestFlowShapedLPs:
    def test_max_flow_on_diamond(self):
        # s -> a, s -> b, a -> t, b -> t with capacities; max flow = 3.
        m = Model(sense="max")
        sa = m.add_var("sa", ub=2)
        sb = m.add_var("sb", ub=2)
        at = m.add_var("at", ub=1)
        bt = m.add_var("bt", ub=2)
        m.add_constraint(sa == at)
        m.add_constraint(sb == bt)
        m.set_objective(at + bt)
        sol = solve(m)
        assert sol.objective == pytest.approx(3.0)

    def test_solution_value_helper(self):
        m = Model(sense="max")
        xs = m.add_vars(3, "f", ub=1)
        m.set_objective(quicksum(xs))
        sol = solve(m)
        assert sol.value(quicksum(xs)) == pytest.approx(3.0)
        assert sol.value(xs[0] * 2 + 1) == pytest.approx(3.0)
        assert sol.value_by_name("f1") == pytest.approx(1.0)

    def test_feasibility_check_of_returned_solution(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constraint(x + 2 * y <= 14)
        m.add_constraint(3 * x - y >= 0)
        m.add_constraint(x - y <= 2)
        m.set_objective(3 * x + 4 * y)
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert m.is_feasible(sol.values)
