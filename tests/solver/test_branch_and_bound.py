"""Unit tests for the branch-and-bound MILP solver."""

import pytest

from repro.solver import Model, SolveStatus, quicksum


def solve(model, **kw):
    return model.solve(backend="simplex", **kw)


class TestPureInteger:
    def test_knapsack(self):
        # max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=0,b=1,c=1 = 20
        m = Model(sense="max")
        a = m.add_var("a", vartype="binary")
        b = m.add_var("b", vartype="binary")
        c = m.add_var("c", vartype="binary")
        m.add_constraint(3 * a + 4 * b + 2 * c <= 6)
        m.set_objective(10 * a + 13 * b + 7 * c)
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(20.0)
        assert sol[b] == pytest.approx(1.0)
        assert sol[c] == pytest.approx(1.0)

    def test_integer_rounding_matters(self):
        # LP relaxation gives x = 2.5; integer optimum is 2.
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer")
        m.add_constraint(2 * x <= 5)
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(2.0)
        assert sol[x] == pytest.approx(2.0)

    def test_infeasible_integrality(self):
        # 2 <= 2x <= 3 with x integer has no solution... x=1 gives 2 ok;
        # make it truly empty: 3 <= 2x <= 3.5
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer")
        m.add_constraint(2 * x >= 3)
        m.add_constraint(2 * x <= 3.5)
        m.set_objective(x)
        sol = solve(m)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_equality_partition(self):
        # x + y == 7, x,y integer, max 2x + y -> x=7, y=0.
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer", ub=7)
        y = m.add_var("y", vartype="integer", ub=7)
        m.add_constraint(x + y == 7)
        m.set_objective(2 * x + y)
        sol = solve(m)
        assert sol.objective == pytest.approx(14.0)

    def test_min_sense(self):
        # Covering problem: min a + b, a + b >= 1, binary.
        m = Model(sense="min")
        a = m.add_var("a", vartype="binary")
        b = m.add_var("b", vartype="binary")
        m.add_constraint(a + b >= 1)
        m.set_objective(a + b)
        sol = solve(m)
        assert sol.objective == pytest.approx(1.0)

    def test_integer_with_negative_bounds(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=-5.5, ub=5.5, vartype="integer")
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(-5.0)


class TestMixedInteger:
    def test_mixed_continuous_integer(self):
        # max x + y; x integer <= 3.7 effective, y continuous <= 2.3
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer")
        y = m.add_var("y")
        m.add_constraint(x <= 3.7)
        m.add_constraint(y <= 2.3)
        m.set_objective(x + y)
        sol = solve(m)
        assert sol.objective == pytest.approx(5.3)
        assert sol[x] == pytest.approx(3.0)
        assert sol[y] == pytest.approx(2.3)

    def test_big_m_indicator(self):
        # Classic big-M: y <= M*z, z binary; maximizing y forces z = 1.
        m = Model(sense="max")
        y = m.add_var("y", ub=10)
        z = m.add_var("z", vartype="binary")
        m.add_constraint(y <= 10 * z)
        m.set_objective(y - 0.5 * z)
        sol = solve(m)
        assert sol.objective == pytest.approx(9.5)
        assert sol[z] == pytest.approx(1.0)

    def test_either_or_disjunction(self):
        # x <= 1 OR x >= 4 via big-M binary; max x s.t. x <= 5.
        m = Model(sense="max")
        x = m.add_var("x", ub=5)
        z = m.add_var("z", vartype="binary")
        big_m = 100
        m.add_constraint(x <= 1 + big_m * z)
        m.add_constraint(x >= 4 - big_m * (1 - z))
        m.set_objective(x)
        sol = solve(m)
        assert sol.objective == pytest.approx(5.0)
        assert sol[z] == pytest.approx(1.0)


class TestBinPackingShaped:
    def test_three_balls_two_bins(self):
        # Sizes 0.6, 0.5, 0.4 into bins of size 1: optimal = 2 bins.
        sizes = [0.6, 0.5, 0.4]
        num_bins = 3
        m = Model(sense="min")
        assign = {}
        for i in range(len(sizes)):
            for j in range(num_bins):
                assign[i, j] = m.add_var(f"x_{i}_{j}", vartype="binary")
        used = [m.add_var(f"z_{j}", vartype="binary") for j in range(num_bins)]
        for i in range(len(sizes)):
            m.add_constraint(
                quicksum(assign[i, j] for j in range(num_bins)) == 1
            )
        for j in range(num_bins):
            m.add_constraint(
                quicksum(sizes[i] * assign[i, j] for i in range(len(sizes)))
                <= used[j]
            )
        m.set_objective(quicksum(used))
        sol = solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(2.0)

    def test_node_limit_reports_status(self):
        # A small model solved under an absurdly low node limit still
        # terminates and reports NODE_LIMIT (or OPTIMAL if the root is
        # already integral; this instance is fractional at the root).
        m = Model(sense="max")
        xs = m.add_vars(6, "x", vartype="binary")
        m.add_constraint(quicksum(3 * x for x in xs) <= 7)
        m.set_objective(quicksum((i + 1) * x for i, x in enumerate(xs)))
        sol = m.solve(backend="simplex", node_limit=1)
        assert sol.status in (SolveStatus.NODE_LIMIT, SolveStatus.OPTIMAL)


class TestAgainstScipy:
    @pytest.mark.parametrize("sense", ["min", "max"])
    def test_cross_check_small_milp(self, sense):
        m = Model(sense=sense)
        x = m.add_var("x", vartype="integer", ub=10)
        y = m.add_var("y", ub=10)
        z = m.add_var("z", vartype="binary")
        m.add_constraint(x + 2 * y + 3 * z <= 12)
        m.add_constraint(x - y >= -3)
        m.set_objective(2 * x + 3 * y + 4 * z)
        ours = m.solve(backend="simplex")
        scipy_sol = m.solve(backend="scipy")
        assert ours.status is SolveStatus.OPTIMAL
        assert scipy_sol.status is SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(scipy_sol.objective, abs=1e-6)
