"""Edge-case tests for the model container, matrix export and solutions."""

import pytest

from repro.exceptions import ModelError
from repro.solver import INF, Model, Relation, SolveStatus, VarType, quicksum
from repro.solver.solution import Solution, SolveStats


class TestModelConstruction:
    def test_invalid_sense_rejected(self):
        with pytest.raises(ModelError):
            Model(sense="maximize")

    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ModelError):
            m2.add_constraint(x <= 1)
        with pytest.raises(ModelError):
            m2.set_objective(x)

    def test_add_constraint_requires_constraint(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(ModelError):
            m.add_constraint(x + 1)  # an expression, not a comparison

    def test_auto_names(self):
        m = Model()
        a = m.add_var()
        b = m.add_var()
        assert a.name == "x0" and b.name == "x1"
        con = m.add_constraint(a <= 1)
        assert con.name == "c0"

    def test_add_vars_prefix(self):
        m = Model()
        vs = m.add_vars(3, "f", ub=2.0)
        assert [v.name for v in vs] == ["f0", "f1", "f2"]
        assert all(v.ub == 2.0 for v in vs)

    def test_variable_by_name(self):
        m = Model()
        x = m.add_var("target")
        assert m.variable_by_name("target") is x
        with pytest.raises(KeyError):
            m.variable_by_name("missing")

    def test_is_mip_detection(self):
        m = Model()
        m.add_var("x")
        assert not m.is_mip
        m.add_var("b", vartype="binary")
        assert m.is_mip

    def test_set_objective_with_sense_flip(self):
        m = Model(sense="min")
        x = m.add_var("x", ub=3)
        m.set_objective(x, sense="max")
        assert m.sense == "max"
        assert m.solve(backend="simplex").objective == pytest.approx(3.0)

    def test_clone_independent(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=5)
        m.add_constraint(x <= 4)
        m.set_objective(x)
        dup = m.clone()
        dup.add_constraint(dup.variable_by_name("x") <= 2)
        assert m.solve().objective == pytest.approx(4.0)
        assert dup.solve().objective == pytest.approx(2.0)

    def test_pretty_render(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=3, vartype="integer")
        m.add_constraint(2 * x <= 5, name="cap")
        m.set_objective(x)
        text = m.pretty()
        assert "max" in text and "cap" in text and "integer" in text


class TestMatrixForm:
    def test_sense_folding(self):
        m = Model(sense="max")
        x = m.add_var("x")
        m.set_objective(3 * x + 7)
        mf = m.to_matrix_form()
        assert mf.objective_sign == -1.0
        assert mf.c[0] == pytest.approx(-3.0)
        assert mf.c0 == pytest.approx(-7.0)

    def test_relation_normalization(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y <= 4)
        m.add_constraint(x - y >= -2)
        m.add_constraint(x == 1)
        mf = m.to_matrix_form()
        assert mf.a_ub.shape == (2, 2)
        assert mf.a_eq.shape == (1, 2)
        # GE row negated into LE form: -(x - y) <= 2.
        assert mf.b_ub[1] == pytest.approx(2.0)
        assert mf.a_ub[1, 0] == pytest.approx(-1.0)

    def test_integrality_vector(self):
        m = Model()
        m.add_var("x")
        m.add_var("b", vartype="binary")
        m.add_var("k", vartype="integer", ub=5)
        mf = m.to_matrix_form()
        assert list(mf.integrality) == [0, 1, 1]

    def test_is_feasible_checks_everything(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=2)
        k = m.add_var("k", vartype="integer", ub=5)
        m.add_constraint(x + k <= 4)
        assert m.is_feasible({x: 1.0, k: 2.0})
        assert not m.is_feasible({x: 3.0, k: 0.0})  # bound violated
        assert not m.is_feasible({x: 1.0, k: 1.5})  # integrality violated
        assert not m.is_feasible({x: 2.0, k: 3.0})  # constraint violated


class TestSolutionHelpers:
    def test_getitem_and_value(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=2)
        m.set_objective(x)
        sol = m.solve()
        assert sol[x] == pytest.approx(2.0)
        assert sol.value(3 * x + 1) == pytest.approx(7.0)
        assert sol.is_optimal

    def test_value_by_name_missing(self):
        sol = Solution(status=SolveStatus.OPTIMAL, objective=0.0, values={})
        with pytest.raises(KeyError):
            sol.value_by_name("ghost")

    def test_repr_formats(self):
        sol = Solution(status=SolveStatus.INFEASIBLE)
        assert "infeasible" in repr(sol)
        sol2 = Solution(status=SolveStatus.OPTIMAL, objective=1.23456789)
        assert "1.23457" in repr(sol2)

    def test_stats_defaults(self):
        stats = SolveStats()
        assert stats.iterations == 0
        assert stats.backend == ""


class TestAutoBackendSelection:
    def test_small_model_uses_simplex(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=1)
        m.set_objective(x)
        sol = m.solve(backend="auto")
        assert sol.stats.backend == "simplex"

    def test_large_model_uses_scipy(self):
        m = Model(sense="max")
        xs = m.add_vars(200, "x", ub=1.0)
        m.set_objective(quicksum(xs))
        sol = m.solve(backend="auto")
        assert sol.stats.backend == "scipy"
        assert sol.objective == pytest.approx(200.0)

    def test_unknown_backend_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError):
            m.solve(backend="cplex")


class TestUnboundedAndInfinite:
    def test_free_variable_unbounded_min(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=-INF)
        m.set_objective(x)
        assert m.solve(backend="simplex").status is SolveStatus.UNBOUNDED

    def test_scipy_agrees_on_unbounded(self):
        m = Model(sense="min")
        x = m.add_var("x", lb=-INF)
        m.set_objective(x)
        assert m.solve(backend="scipy").status is SolveStatus.UNBOUNDED

    def test_equality_relation_enum(self):
        m = Model()
        x = m.add_var("x")
        con = m.add_constraint(x == 2)
        assert con.relation is Relation.EQ
        assert con.rhs == pytest.approx(2.0)
