"""Tests for the tensorized dual-simplex slab engine.

The load-bearing invariant: ``engine="tensor"`` and ``engine="scalar"``
are **bit-identical** — same statuses, same objective doubles, same y
vectors, same iteration counts, same warm flags, same bases — because
the tensor engine replicates the scalar engine's arithmetic elementwise.
Everything else (chunking, bad seeds, degenerate shapes) must preserve
that equality while still returning correct optima.
"""

import numpy as np
import pytest

import repro.solver.slab as slab_mod
from repro.exceptions import ModelError
from repro.solver import LpTemplate, Model, SolveStatus, quicksum
from repro.solver.slab import solve_slab
from repro.solver.standard_form import from_matrix_form


def build_transport_model():
    """max sum(w x) s.t. per-var caps, group caps, one coupling row."""
    model = Model("transport", sense="max")
    xs = [model.add_var(f"x{i}", lb=0.0) for i in range(6)]
    for i, x in enumerate(xs):
        model.add_constraint(x <= 1.0, name=f"dem[{i}]")
    model.add_constraint(quicksum(xs[:3]) <= 2.0, name="cap0")
    model.add_constraint(quicksum(xs[3:]) <= 2.5, name="cap1")
    model.add_constraint(xs[0] + xs[3] <= 1.2, name="cap2")
    model.set_objective(quicksum(xs))
    return model, xs


def transport_sf():
    model, _ = build_transport_model()
    return from_matrix_form(model.to_matrix_form(), normalize=False)


def random_rhs(sf, rng, K):
    """Perturb the build-time rhs of the per-var cap rows (rows 0..5)."""
    B = np.tile(sf.b, (K, 1))
    B[:, :6] = rng.uniform(0.0, 3.0, size=(K, 6))
    return B


def assert_bitwise_equal(a, b):
    """Bitwise slab-result equality (nan objectives compare equal)."""
    assert a.statuses == b.statuses
    assert np.array_equal(a.objectives, b.objectives, equal_nan=True)
    assert np.array_equal(a.ys, b.ys)
    assert np.array_equal(a.iterations, b.iterations)
    assert np.array_equal(a.warm, b.warm)
    assert a.bases == b.bases


class TestEngineEquality:
    def test_shared_objective_bitwise(self):
        sf = transport_sf()
        B = random_rhs(sf, np.random.default_rng(0), 64)
        tensor = solve_slab(sf, B, engine="tensor")
        scalar = solve_slab(sf, B, engine="scalar")
        assert_bitwise_equal(tensor, scalar)
        assert all(s is SolveStatus.OPTIMAL for s in tensor.statuses)
        # shared-seed protocol: first instance cold-seeds, rest warm
        assert not tensor.warm[0] and tensor.warm[1:].all()

    def test_per_instance_objective_bitwise(self):
        sf = transport_sf()
        rng = np.random.default_rng(1)
        K = 48
        B = random_rhs(sf, rng, K)
        C = np.tile(sf.c, (K, 1))
        # retarget the structural (minimization-space) coefficients
        C[:, :6] = -rng.uniform(0.5, 2.0, size=(K, 6))
        tensor = solve_slab(sf, B, C, engine="tensor")
        scalar = solve_slab(sf, B, C, engine="scalar")
        assert_bitwise_equal(tensor, scalar)

    def test_explicit_start_basis_bitwise(self):
        sf = transport_sf()
        rng = np.random.default_rng(2)
        B = random_rhs(sf, rng, 32)
        seed_run = solve_slab(sf, B[:1], engine="scalar")
        seed = seed_run.carry_basis
        assert seed is not None
        tensor = solve_slab(sf, B, start_basis=seed, engine="tensor")
        scalar = solve_slab(sf, B, start_basis=seed, engine="scalar")
        assert_bitwise_equal(tensor, scalar)
        assert tensor.warm.all()

    def test_matches_fresh_model_solves(self):
        model, xs = build_transport_model()
        template = LpTemplate(model)
        rng = np.random.default_rng(3)
        K = 40
        d = rng.uniform(0.0, 3.0, size=(K, 6))
        B = np.tile(template.base_rhs(), (K, 1))
        rows, signs, shifts = template.rhs_map([f"dem[{i}]" for i in range(6)])
        B[:, rows] = signs * d - shifts
        result = template.solve_slab(B)
        assert result.ok.all()
        for k in range(K):
            ref = Model("ref", sense="max")
            ys = [ref.add_var(f"x{i}", lb=0.0) for i in range(6)]
            for i, y in enumerate(ys):
                ref.add_constraint(y <= float(d[k, i]))
            ref.add_constraint(quicksum(ys[:3]) <= 2.0)
            ref.add_constraint(quicksum(ys[3:]) <= 2.5)
            ref.add_constraint(ys[0] + ys[3] <= 1.2)
            ref.set_objective(quicksum(ys))
            expected = ref.solve(backend="scipy")
            assert result.objectives[k] == pytest.approx(
                expected.objective, abs=1e-8
            )

    def test_chunked_equals_unchunked(self, monkeypatch):
        sf = transport_sf()
        B = random_rhs(sf, np.random.default_rng(4), 40)
        whole = solve_slab(sf, B, engine="tensor")
        # force ~8-instance chunks through the same entry point
        cells = (sf.a.shape[0] + 1) * (sf.a.shape[1] + 1)
        monkeypatch.setattr(slab_mod, "MAX_TENSOR_CELLS", 8 * cells)
        chunked = solve_slab(sf, B, engine="tensor")
        assert_bitwise_equal(whole, chunked)


class TestDegenerateInputs:
    def test_invalid_start_basis_falls_back_cold(self):
        sf = transport_sf()
        B = random_rhs(sf, np.random.default_rng(5), 8)
        reference = solve_slab(sf, B, engine="scalar")
        for bad in ([0, 1], [0] * sf.a.shape[0], [10 ** 6] * sf.a.shape[0]):
            tensor = solve_slab(sf, B, start_basis=bad, engine="tensor")
            scalar = solve_slab(sf, B, start_basis=bad, engine="scalar")
            assert_bitwise_equal(tensor, scalar)
            assert not tensor.warm.any()
            assert np.allclose(tensor.objectives, reference.objectives)

    def test_singular_start_basis_falls_back_cold(self):
        sf = transport_sf()
        m = sf.a.shape[0]
        B = random_rhs(sf, np.random.default_rng(6), 8)
        singular = [6] * m  # repeated column -> singular basis matrix
        tensor = solve_slab(sf, B, start_basis=singular, engine="tensor")
        scalar = solve_slab(sf, B, start_basis=singular, engine="scalar")
        assert_bitwise_equal(tensor, scalar)
        assert all(s is SolveStatus.OPTIMAL for s in tensor.statuses)

    def test_infeasible_instances(self):
        model = Model("infeas", sense="max")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        model.add_constraint(x <= 1.0, name="cap_x")
        model.add_constraint(y <= 1.0, name="cap_y")
        model.add_constraint(x + y == 1.0, name="couple")
        model.set_objective(x + y)
        template = LpTemplate(model)
        K = 6
        B = np.tile(template.base_rhs(), (K, 1))
        rows, signs, shifts = template.rhs_map(["couple"])
        # instances 0,2,4 demand more coupled mass than the caps allow
        targets = np.array([[5.0], [1.0], [9.0], [0.5], [3.0], [1.5]])
        B[:, rows] = signs * targets - shifts
        tensor = template.solve_slab(B, engine="tensor")
        fresh = LpTemplate(model)
        scalar = fresh.solve_slab(B, engine="scalar")
        assert tensor.statuses == scalar.statuses
        assert [s is SolveStatus.OPTIMAL for s in tensor.statuses] == [
            False, True, False, True, False, True,
        ]
        assert np.array_equal(
            tensor.objectives, scalar.objectives, equal_nan=True
        )

    def test_unbounded_instances(self):
        model = Model("unbounded", sense="max")
        x = model.add_var("x", lb=0.0)
        y = model.add_var("y", lb=0.0)
        model.add_constraint(x - y <= 1.0, name="gap")
        model.set_objective(x)
        template = LpTemplate(model)
        B = np.tile(template.base_rhs(), (4, 1))
        tensor = template.solve_slab(B, engine="tensor")
        fresh = LpTemplate(model)
        scalar = fresh.solve_slab(B, engine="scalar")
        assert tensor.statuses == scalar.statuses
        assert all(s is SolveStatus.UNBOUNDED for s in tensor.statuses)

    def test_empty_slab(self):
        sf = transport_sf()
        result = solve_slab(sf, np.empty((0, sf.a.shape[0])))
        assert result.statuses == []
        assert result.carry_basis is None

    def test_rowless_lp(self):
        model = Model("rowless", sense="min")
        model.add_var("x", lb=0.0)
        model.set_objective(model.variables[0])
        template = LpTemplate(model)
        result = template.solve_slab(np.empty((3, 0)))
        assert result.ok.all()
        assert np.allclose(result.objectives, 0.0)

    def test_bad_shapes_rejected(self):
        sf = transport_sf()
        with pytest.raises(ValueError):
            solve_slab(sf, np.zeros(sf.a.shape[0]))
        with pytest.raises(ValueError):
            solve_slab(sf, np.zeros((2, sf.a.shape[0] + 1)))
        with pytest.raises(ValueError):
            solve_slab(
                sf,
                np.zeros((2, sf.a.shape[0])),
                c_matrix=np.zeros((3, sf.a.shape[1])),
            )


class TestTemplateIntegration:
    def test_counters_and_carry_match_engines(self):
        model, _ = build_transport_model()
        B = None
        results = {}
        counters = {}
        for engine in ("tensor", "scalar"):
            template = LpTemplate(model)
            if B is None:
                rng = np.random.default_rng(7)
                K = 30
                B = np.tile(template.base_rhs(), (K, 1))
                rows, signs, shifts = template.rhs_map(
                    [f"dem[{i}]" for i in range(6)]
                )
                B[:, rows] = signs * rng.uniform(0.0, 3.0, (K, 6)) - shifts
            results[engine] = template.solve_slab(B, engine=engine)
            counters[engine] = template.solver_counters()
            counters[engine].pop("lp_seconds")
            template_basis = template._basis
            counters[engine]["carry"] = template_basis
        assert counters["tensor"] == counters["scalar"]
        a, b = results["tensor"], results["scalar"]
        assert a.statuses == b.statuses
        assert np.array_equal(a.objectives, b.objectives, equal_nan=True)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.iterations, b.iterations)

    def test_mip_template_still_rejected(self):
        from repro.solver import VarType

        model = Model("mip", sense="max")
        x = model.add_var("x", lb=0.0, vartype=VarType.INTEGER)
        model.add_constraint(x <= 3.0)
        model.set_objective(x)
        with pytest.raises(ModelError):
            LpTemplate(model)
