"""AnalysisService + HTTP API: submit, poll, fetch, dedupe, errors."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import AnalyzerError
from repro.parallel.campaign import deterministic_view
from repro.service import AnalysisService, make_server

SPEC = {
    "name": "svc-test",
    "seed": 3,
    "defaults": {
        "explainer_samples": 15,
        "generalizer_samples": 0,
        "generator": {
            "max_subspaces": 1,
            "tree_extra_samples": 40,
            "significance_pairs": 12,
        },
    },
    "jobs": [
        {
            "name": "band",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 2},
            },
        }
    ],
}


@pytest.fixture()
def service(tmp_path):
    service = AnalysisService(tmp_path / "store").start()
    yield service
    service.stop()


@pytest.fixture()
def server(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _wait_done(base, campaign_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, campaign = _get(base, f"/campaigns/{campaign_id}")
        if campaign["status"] in ("done", "failed"):
            return campaign
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished")


class TestServiceCore:
    def test_submit_validates_spec(self, service):
        with pytest.raises(AnalyzerError, match="no 'jobs'"):
            service.submit({"name": "empty"})

    def test_submit_rejects_bad_workers(self, tmp_path):
        with pytest.raises(AnalyzerError, match="service workers"):
            AnalysisService(tmp_path / "s", workers=0)

    def test_resubmitted_failed_campaign_reads_pending(self, tmp_path):
        """A re-queued failed campaign must not poll as terminal."""
        from repro.store import RunStore, campaign_id_for
        from repro.parallel.campaign import CampaignSpec, plan_campaign

        store = RunStore(tmp_path / "store")
        spec = CampaignSpec.from_dict(SPEC)
        campaign_id = campaign_id_for(spec.name, spec.seed, plan_campaign(spec))
        service = AnalysisService(store)  # worker not started: stays queued
        submitted = service.submit(SPEC)
        assert submitted["campaign_id"] == campaign_id
        store.set_campaign_status(campaign_id, "failed", error="boom")
        # The ID is still in _active (the worker that failed it has not
        # released it yet) — a failed campaign must requeue regardless.
        again = service.submit(SPEC)
        assert again["status"] == "pending"
        assert store.campaign(campaign_id)["status"] == "pending"

    def test_restart_requeues_unfinished_campaigns(self, tmp_path):
        """A killed service's pending/running campaigns resume on start."""
        from repro.store import RunStore

        store = RunStore(tmp_path / "store")
        cold = AnalysisService(store)  # never started, as before a crash
        submitted = cold.submit(SPEC)
        assert store.campaign(submitted["campaign_id"])["status"] == "pending"

        restarted = AnalysisService(store).start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = store.campaign(submitted["campaign_id"])["status"]
                if status == "done":
                    break
                time.sleep(0.05)
            assert status == "done"
        finally:
            restarted.stop()

    def test_gc_failure_does_not_fail_the_campaign(self, tmp_path, monkeypatch):
        service = AnalysisService(tmp_path / "store", retention=1)

        def broken_gc(keep):
            raise RuntimeError("injected gc failure")

        monkeypatch.setattr(service.store, "gc", broken_gc)
        service.start()
        try:
            submitted = service.submit(SPEC)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = service.campaign_status(submitted["campaign_id"])
                if status["status"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            assert status["status"] == "done"
        finally:
            service.stop()

    def test_execute_and_dedupe(self, service):
        submitted = service.submit(SPEC)
        assert submitted["status"] in ("pending", "running")
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = service.campaign_status(submitted["campaign_id"])
            if status["status"] == "done":
                break
            time.sleep(0.05)
        assert status["status"] == "done"
        again = service.submit(SPEC)
        assert again["campaign_id"] == submitted["campaign_id"]
        assert again["status"] == "done"


class TestHttpApi:
    def test_healthz_and_version(self, server):
        import repro

        status, health = _get(server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["worker_alive"] is True
        assert health["version"] == repro.__version__
        assert health["executor"] == "local"
        assert health["store"] == "ok"
        assert health["uptime_seconds"] >= 0
        status, version = _get(server, "/version")
        assert (status, version) == (200, {"version": repro.__version__})

    def test_domains_endpoint_mirrors_registry(self, server):
        from repro.domains.registry import registry

        status, payload = _get(server, "/domains")
        assert status == 200
        expected = [plugin.to_dict() for plugin in registry().plugins()]
        assert payload == {"domains": expected}
        names = {entry["name"] for entry in payload["domains"]}
        assert {"te", "binpack", "sched", "caching"} <= names

    def test_domain_addressed_spec_submits(self, server, service):
        spec = dict(SPEC, name="svc-domain")
        spec["jobs"] = [
            {
                "name": "caching",
                "problem": {
                    "domain": "caching",
                    "kwargs": {"num_items": 3, "capacity": 2, "trace_len": 6},
                },
            }
        ]
        status, submitted = _post(server, "/campaigns", spec)
        assert status in (200, 202)
        campaign = _wait_done(server, submitted["campaign_id"])
        assert campaign["status"] == "done"
        report = campaign["report"]["problems"][0]
        assert report["problem"]["factory"] == (
            "repro.domains.caching:lru_caching_problem"
        )

    def test_unknown_domain_in_spec_is_400(self, server):
        spec = dict(SPEC, name="svc-bad-domain")
        spec["jobs"] = [
            {"name": "bad", "problem": {"domain": "frobnicate"}}
        ]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/campaigns", spec)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "frobnicate" in body["error"]
        assert "caching" in body["error"]

    def test_full_campaign_lifecycle(self, server, service):
        status, submitted = _post(server, "/campaigns", SPEC)
        assert status == 202
        campaign = _wait_done(server, submitted["campaign_id"])
        assert campaign["status"] == "done"
        assert [r["status"] for r in campaign["runs"]] == ["done"]
        assert campaign["report"]["num_subspaces_total"] >= 1

        # The stored per-run report equals a direct in-process run.
        run_id = campaign["runs"][0]["run_id"]
        status, report = _get(server, f"/runs/{run_id}/report")
        assert status == 200
        from repro.parallel.campaign import CampaignSpec, run_campaign

        direct = run_campaign(CampaignSpec.from_dict(SPEC), workers=1)
        direct_problem = direct["problems"][0]
        assert deterministic_view(report) == deterministic_view(direct_problem)

        # Resubmission of a finished campaign returns 200 + done.
        status, again = _post(server, "/campaigns", SPEC)
        assert (status, again["status"]) == (200, "done")

        # Listings see it.
        _, campaigns = _get(server, "/campaigns")
        assert [c["campaign_id"] for c in campaigns["campaigns"]] == [
            submitted["campaign_id"]
        ]
        _, runs = _get(server, "/runs")
        assert [r["run_id"] for r in runs["runs"]] == [run_id]

    def test_bad_spec_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/campaigns", {"name": "empty"})
        assert excinfo.value.code == 400
        assert "jobs" in json.loads(excinfo.value.read())["error"]

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server + "/campaigns", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_non_object_json_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/campaigns", [1, 2])
        assert excinfo.value.code == 400
        assert "JSON object" in json.loads(excinfo.value.read())["error"]

    def test_bad_workers_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/campaigns?workers=zero", SPEC)
        assert excinfo.value.code == 400

    def test_unknown_paths_and_ids_are_404(self, server):
        for path in (
            "/nope",
            "/campaigns/camp-0000000000000000",
            "/runs/run-0000000000000000/report",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, path)
            assert excinfo.value.code == 404, path
