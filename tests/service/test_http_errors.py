"""HTTP error discipline: every failure is a JSON body with the right
status — 400 malformed, 404 unknown, 405 wrong method, 413 oversized,
429 backlog full — plus the /fabric endpoint's local-mode 404."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import MAX_BODY_BYTES, AnalysisService, make_server

SPEC = {
    "name": "http-errors",
    "seed": 3,
    "defaults": {
        "explainer_samples": 15,
        "generalizer_samples": 0,
        "generator": {"max_subspaces": 1},
    },
    "jobs": [
        {
            "name": "band",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 2},
            },
        }
    ],
}


@pytest.fixture()
def service(tmp_path):
    service = AnalysisService(tmp_path / "store").start()
    yield service
    service.stop()


@pytest.fixture()
def server(service):
    server = make_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def _request(base, path, method="GET", data=None, headers=None):
    """Issue one request; return (status, parsed JSON body, headers)."""
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestMalformedRequests:
    def test_malformed_json_is_400_with_json_error(self, server):
        status, body, _ = _request(
            server, "/campaigns", method="POST", data=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_non_object_spec_is_400(self, server):
        status, body, _ = _request(
            server, "/campaigns", method="POST", data=b'["a", "list"]'
        )
        assert status == 400
        assert "JSON object" in body["error"]

    def test_invalid_spec_is_400(self, server):
        status, body, _ = _request(
            server,
            "/campaigns",
            method="POST",
            data=json.dumps({"name": "x"}).encode(),
        )
        assert status == 400
        assert body["error"]

    def test_bad_workers_param_is_400(self, server):
        status, body, _ = _request(
            server,
            "/campaigns?workers=soon",
            method="POST",
            data=json.dumps(SPEC).encode(),
        )
        assert status == 400
        assert "integer" in body["error"]


class TestUnknownRoutes:
    def test_unknown_get_path_is_404(self, server):
        status, body, _ = _request(server, "/nope/nothing")
        assert status == 404
        assert "unknown path" in body["error"]

    def test_unknown_post_path_is_404(self, server):
        status, body, _ = _request(
            server, "/campaigns/abc/retry", method="POST", data=b"{}"
        )
        assert status == 404

    def test_fabric_is_404_in_local_mode(self, server):
        status, body, _ = _request(server, "/fabric")
        assert status == 404
        assert "local executor" in body["error"]


class TestWrongMethods:
    @pytest.mark.parametrize("method", ["PUT", "DELETE", "PATCH"])
    def test_unsupported_methods_are_405(self, server, method):
        status, body, headers = _request(
            server, "/campaigns", method=method, data=b"{}"
        )
        assert status == 405
        assert method in body["error"]
        assert "GET" in headers["Allow"]

    def test_post_to_a_get_only_route_is_405(self, server):
        for path in ("/healthz", "/runs", "/fabric"):
            status, body, headers = _request(
                server, path, method="POST", data=b"{}"
            )
            assert status == 405, path
            assert headers["Allow"] == "GET"
            assert "POST /campaigns" in body["error"]


class TestOversizedPayload:
    def test_body_over_the_cap_is_413(self, server):
        padding = "x" * (MAX_BODY_BYTES + 1)
        status, body, _ = _request(
            server,
            "/campaigns",
            method="POST",
            data=json.dumps({"pad": padding}).encode(),
        )
        assert status == 413
        assert "exceeds" in body["error"]

    def test_body_at_the_cap_is_parsed_normally(self, server):
        # One byte under the cap passes the size gate and fails later,
        # in spec validation — proving 413 is purely the size check.
        padding = "x" * (MAX_BODY_BYTES - 100)
        status, body, _ = _request(
            server,
            "/campaigns",
            method="POST",
            data=json.dumps({"pad": padding}).encode(),
        )
        assert status == 400


class TestBackpressure:
    def test_full_backlog_is_429_with_retry_after(self, tmp_path):
        # The service is deliberately never started: nothing drains the
        # backlog, so the second distinct submission must bounce.
        service = AnalysisService(tmp_path / "store", max_pending=1)
        server = make_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, body, _ = _request(
                base,
                "/campaigns",
                method="POST",
                data=json.dumps(SPEC).encode(),
            )
            assert status == 202
            other = dict(SPEC, name="svc-test-2")
            status, body, headers = _request(
                base,
                "/campaigns",
                method="POST",
                data=json.dumps(other).encode(),
            )
            assert status == 429
            assert "backlog" in body["error"]
            assert int(headers["Retry-After"]) > 0
        finally:
            server.shutdown()
            server.server_close()
