"""Observability surface: /metrics, /dashboard, progress, logging, spans."""

import json
import logging
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "obs"))
from promtext import parse, sample  # noqa: E402 - tests/obs helper

from repro.obs import EXPOSITION_CONTENT_TYPE, install, uninstall  # noqa: E402
from repro.parallel.campaign import (  # noqa: E402
    CampaignSpec,
    deterministic_view,
    run_campaign,
)
from repro.service import AnalysisService, make_server  # noqa: E402

SPEC = {
    "name": "obs-test",
    "seed": 11,
    "defaults": {
        "explainer_samples": 15,
        "generalizer_samples": 0,
        "generator": {
            "max_subspaces": 1,
            "tree_extra_samples": 40,
            "significance_pairs": 12,
        },
    },
    "jobs": [
        {
            "name": "band",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 2},
            },
        }
    ],
}


@pytest.fixture()
def service(tmp_path):
    service = AnalysisService(tmp_path / "store").start()
    yield service
    service.stop()


@pytest.fixture()
def server(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def _get_raw(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read(),
        )


def _get(base, path):
    status, _, body = _get_raw(base, path)
    return status, json.loads(body)


def _submit_and_wait(base, spec=SPEC, timeout=60.0):
    request = urllib.request.Request(
        base + "/campaigns", data=json.dumps(spec).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        campaign_id = json.loads(response.read())["campaign_id"]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, campaign = _get(base, f"/campaigns/{campaign_id}")
        if campaign["status"] in ("done", "failed"):
            return campaign
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished")


class TestMetricsEndpoint:
    def test_scrape_content_type_and_families(self, server):
        campaign = _submit_and_wait(server)
        assert campaign["status"] == "done"
        status, content_type, body = _get_raw(server, "/metrics")
        assert status == 200
        assert content_type == EXPOSITION_CONTENT_TYPE
        families = parse(body.decode("utf-8"))
        # oracle + search totals folded from the finished unit
        assert sample(
            families, "xplain_units_completed_total",
            domain="custom", resumed="false",
        ) == 1
        assert sample(
            families, "xplain_oracle_points_total", domain="custom"
        ) > 0
        assert sample(families, "xplain_campaigns_completed_total") == 1
        # service gauges synthesized per scrape
        assert sample(families, "xplain_service_worker_alive") == 1
        assert sample(families, "xplain_service_uptime_seconds") >= 0
        # HTTP latency histogram saw the polling GETs
        assert families["xplain_http_request_seconds"]["type"] == "histogram"
        assert sample(
            families, "xplain_http_requests_total",
            method="GET", route="/campaigns/{id}",
        ) > 0

    def test_scrape_is_read_only(self, server):
        _submit_and_wait(server)

        def work_families(text):
            return {
                (name, labels): value
                for name, entry in parse(text).items()
                if name.startswith(("xplain_oracle", "xplain_units"))
                for (name_, labels), value in entry["samples"].items()
                for name in (name_,)
            }

        first = _get_raw(server, "/metrics")[2].decode()
        second = _get_raw(server, "/metrics")[2].decode()
        assert work_families(first) == work_families(second)

    def test_metrics_route_rejects_post(self, server):
        request = urllib.request.Request(
            server + "/metrics", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 405

    def test_unknown_routes_use_low_cardinality_label(self, service, server):
        try:
            urllib.request.urlopen(server + "/no/such/route", timeout=10)
        except urllib.error.HTTPError:
            pass
        snap = service.metrics.snapshot()
        labels = snap["xplain_http_requests_total"]["samples"]
        assert all('"(unknown)"' in k or '"/' in k for k in labels)


class TestDashboard:
    def test_dashboard_serves_self_contained_html(self, server):
        status, content_type, body = _get_raw(server, "/dashboard")
        assert status == 200
        assert content_type.startswith("text/html")
        text = body.decode("utf-8")
        assert text.startswith("<!DOCTYPE html>")
        # self-contained: no external scripts, styles, or fonts
        assert "src=\"http" not in text and "href=\"http" not in text
        # the page drives the documented JSON API
        for path in ("/healthz", "/campaigns", "/fabric", "/search"):
            assert path in text


class TestProgress:
    def test_campaign_progress_fraction(self, server):
        campaign = _submit_and_wait(server)
        assert campaign["units_total"] == 1
        assert campaign["units_done"] == 1
        assert campaign["progress"] == 1.0

    def test_unknown_campaign_still_404s(self, server):
        try:
            urllib.request.urlopen(server + "/campaigns/nope", timeout=10)
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as err:
            assert err.code == 404

    def test_list_campaigns_counts_done_units(self, service):
        service.submit(SPEC)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            rows = service.store.list_campaigns()
            if rows and rows[0]["status"] == "done":
                break
            time.sleep(0.05)
        assert rows[0]["num_runs"] == 1
        assert rows[0]["num_done"] == 1


class TestRequestLogging:
    def test_requests_log_through_stdlib_logging(self, server, caplog):
        with caplog.at_level(logging.INFO, logger="repro.service"):
            _get(server, "/healthz")
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and not any(
                "/healthz" in record.getMessage()
                for record in caplog.records
            ):
                time.sleep(0.01)
        assert any(
            "/healthz" in record.getMessage() for record in caplog.records
        ), "request line never reached the 'repro.service' logger"


class TestDeterminismContract:
    def test_instrumented_run_is_bit_identical(self, monkeypatch):
        spec = CampaignSpec.from_dict(SPEC)
        monkeypatch.delenv("XPLAIN_OBS", raising=False)
        plain = run_campaign(spec)
        monkeypatch.setenv("XPLAIN_OBS", "1")
        registry = install()
        try:
            instrumented = run_campaign(spec)
        finally:
            uninstall()
        assert deterministic_view(plain) == deterministic_view(instrumented)
        # and the instrumented run actually recorded something
        spans = instrumented["problems"][0]["timing"]["spans"]
        names = {record["name"] for record in spans}
        assert {"unit", "stage.generate", "oracle.batch"} <= names
        snap = registry.snapshot()
        assert "xplain_oracle_batch_seconds" in snap
        assert "xplain_units_completed_total" in snap
