"""Graceful stop/start: drain at a unit boundary, resume from the store.

Satellite of DESIGN.md §13: ``AnalysisService.stop()`` must not abandon
a mid-flight campaign. The worker stops at the next unit boundary (the
finished unit is already persisted), the campaign flips back to
``pending``, and the next ``start()`` requeues it — resuming from the
store, never re-executing a completed unit.
"""

import time

from repro.parallel.campaign import (
    CampaignSpec,
    deterministic_view,
    run_campaign,
)
from repro.service import AnalysisService


def _spec_dict(counter_path):
    return {
        "name": "drain",
        "seed": 5,
        "defaults": {
            "explainer_samples": 15,
            "generalizer_samples": 0,
            "generator": {
                "max_subspaces": 1,
                "tree_extra_samples": 40,
                "significance_pairs": 12,
            },
        },
        "jobs": [
            {
                "name": f"counted-{i}",
                "problem": {
                    "factory": "repro.parallel._testing:counted_band_problem",
                    "kwargs": {
                        "counter_path": str(counter_path),
                        "dim": 2,
                        "lo": 0.5 + 0.05 * i,
                        "hi": 0.9,
                    },
                },
            }
            for i in range(3)
        ],
    }


def _builds(counter_path):
    if not counter_path.exists():
        return 0
    return len(counter_path.read_text().splitlines())


def _wait(predicate, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


class TestStopDrain:
    def test_stop_drains_and_restart_resumes_without_rework(self, tmp_path):
        counter = tmp_path / "builds.txt"
        spec_data = _spec_dict(counter)
        service = AnalysisService(tmp_path / "store").start()
        campaign_id = service.submit(spec_data)["campaign_id"]
        # Let the worker get at least one unit into the store, then
        # ask for a drain mid-campaign.
        assert _wait(lambda: _builds(counter) >= 1)
        assert service.stop(timeout=120.0), "stop must drain, not time out"

        row = service.store.campaign(campaign_id)
        assert row["status"] == "pending", (
            "an interrupted campaign is pending again, not failed/running"
        )
        completed = [r for r in row["runs"] if r["status"] == "done"]
        assert completed, "the drained unit must already be persisted"
        assert len(completed) < len(spec_data["jobs"]), (
            "stop was supposed to interrupt mid-campaign"
        )
        builds_at_stop = _builds(counter)
        assert builds_at_stop == len(completed)

        # Restart: the pending campaign requeues itself and finishes.
        service.start()
        try:
            assert _wait(
                lambda: service.store.campaign(campaign_id)["status"]
                in ("done", "failed")
            )
            row = service.store.campaign(campaign_id)
            assert row["status"] == "done"
            # Completed units were loaded from the store, not re-built:
            # total builds == one per job, exactly.
            assert _builds(counter) == len(spec_data["jobs"])
        finally:
            assert service.stop()

        # And the drained-then-resumed report is bit-identical to an
        # uninterrupted serial run.
        fresh = run_campaign(CampaignSpec.from_dict(_spec_dict(counter)))
        assert deterministic_view(
            service.store.campaign(campaign_id)["report"]
        ) == deterministic_view(fresh)

    def test_stop_with_empty_queue_is_immediate(self, tmp_path):
        service = AnalysisService(tmp_path / "store").start()
        assert service.stop(timeout=10.0)
        assert not service.running

    def test_stop_is_idempotent(self, tmp_path):
        service = AnalysisService(tmp_path / "store").start()
        assert service.stop()
        assert service.stop()


class TestFabricMode:
    def test_fabric_service_runs_a_campaign_end_to_end(self, tmp_path):
        counter = tmp_path / "builds.txt"
        spec_data = _spec_dict(counter)
        service = AnalysisService(
            tmp_path / "store",
            workers=2,
            executor="fabric",
            lease_seconds=5.0,
        ).start()
        try:
            campaign_id = service.submit(spec_data)["campaign_id"]
            assert _wait(
                lambda: service.store.campaign(campaign_id)["status"]
                in ("done", "failed")
            )
            row = service.store.campaign(campaign_id)
            assert row["status"] == "done"
            status = service.fabric_status()
            assert status["units"]["done"] == len(spec_data["jobs"])
            assert status["counters"]["commits"] == len(spec_data["jobs"])
            assert status["fleet"]["alive"] == 2
        finally:
            assert service.stop(timeout=120.0)
        # The fleet is torn down with the service.
        assert service._fabric_supervisor.alive_workers() == 0

    def test_fabric_report_matches_local_execution(self, tmp_path):
        # Run IDs are content-addressed over the payload (which embeds
        # counter_path), so both runs must share the same spec dict.
        counter = tmp_path / "builds.txt"
        spec_data = _spec_dict(counter)
        service = AnalysisService(
            tmp_path / "store", executor="fabric"
        ).start()
        try:
            campaign_id = service.submit(spec_data)["campaign_id"]
            assert _wait(
                lambda: service.store.campaign(campaign_id)["status"] == "done"
            )
            served = service.store.campaign(campaign_id)["report"]
        finally:
            service.stop(timeout=120.0)
        fresh = run_campaign(CampaignSpec.from_dict(_spec_dict(counter)))
        assert deterministic_view(served) == deterministic_view(fresh)

    def test_local_mode_has_no_fabric_status(self, tmp_path):
        service = AnalysisService(tmp_path / "store")
        assert service.fabric_status() is None
