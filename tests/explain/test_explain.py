"""Tests for the Type-2 explainer: scoring, heatmaps, narratives, summary."""

import numpy as np
import pytest

from repro.domains.binpack import first_fit_problem
from repro.domains.te import (
    build_demand_set,
    demand_pinning_problem,
    fig1a_demand_pairs,
    fig1a_topology,
)
from repro.exceptions import ExplainError
from repro.explain import (
    EdgeSample,
    build_heatmap,
    compression_ratio,
    explain_heatmap,
    score_sample,
    summarize_heatmap,
)
from repro.subspace.region import Box


@pytest.fixture(scope="module")
def dp_problem():
    ds = build_demand_set(fig1a_topology(), fig1a_demand_pairs(), num_paths=2)
    return demand_pinning_problem(ds, threshold=50.0, d_max=100.0)


@pytest.fixture(scope="module")
def dp_adversarial_box():
    # The known adversarial neighborhood: d13 near the 50 threshold,
    # d12/d23 large.
    return Box((40.0, 85.0, 85.0), (50.0, 100.0, 100.0))


class TestScoring:
    def test_three_way_scores(self):
        both = EdgeSample(heuristic_flow=1.0, benchmark_flow=1.0)
        only_h = EdgeSample(heuristic_flow=1.0, benchmark_flow=0.0)
        only_b = EdgeSample(heuristic_flow=0.0, benchmark_flow=1.0)
        neither = EdgeSample(heuristic_flow=0.0, benchmark_flow=0.0)
        assert both.score == 0
        assert only_h.score == -1
        assert only_b.score == 1
        assert neither.score == 0
        assert not neither.either_uses

    def test_tolerance(self):
        tiny = EdgeSample(heuristic_flow=1e-9, benchmark_flow=0.0)
        assert tiny.score == 0

    def test_score_sample_union_of_edges(self):
        scores = score_sample(
            {("a", "b"): 1.0}, {("b", "c"): 2.0}
        )
        assert scores[("a", "b")].score == -1
        assert scores[("b", "c")].score == 1


class TestHeatmapOnDp(object):
    def test_fig4a_colors(self, dp_problem, dp_adversarial_box):
        rng = np.random.default_rng(0)
        heatmap = build_heatmap(dp_problem, dp_adversarial_box, 60, rng)
        # The paper's Fig. 4a: DP (heuristic) uses the pinned shortest
        # path 1-2-3 (red); OPT uses the alternative 1-4-5-3 (blue).
        shortest = heatmap.score("d[1->3]", "p[1-2-3]")
        alternative = heatmap.score("d[1->3]", "p[1-4-5-3]")
        assert shortest.mean_score < -0.5
        assert alternative.mean_score > 0.5
        assert shortest.color in ("red", "strong-red")
        assert alternative.color in ("blue", "strong-blue")

    def test_heatmap_rates_consistent(self, dp_problem, dp_adversarial_box):
        rng = np.random.default_rng(1)
        heatmap = build_heatmap(dp_problem, dp_adversarial_box, 40, rng)
        for score in heatmap.scores.values():
            assert 0.0 <= score.heuristic_use_rate <= 1.0
            assert 0.0 <= score.benchmark_use_rate <= 1.0
            assert -1.0 <= score.mean_score <= 1.0

    def test_explicit_points_accepted(self, dp_problem):
        x = np.array([[50.0, 100.0, 100.0]])
        heatmap = build_heatmap(
            dp_problem, x, num_samples=1, rng=np.random.default_rng(0)
        )
        assert heatmap.num_samples == 1

    def test_render_contains_edges(self, dp_problem, dp_adversarial_box):
        rng = np.random.default_rng(2)
        heatmap = build_heatmap(dp_problem, dp_adversarial_box, 30, rng)
        text = heatmap.render()
        assert "p[1-2-3]" in text
        assert "heuristic-only" in text

    def test_problem_without_flows_rejected(self):
        from repro.analyzer import AnalyzedProblem, GapSample

        bare = AnalyzedProblem(
            name="bare",
            input_names=["x"],
            input_box=Box((0.0,), (1.0,)),
            evaluate=lambda x: GapSample(x, 0.0, 0.0),
        )
        with pytest.raises(ExplainError):
            build_heatmap(
                bare, bare.input_box, 5, np.random.default_rng(0)
            )


class TestNarrative:
    def test_dp_story_matches_paper(self, dp_problem, dp_adversarial_box):
        rng = np.random.default_rng(3)
        heatmap = build_heatmap(dp_problem, dp_adversarial_box, 60, rng)
        report = explain_heatmap(heatmap, dp_problem.graph)
        text = report.render()
        # The heuristic routes 1~>3 over its shortest path...
        assert "1~>3" in text
        assert "shortest path" in text
        assert report.heuristic_side and report.benchmark_side

    def test_no_divergence_report(self, dp_problem):
        # Demands far below threshold where DP == OPT: no divergence.
        rng = np.random.default_rng(4)
        box = Box((1.0, 1.0, 1.0), (5.0, 5.0, 5.0))
        heatmap = build_heatmap(dp_problem, box, 20, rng)
        report = explain_heatmap(heatmap, dp_problem.graph)
        assert not report.heuristic_side
        assert "same structural decisions" in report.render() or "no systematic" in report.render()


class TestSummarize:
    def test_groups_by_role(self, dp_problem, dp_adversarial_box):
        rng = np.random.default_rng(5)
        heatmap = build_heatmap(dp_problem, dp_adversarial_box, 40, rng)
        summaries = summarize_heatmap(heatmap, dp_problem.graph)
        keys = {s.key for s in summaries}
        assert any("DEMANDS" in k for k in keys)
        assert any("PATHS" in k for k in keys)

    def test_compression(self, dp_problem, dp_adversarial_box):
        rng = np.random.default_rng(6)
        heatmap = build_heatmap(dp_problem, dp_adversarial_box, 40, rng)
        summaries = summarize_heatmap(heatmap, dp_problem.graph)
        ratio = compression_ratio(heatmap, summaries)
        assert 0.0 < ratio < 1.0  # summary is strictly smaller

    def test_vbp_summary_groups(self):
        problem = first_fit_problem(num_balls=3, num_bins=3)
        rng = np.random.default_rng(7)
        box = Box((0.3, 0.5, 0.5), (0.5, 0.6, 0.6))
        heatmap = build_heatmap(problem, box, 25, rng)
        summaries = summarize_heatmap(heatmap, problem.graph)
        assert any("BALLS" in s.key for s in summaries)
