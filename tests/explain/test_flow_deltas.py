"""Tests for the flow-volume delta extension (§5.3 open question)."""

import numpy as np
import pytest

from repro.domains.te import (
    build_demand_set,
    demand_pinning_problem,
    fig1a_demand_pairs,
    fig1a_topology,
)
from repro.explain import build_heatmap
from repro.explain.heatmap import EdgeScore
from repro.subspace import Box


def make_score(h_flow, b_flow, score=0.0):
    return EdgeScore(
        edge=("a", "b"),
        mean_score=score,
        heuristic_use_rate=1.0,
        benchmark_use_rate=1.0,
        mean_heuristic_flow=h_flow,
        mean_benchmark_flow=b_flow,
        samples=10,
    )


class TestFlowDelta:
    def test_delta_sign_convention(self):
        assert make_score(2.0, 5.0).flow_delta == pytest.approx(3.0)
        assert make_score(5.0, 2.0).flow_delta == pytest.approx(-3.0)

    def test_volume_divergence_invisible_to_score(self):
        # Both sides use the edge (score 0), but volumes differ a lot:
        # exactly the case the paper's open question is about.
        score = make_score(1.0, 9.0, score=0.0)
        assert score.mean_score == 0.0
        assert score.flow_delta == pytest.approx(8.0)


class TestHeatmapFlowDeltas:
    @pytest.fixture(scope="class")
    def dp_heatmap(self):
        demand_set = build_demand_set(
            fig1a_topology(), fig1a_demand_pairs(), num_paths=2
        )
        problem = demand_pinning_problem(
            demand_set, threshold=50.0, d_max=100.0
        )
        box = Box((40.0, 85.0, 85.0), (50.0, 100.0, 100.0))
        return build_heatmap(
            problem, box, 40, np.random.default_rng(0)
        )

    def test_deltas_ranked_by_magnitude(self, dp_heatmap):
        deltas = dp_heatmap.flow_deltas(min_delta=1e-9)
        magnitudes = [abs(d.flow_delta) for d in deltas]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_volume_story_on_shared_route(self, dp_heatmap):
        """The d(1->2) demand routes over p[1-2] under BOTH algorithms
        (score ~0 there), but DP only fits ~55 of it next to the pinned
        flow while OPT routes ~94: the volume table surfaces this."""
        shared = dp_heatmap.score("d[1->2]", "p[1-2]")
        assert shared.heuristic_use_rate > 0.9
        assert shared.benchmark_use_rate > 0.9
        assert abs(shared.mean_score) < 0.2  # invisible to the 3-way score
        assert shared.flow_delta > 20.0  # but glaring in volumes

    def test_saturated_link_has_negative_delta(self, dp_heatmap):
        """DP saturates l[1-2] (pinned + partial d12 = 100) while OPT
        carries only d12 there: the heuristic-side volume is higher."""
        shared = dp_heatmap.score("l[1-2]", "met")
        assert shared.mean_heuristic_flow == pytest.approx(100.0, abs=1.0)
        assert shared.flow_delta < 0.0

    def test_render_contains_edge_and_sides(self, dp_heatmap):
        text = dp_heatmap.render_flow_deltas(max_rows=6)
        assert "flow deltas" in text
        assert "->" in text
        assert ("B>" in text) or ("H<" in text)

    def test_render_no_divergence(self):
        from repro.explain.heatmap import Heatmap

        empty = Heatmap(scores={}, num_samples=0)
        assert "no volume divergence" in empty.render_flow_deltas()
