"""Tests for the analyzer substrate: interface, exclusion, black-box."""

import numpy as np
import pytest

from repro.analyzer import (
    AnalyzedProblem,
    BlackBoxAnalyzer,
    ExactEncoding,
    GapSample,
    GapStatistics,
    MetaOptAnalyzer,
    add_box_exclusion,
    bad_sample_mask,
    relative_gap,
    sample_gaps,
)
from repro.analyzer.exclusion import ExclusionCoversSpace
from repro.exceptions import AnalyzerError
from repro.solver import Model, SolveStatus
from repro.subspace.region import Box


def make_quadratic_problem(dim=2, peak=None):
    """Synthetic problem: gap peaks at a known point (no encoding)."""
    peak = np.asarray(peak if peak is not None else [0.8] * dim)

    def evaluate(x):
        gap = max(0.0, 1.0 - 4.0 * float(np.sum((x - peak) ** 2)))
        return GapSample(
            x=x, benchmark_value=gap, heuristic_value=0.0
        )

    return AnalyzedProblem(
        name="quadratic",
        input_names=[f"x{i}" for i in range(dim)],
        input_box=Box.from_arrays(np.zeros(dim), np.ones(dim)),
        evaluate=evaluate,
    )


def make_linear_encoding_problem():
    """Problem whose exact encoding is a tiny LP: gap = x0 + x1."""

    def evaluate(x):
        return GapSample(
            x=x, benchmark_value=float(x[0] + x[1]), heuristic_value=0.0
        )

    def exact_model():
        model = Model("toy", sense="max")
        a = model.add_var("a", lb=0.0, ub=1.0)
        b = model.add_var("b", lb=0.0, ub=1.0)
        model.set_objective(a + b)
        return ExactEncoding(model=model, input_vars=[a, b])

    return AnalyzedProblem(
        name="linear",
        input_names=["a", "b"],
        input_box=Box.from_arrays(np.zeros(2), np.ones(2)),
        evaluate=evaluate,
        exact_model=exact_model,
    )


class TestInterface:
    def test_gap_sample_property(self):
        sample = GapSample(np.zeros(1), benchmark_value=5.0, heuristic_value=3.0)
        assert sample.gap == pytest.approx(2.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(AnalyzerError):
            AnalyzedProblem(
                name="bad",
                input_names=["a"],
                input_box=Box.from_arrays(np.zeros(2), np.ones(2)),
                evaluate=lambda x: GapSample(x, 0.0, 0.0),
            )

    def test_named_input(self):
        problem = make_quadratic_problem()
        x = problem.named_input({"x0": 0.3, "x1": 0.4})
        assert list(x) == [0.3, 0.4]
        with pytest.raises(AnalyzerError):
            problem.named_input({"x0": 0.3})

    def test_gaps_vectorized(self):
        problem = make_quadratic_problem()
        xs = np.array([[0.8, 0.8], [0.0, 0.0]])
        gaps = problem.gaps(xs)
        assert gaps[0] == pytest.approx(1.0)
        assert gaps[1] == pytest.approx(0.0)

    def test_describe_input(self):
        problem = make_quadratic_problem()
        text = problem.describe_input(np.array([0.5, 0.25]))
        assert "x0=0.5" in text and "x1=0.25" in text


class TestMetaOptAnalyzer:
    def test_requires_encoding(self):
        problem = make_quadratic_problem()
        with pytest.raises(AnalyzerError):
            MetaOptAnalyzer(problem).find_adversarial()

    def test_finds_encoding_optimum(self):
        problem = make_linear_encoding_problem()
        example = MetaOptAnalyzer(problem, backend="simplex").find_adversarial()
        assert example.validated_gap == pytest.approx(2.0)
        assert np.allclose(example.x, [1.0, 1.0])

    def test_exclusion_moves_search(self):
        problem = make_linear_encoding_problem()
        analyzer = MetaOptAnalyzer(problem, backend="simplex")
        first = analyzer.find_adversarial()
        corner = Box((0.9, 0.9), (1.0, 1.0))
        second = analyzer.find_adversarial(excluded=[corner])
        assert second is not None
        assert not corner.contains(second.x)
        assert second.validated_gap < first.validated_gap

    def test_exclusion_of_whole_space_returns_none(self):
        problem = make_linear_encoding_problem()
        analyzer = MetaOptAnalyzer(problem, backend="simplex")
        everything = Box((0.0, 0.0), (1.0, 1.0))
        assert analyzer.find_adversarial(excluded=[everything]) is None

    def test_validation_catches_lying_encoding(self):
        problem = make_linear_encoding_problem()

        def lying_model():
            model = Model("liar", sense="max")
            a = model.add_var("a", lb=0.0, ub=1.0)
            b = model.add_var("b", lb=0.0, ub=1.0)
            model.set_objective(10 * a + 10 * b)  # predicts 20, oracle says 2
            return ExactEncoding(model=model, input_vars=[a, b])

        problem.exact_model = lying_model
        with pytest.raises(AnalyzerError, match="mismatch"):
            MetaOptAnalyzer(problem, backend="simplex").find_adversarial()


class TestExclusionConstraint:
    def test_excluded_point_infeasible(self):
        model = Model("excl", sense="max")
        x = model.add_var("x", lb=0.0, ub=10.0)
        model.set_objective(x)
        add_box_exclusion(model, [x], Box((8.0,), (10.0,)), index=0)
        solution = model.solve(backend="scipy")
        assert solution.is_optimal
        # Best allowed point is just below the box.
        assert solution.objective == pytest.approx(8.0, abs=1e-3)

    def test_multi_dim_exclusion_keeps_outside_corner(self):
        model = Model("excl2", sense="max")
        x = model.add_var("x", lb=0.0, ub=1.0)
        y = model.add_var("y", lb=0.0, ub=1.0)
        model.set_objective(x + y)
        add_box_exclusion(model, [x, y], Box((0.5, 0.5), (1.0, 1.0)), index=0)
        solution = model.solve(backend="scipy")
        # Optimum outside the excluded corner: one coordinate near 0.5.
        assert solution.objective == pytest.approx(1.5, abs=1e-3)

    def test_full_cover_raises(self):
        model = Model("excl3", sense="max")
        x = model.add_var("x", lb=0.0, ub=1.0)
        model.set_objective(x)
        with pytest.raises(ExclusionCoversSpace):
            add_box_exclusion(model, [x], Box((0.0,), (1.0,)), index=0)


class TestBlackBox:
    @pytest.mark.parametrize("strategy", ["random", "hillclimb", "anneal"])
    def test_strategies_find_the_peak(self, strategy):
        problem = make_quadratic_problem()
        analyzer = BlackBoxAnalyzer(
            problem, strategy=strategy, budget=300, seed=2
        )
        example = analyzer.find_adversarial()
        assert example is not None
        assert example.validated_gap > 0.5

    def test_respects_exclusion(self):
        problem = make_quadratic_problem()
        analyzer = BlackBoxAnalyzer(
            problem, strategy="hillclimb", budget=200, seed=2
        )
        peak_box = Box((0.6, 0.6), (1.0, 1.0))
        example = analyzer.find_adversarial(excluded=[peak_box])
        if example is not None:
            assert not peak_box.contains(example.x)

    def test_min_gap_cutoff(self):
        problem = make_quadratic_problem()
        analyzer = BlackBoxAnalyzer(problem, strategy="random", budget=50, seed=0)
        assert analyzer.find_adversarial(min_gap=10.0) is None

    def test_unknown_strategy_rejected(self):
        problem = make_quadratic_problem()
        with pytest.raises(AnalyzerError):
            BlackBoxAnalyzer(problem, strategy="quantum").find_adversarial()

    def test_history_recorded(self):
        problem = make_quadratic_problem()
        analyzer = BlackBoxAnalyzer(problem, strategy="random", budget=30, seed=0)
        analyzer.find_adversarial()
        assert len(analyzer.history) == 30


class TestGapHelpers:
    def test_gap_statistics(self):
        gaps = np.array([0.0, 1.0, 2.0, 3.0])
        stats = GapStatistics.from_gaps(gaps, threshold=1.5)
        assert stats.count == 4
        assert stats.maximum == 3.0
        assert stats.fraction_above == pytest.approx(0.5)

    def test_gap_statistics_empty(self):
        stats = GapStatistics.from_gaps(np.array([]), threshold=1.0)
        assert stats.count == 0

    def test_relative_gap(self):
        assert relative_gap(30.0, 100.0) == pytest.approx(0.3)
        assert relative_gap(1.0, 0.0) == 0.0

    def test_bad_sample_mask(self):
        mask = bad_sample_mask(np.array([0.1, 0.9]), threshold=0.5)
        assert list(mask) == [False, True]

    def test_sample_gaps_shapes(self):
        problem = make_quadratic_problem()
        rng = np.random.default_rng(0)
        points, gaps = sample_gaps(problem, problem.input_box, 16, rng)
        assert points.shape == (16, 2)
        assert gaps.shape == (16,)
