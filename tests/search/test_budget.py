"""The budget ledger: limits, stage accounting, serialization."""

import pytest

from repro.exceptions import SearchError
from repro.search import BudgetLedger


class TestLedgerBasics:
    def test_unlimited_by_default(self):
        ledger = BudgetLedger()
        assert ledger.limit is None
        assert ledger.remaining() is None
        assert not ledger.exhausted

    def test_charge_accumulates_per_stage(self):
        ledger = BudgetLedger()
        ledger.charge(10, "tree")
        ledger.charge(5, "tree")
        ledger.charge(3, "analyzer")
        assert ledger.spent == 18
        assert ledger.stage_spent("tree") == 15
        assert ledger.stage_spent("analyzer") == 3
        assert ledger.stage_spent("unknown") == 0

    def test_charge_zero_is_free(self):
        ledger = BudgetLedger()
        ledger.charge(0, "tree")
        assert ledger.spent == 0
        assert ledger.stages == {}

    def test_negative_charge_rejected(self):
        with pytest.raises(SearchError, match="cannot charge"):
            BudgetLedger().charge(-1, "tree")

    def test_bad_limit_rejected(self):
        with pytest.raises(SearchError, match="budget limit"):
            BudgetLedger(limit=0)
        with pytest.raises(SearchError, match="budget limit"):
            BudgetLedger(limit=2.5)


class TestLimitedLedger:
    def test_take_clips_to_remaining(self):
        ledger = BudgetLedger(limit=10)
        assert ledger.take(6, "a") == 6
        assert ledger.remaining() == 4
        assert ledger.take(6, "a") == 4  # clipped
        assert ledger.exhausted
        assert ledger.take(1, "a") == 0

    def test_take_unlimited_grants_everything(self):
        ledger = BudgetLedger()
        assert ledger.take(1000, "a") == 1000
        assert ledger.take(0, "a") == 0

    def test_charge_records_overdraw_faithfully(self):
        # charge() never clips: the caller already evaluated the points.
        ledger = BudgetLedger(limit=5)
        ledger.charge(8, "a")
        assert ledger.spent == 8
        assert ledger.remaining() == 0
        assert ledger.exhausted


class TestLedgerSerialization:
    def test_round_trip(self):
        ledger = BudgetLedger(limit=64)
        ledger.charge(10, "tree")
        ledger.charge(7, "analyzer")
        data = ledger.to_dict()
        back = BudgetLedger.from_dict(data)
        assert back.to_dict() == data
        assert back.limit == 64
        assert back.spent == 17
        assert back.stage_spent("tree") == 10

    def test_dict_is_json_safe_and_sorted(self):
        import json

        ledger = BudgetLedger()
        ledger.charge(2, "zeta")
        ledger.charge(1, "alpha")
        data = json.loads(json.dumps(ledger.to_dict()))
        assert list(data["stages"]) == ["alpha", "zeta"]
