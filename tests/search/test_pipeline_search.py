"""The search subsystem end to end: pipeline, campaigns, store, service.

Covers the determinism contract (bandit workers=1 vs workers=4
bit-identical for every registered domain), kill-and-resume with an
adaptive policy, campaign search-block normalization and run-ID
spelling-independence, and the report/store/service round trips.
"""

import json

import numpy as np
import pytest

from repro import XPlain, XPlainConfig
from repro.domains.registry import registry
from repro.exceptions import AnalyzerError
from repro.parallel._testing import band_problem
from repro.parallel.campaign import (
    CampaignSpec,
    deterministic_view,
    normalize_search_overrides,
    plan_campaign,
    run_campaign,
)
from repro.store import RunStore
from repro.store.ids import run_id_for
from repro.subspace import GeneratorConfig

TINY = {
    "explainer_samples": 15,
    "generalizer_samples": 0,
    "generator": {
        "max_subspaces": 1,
        "tree_extra_samples": 40,
        "significance_pairs": 12,
    },
}


def assert_reports_identical(first, second):
    """Every deterministic field of two XPlainReports matches exactly."""
    ga, gb = first.generator_report, second.generator_report
    assert ga.threshold == gb.threshold
    assert ga.analyzer_calls == gb.analyzer_calls
    assert len(ga.subspaces) == len(gb.subspaces)
    assert len(ga.rejected) == len(gb.rejected)
    for sa, sb in zip(ga.subspaces, gb.subspaces):
        assert np.array_equal(sa.region.box.lo_array, sb.region.box.lo_array)
        assert np.array_equal(sa.region.box.hi_array, sb.region.box.hi_array)
        assert [(h.coeffs, h.rhs) for h in sa.region.halfspaces] == [
            (h.coeffs, h.rhs) for h in sb.region.halfspaces
        ]
        assert sa.seed.validated_gap == sb.seed.validated_gap
        assert sa.significance.p_value == sb.significance.p_value
        assert np.array_equal(sa.samples.points, sb.samples.points)
        assert np.array_equal(sa.samples.gaps, sb.samples.gaps)
    assert first.worst_gap == second.worst_gap
    for ea, eb in zip(first.explained, second.explained):
        assert ea.heatmap.num_samples == eb.heatmap.num_samples
        assert set(ea.heatmap.scores) == set(eb.heatmap.scores)
        for key, score_a in ea.heatmap.scores.items():
            assert score_a.mean_score == eb.heatmap.scores[key].mean_score


def tiny_config(**overrides):
    defaults = dict(
        generator=GeneratorConfig(
            max_subspaces=1,
            tree_extra_samples=60,
            significance_pairs=12,
            seed=7,
        ),
        explainer_samples=15,
        generalizer_samples=0,
        blackbox_budget=120,
        unit_points=16,
        seed=7,
    )
    defaults.update(overrides)
    return XPlainConfig(**defaults)


class TestPipelineSearch:
    def test_report_carries_search_trace(self):
        report = XPlain(band_problem(), tiny_config(search="bandit")).run()
        trace = report.generator_report.search_trace
        assert trace is not None
        assert trace.policy == "bandit"
        assert trace.total_spent > 0
        assert report.generator_report.oracle_stats.oracle_calls == trace.total_spent

    def test_uniform_trace_tracks_without_limit(self):
        report = XPlain(band_problem(), tiny_config()).run()
        trace = report.generator_report.search_trace
        assert trace.policy == "uniform"
        assert trace.budget is None
        assert trace.total_spent > 0

    def test_bandit_respects_search_budget(self):
        report = XPlain(
            band_problem(), tiny_config(search="bandit", search_budget=150)
        ).run()
        trace = report.generator_report.search_trace
        assert trace.ledger.limit == 150
        assert trace.total_spent <= 150

    def test_first_region_marker_set_when_region_found(self):
        report = XPlain(band_problem(), tiny_config(search="bandit")).run()
        trace = report.generator_report.search_trace
        if report.num_subspaces:
            assert trace.evals_to_first_region is not None
            assert 0 < trace.evals_to_first_region <= trace.total_spent


class TestSearchDeterminism:
    """Bandit rounds shard like everything else: workers never matter."""

    @pytest.mark.parametrize("domain", [p.name for p in registry()])
    def test_bandit_workers_1_vs_4_bit_identical(self, domain):
        plugin = registry().get(domain)
        overrides = dict(plugin.config_defaults)
        overrides.update(search="bandit", search_budget=700, search_rounds=4)
        serial = XPlain(plugin.smoke_spec().build(), tiny_config(**overrides)).run()
        parallel = XPlain(
            plugin.smoke_spec().build(),
            tiny_config(executor="process", workers=4, **overrides),
        ).run()
        assert_reports_identical(serial, parallel)
        ta = serial.generator_report.search_trace
        tb = parallel.generator_report.search_trace
        assert ta.to_dict() == tb.to_dict()

    def test_same_seed_same_bandit_run(self):
        a = XPlain(band_problem(), tiny_config(search="bandit")).run()
        b = XPlain(band_problem(), tiny_config(search="bandit")).run()
        assert (
            a.generator_report.search_trace.to_dict()
            == b.generator_report.search_trace.to_dict()
        )


class TestCampaignSearchBlocks:
    def test_normalize_expands_block(self):
        flat = normalize_search_overrides(
            {"search": {"policy": "bandit", "budget": 512, "rounds": 6}}
        )
        assert flat == {
            "search": "bandit",
            "search_budget": 512,
            "search_rounds": 6,
        }

    def test_normalize_leaves_flat_spelling_alone(self):
        config = {"search": "bandit", "search_budget": 512}
        assert normalize_search_overrides(dict(config)) == config

    def test_normalize_rejects_unknown_keys(self):
        with pytest.raises(AnalyzerError, match="unknown search block"):
            normalize_search_overrides({"search": {"policies": "bandit"}})

    def test_normalize_rejects_conflicting_spellings(self):
        with pytest.raises(AnalyzerError, match="both a search block"):
            normalize_search_overrides({"search": {"budget": 1}, "search_budget": 2})

    def _spec(self, config):
        return CampaignSpec.from_dict(
            {
                "name": "s",
                "seed": 3,
                "defaults": dict(TINY),
                "jobs": [
                    {
                        "name": "band",
                        "problem": {
                            "factory": "repro.parallel._testing:band_problem",
                            "kwargs": {"dim": 2},
                        },
                        "config": config,
                    }
                ],
            }
        )

    def test_run_ids_are_spelling_independent(self):
        block = self._spec({"search": {"policy": "bandit", "budget": 512}})
        flat = self._spec({"search": "bandit", "search_budget": 512})
        block_ids = [run_id_for(p) for p in plan_campaign(block)]
        flat_ids = [run_id_for(p) for p in plan_campaign(flat)]
        assert block_ids == flat_ids

    def test_policies_get_distinct_run_ids(self):
        uniform = self._spec({"search": "uniform"})
        bandit = self._spec({"search": "bandit"})
        assert [run_id_for(p) for p in plan_campaign(uniform)] != [
            run_id_for(p) for p in plan_campaign(bandit)
        ]

    def test_defaults_and_job_blocks_merge(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "s",
                "seed": 3,
                "defaults": {"search": {"policy": "bandit"}},
                "jobs": [
                    {
                        "name": "band",
                        "problem": {
                            "factory": "repro.parallel._testing:band_problem",
                            "kwargs": {"dim": 2},
                        },
                        "config": {"search": {"budget": 256}},
                    }
                ],
            }
        )
        (payload,) = plan_campaign(spec)
        assert payload["config"]["search"] == "bandit"
        assert payload["config"]["search_budget"] == 256

    def test_campaign_report_carries_search_block(self):
        spec = self._spec({"search": "bandit", "search_budget": 400})
        report = run_campaign(spec, workers=1)
        (unit,) = report["problems"]
        assert unit["search"]["policy"] == "bandit"
        assert unit["search"]["budget"] == 400
        assert unit["search"]["oracle_calls"] > 0
        assert unit["search"]["trace"]["ledger"]["limit"] == 400


class TestSearchResume:
    @pytest.mark.parametrize("domain", [p.name for p in registry()])
    def test_bandit_campaign_kills_and_resumes(self, domain, tmp_path):
        """Adaptive runs resume bit-identically from the store too."""
        plugin = registry().get(domain)
        flag = tmp_path / "healed.flag"
        spec = CampaignSpec.from_dict(
            {
                "name": f"{domain}-search-resume",
                "seed": 11,
                "defaults": dict(
                    TINY,
                    blackbox_budget=120,
                    search="bandit",
                    search_budget=700,
                    search_rounds=4,
                ),
                "jobs": [
                    {
                        "name": f"{domain}-unit",
                        "problem": {
                            "domain": domain,
                            "kwargs": dict(plugin.smoke_kwargs),
                        },
                        "config": dict(plugin.config_defaults),
                    },
                    {
                        "name": "crashy",
                        "problem": {
                            "factory": "repro.parallel._testing:flaky_problem",
                            "kwargs": {"flag_path": str(flag)},
                        },
                    },
                ],
            }
        )
        store = RunStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="injected mid-campaign"):
            run_campaign(spec, workers=1, store=store)
        done = [r for r in store.list_runs() if r["status"] == "done"]
        assert len(done) == 1

        flag.touch()
        resumed = run_campaign(spec, workers=1, store=store)
        assert resumed["timing"]["resumed_runs"] == 1

        fresh = run_campaign(spec, workers=1, store=RunStore(tmp_path / "fresh-store"))
        assert json.dumps(
            deterministic_view(resumed), sort_keys=True
        ) == json.dumps(deterministic_view(fresh), sort_keys=True)
        # The search trace made the round trip through the store.
        unit = resumed["problems"][0]
        assert unit["search"]["policy"] == "bandit"
        assert unit["search"]["trace"] == fresh["problems"][0]["search"]["trace"]


class TestStoreAndServiceSearch:
    def _stored_campaign(self, tmp_path):
        spec = CampaignSpec.from_dict(
            {
                "name": "svc",
                "seed": 5,
                "defaults": dict(TINY, search="bandit", search_budget=400),
                "jobs": [
                    {
                        "name": "band",
                        "problem": {
                            "factory": "repro.parallel._testing:band_problem",
                            "kwargs": {"dim": 2},
                        },
                    }
                ],
            }
        )
        store = RunStore(tmp_path / "store")
        report = run_campaign(spec, workers=1, store=store)
        return store, report

    def test_run_search_trace_round_trip(self, tmp_path):
        from repro.search import SearchTrace

        store, report = self._stored_campaign(tmp_path)
        run_id = report["problems"][0]["run_id"]
        trace = store.run_search_trace(run_id)
        assert isinstance(trace, SearchTrace)
        assert trace.policy == "bandit"
        assert trace.to_dict() == report["problems"][0]["search"]["trace"]

    def test_run_search_trace_unknown_run(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(AnalyzerError, match="no completed run"):
            store.run_search_trace("run-missing")

    def test_service_serves_search_block(self, tmp_path):
        import urllib.request

        from repro.service import AnalysisService, make_server

        store, report = self._stored_campaign(tmp_path)
        run_id = report["problems"][0]["run_id"]
        service = AnalysisService(store)
        server = make_server(service, port=0)
        host, port = server.server_address[:2]
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/runs/{run_id}/search"
            ) as response:
                payload = json.load(response)
            assert payload["run_id"] == run_id
            assert payload["search"]["policy"] == "bandit"
            assert payload["search"]["trace"]["policy"] == "bandit"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://{host}:{port}/runs/run-nope/search")
            assert err.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
