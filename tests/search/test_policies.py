"""Search policies: uniform pass-through exactness, bandit, hybrid."""

import numpy as np
import pytest

from repro.exceptions import SearchError
from repro.parallel._testing import band_problem
from repro.search import (
    SEARCH_POLICIES,
    BanditPolicy,
    HybridPolicy,
    SearchTrace,
    UniformPolicy,
    make_policy,
)
from repro.subspace.region import Box
from repro.subspace.sampler import sample_in_box


def test_blackbox_stage_constant_matches_budget_module():
    """blackbox.py re-spells STAGE_ANALYZER (module-level import would
    be cyclic through repro.analyzer.__init__); a rename on either side
    must fail here, not silently split the per-stage ledger."""
    from repro.analyzer import blackbox
    from repro.search import budget

    assert blackbox.STAGE_ANALYZER == budget.STAGE_ANALYZER


class TestMakePolicy:
    @pytest.mark.parametrize("name", SEARCH_POLICIES)
    def test_known_policies(self, name):
        policy = make_policy(name, budget=128, rounds=4, seed=1)
        assert policy.name == name
        assert policy.trace.policy == name

    def test_unknown_policy(self):
        with pytest.raises(SearchError, match="unknown search policy"):
            make_policy("genetic", budget=128, rounds=4)

    def test_adaptive_flags(self):
        assert not make_policy("uniform", budget=1, rounds=1).adaptive
        assert make_policy("bandit", budget=1, rounds=1).adaptive
        assert make_policy("hybrid", budget=1, rounds=1).adaptive


class TestUniformPolicy:
    def test_sample_region_is_exactly_sample_in_box(self):
        """The uniform policy must not perturb the legacy random stream."""
        problem = band_problem(dim=2)
        box = Box.from_arrays(np.array([0.2, 0.2]), np.array([0.8, 0.8]))
        direct = sample_in_box(problem, box, 50, 0.5, np.random.default_rng(42))
        policy = UniformPolicy(seed=0)
        routed = policy.sample_region(
            problem, box, 50, 0.5, np.random.default_rng(42), stage="tree"
        )
        assert np.array_equal(direct.points, routed.points)
        assert np.array_equal(direct.gaps, routed.gaps)

    def test_ledger_tracks_but_never_clips(self):
        problem = band_problem(dim=2)
        box = problem.input_box
        policy = UniformPolicy(seed=0)
        rng = np.random.default_rng(0)
        for _ in range(3):
            samples = policy.sample_region(problem, box, 40, 0.5, rng, "tree")
            assert samples.size == 40  # no limit, ever
        assert policy.ledger.limit is None
        assert policy.ledger.spent == 120
        assert policy.ledger.stage_spent("tree") == 120

    def test_zero_count_charges_nothing(self):
        problem = band_problem(dim=2)
        policy = UniformPolicy()
        samples = policy.sample_region(
            problem, problem.input_box, 0, 0.5, np.random.default_rng(0), "tree"
        )
        assert samples.size == 0
        assert policy.ledger.spent == 0

    def test_seed_search_is_not_adaptive(self):
        policy = UniformPolicy()
        with pytest.raises(SearchError, match="no adaptive seed search"):
            policy.seed_search(band_problem(), 0.0, [], 100)


class TestBanditPolicy:
    def test_sample_region_charges_and_returns_samples(self):
        problem = band_problem(dim=2)
        policy = BanditPolicy(budget=500, rounds=4, seed=3)
        samples = policy.sample_region(
            problem, problem.input_box, 200, 0.5, np.random.default_rng(0), "tree"
        )
        assert 0 < samples.size <= 200
        assert policy.ledger.spent == samples.size
        assert policy.trace.rounds  # the engine logged its rounds

    def test_budget_exhaustion_returns_empty(self):
        problem = band_problem(dim=2)
        policy = BanditPolicy(budget=50, rounds=2, seed=3)
        policy.ledger.charge(50, "tree")  # spend everything
        samples = policy.sample_region(
            problem, problem.input_box, 100, 0.5, np.random.default_rng(0), "tree"
        )
        assert samples.size == 0

    def test_seed_search_finds_the_band(self):
        problem = band_problem(dim=2, lo=0.6, hi=0.9)
        policy = BanditPolicy(budget=600, rounds=8, seed=3)
        x, gap = policy.seed_search(problem, min_gap=0.0, excluded=[], budget=400)
        assert x is not None
        assert 0.6 <= x[0] <= 0.9
        assert gap >= 1.0
        assert policy.ledger.stage_spent("analyzer") > 0

    def test_seed_search_respects_exclusions(self):
        problem = band_problem(dim=2, lo=0.6, hi=0.9)
        band = Box.from_arrays(np.array([0.55, 0.0]), np.array([0.95, 1.0]))
        policy = BanditPolicy(budget=600, rounds=8, seed=3)
        x, gap = policy.seed_search(problem, min_gap=0.0, excluded=[band], budget=400)
        assert x is None or not band.contains(x)

    def test_calls_get_fresh_derived_streams(self):
        problem = band_problem(dim=2)
        policy = BanditPolicy(budget=10_000, rounds=4, seed=3)
        first = policy.sample_region(
            problem, problem.input_box, 100, 0.5, np.random.default_rng(0), "tree"
        )
        second = policy.sample_region(
            problem, problem.input_box, 100, 0.5, np.random.default_rng(0), "tree"
        )
        assert not np.array_equal(first.points, second.points)


class TestHybridPolicy:
    def test_mixes_coverage_and_refinement(self):
        problem = band_problem(dim=2)
        policy = HybridPolicy(budget=1000, rounds=4, seed=3)
        samples = policy.sample_region(
            problem, problem.input_box, 200, 0.5, np.random.default_rng(0), "tree"
        )
        assert 100 <= samples.size <= 200
        assert policy.ledger.spent == samples.size

    def test_seed_search_returns_best_of_both(self):
        problem = band_problem(dim=2, lo=0.6, hi=0.9)
        policy = HybridPolicy(budget=800, rounds=8, seed=3)
        x, gap = policy.seed_search(problem, min_gap=0.0, excluded=[], budget=400)
        assert x is not None
        assert gap >= 1.0


class TestTraceRoundTrip:
    def test_bandit_trace_round_trips(self):
        problem = band_problem(dim=2)
        policy = BanditPolicy(budget=400, rounds=6, seed=3)
        policy.sample_region(
            problem, problem.input_box, 300, 0.5, np.random.default_rng(0), "tree"
        )
        policy.trace.note_region_found()
        data = policy.trace.to_dict()
        back = SearchTrace.from_dict(data)
        assert back.to_dict() == data
        assert back.evals_to_first_region == policy.ledger.spent
        assert back.ledger.spent == policy.ledger.spent

    def test_note_region_found_first_call_wins(self):
        trace = SearchTrace(policy="uniform")
        trace.ledger.charge(10, "tree")
        trace.note_region_found()
        trace.ledger.charge(10, "tree")
        trace.note_region_found()
        assert trace.evals_to_first_region == 10
