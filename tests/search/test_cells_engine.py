"""Cell tree and bandit engine: splits, pruning, budgets, determinism."""

import numpy as np
import pytest

from repro.parallel._testing import band_problem
from repro.search import AdaptiveSearchEngine, BudgetLedger, Cell, SearchTrace
from repro.search.cells import covered_by_any
from repro.subspace.region import Box


def make_cell(box=None, seed=3, index=0):
    return Cell(
        cell_id="0",
        index=index,
        box=box or Box.from_arrays(np.zeros(2), np.ones(2)),
        depth=0,
        seed=seed,
    )


class TestCell:
    def test_fresh_cell_is_empty(self):
        cell = make_cell()
        assert cell.evals == 0
        assert cell.mean_gap == 0.0
        assert cell.max_gap == 0.0

    def test_absorb_updates_stats(self):
        cell = make_cell()
        cell.absorb(np.array([[0.1, 0.2], [0.8, 0.9]]), np.array([1.0, 3.0]))
        assert cell.evals == 2
        assert cell.mean_gap == 2.0
        assert cell.max_gap == 3.0

    def test_draw_is_deterministic_per_cell(self):
        a = make_cell(seed=9).draw(5)
        b = make_cell(seed=9).draw(5)
        assert np.array_equal(a, b)
        c = make_cell(seed=10).draw(5)
        assert not np.array_equal(a, c)

    def test_split_midpoint_fallback_without_samples(self):
        box = Box.from_arrays(np.array([0.0, 0.0]), np.array([4.0, 1.0]))
        cell = make_cell(box=box)
        dim, threshold = cell.split_plan()
        assert dim == 0  # widest side
        assert threshold == pytest.approx(2.0)

    def test_split_uses_cart_cut_when_signal_exists(self):
        # Gap depends only on x0 > 0.5: the CART root split must cut x0
        # near 0.5, not the midpoint of the widest (x1) side.
        box = Box.from_arrays(np.array([0.0, 0.0]), np.array([1.0, 5.0]))
        cell = make_cell(box=box)
        rng = np.random.default_rng(0)
        points = np.column_stack([rng.uniform(0, 1, 200), rng.uniform(0, 5, 200)])
        cell.absorb(points, (points[:, 0] > 0.5).astype(float))
        dim, threshold = cell.split_plan()
        assert dim == 0
        assert 0.3 < threshold < 0.7

    def test_split_children_partition_samples(self):
        cell = make_cell()
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(40, 2))
        cell.absorb(points, points[:, 0])
        left, right = cell.split(next_index=1)
        assert cell.status == "split"
        assert left.evals + right.evals == 40
        assert left.box.hi[0] == right.box.lo[0] or left.box.hi[1] == right.box.lo[1]
        # Every inherited sample lies in its child's box.
        assert left.box.contains_many(left.points).all()
        assert right.box.contains_many(right.points).all()

    def test_covered_by_any(self):
        small = Box.from_arrays(np.array([0.2, 0.2]), np.array([0.4, 0.4]))
        big = Box.from_arrays(np.zeros(2), np.ones(2))
        assert covered_by_any(small, [big])
        assert not covered_by_any(big, [small])
        assert not covered_by_any(big, [])


def run_engine(budget=400, rounds=20, seed=11, trace=None, **kw):
    problem = band_problem(dim=2, lo=0.6, hi=0.9)
    ledger = BudgetLedger(limit=budget)
    engine = AdaptiveSearchEngine(
        problem,
        problem.input_box,
        threshold=0.5,
        ledger=ledger,
        budget=budget,
        rounds=rounds,
        seed=seed,
        trace=trace,
        **kw,
    )
    return engine.run(), ledger


class TestEngine:
    def test_finds_the_band(self):
        result, _ = run_engine()
        assert result.best_x is not None
        assert 0.6 <= result.best_x[0] <= 0.9
        assert result.best_gap >= 1.0

    def test_respects_budget_exactly(self):
        result, ledger = run_engine(budget=200)
        assert result.spent <= 200
        assert ledger.spent == result.spent
        assert result.samples.size == result.spent

    def test_deterministic_per_seed(self):
        a, _ = run_engine(seed=5)
        b, _ = run_engine(seed=5)
        assert np.array_equal(a.samples.points, b.samples.points)
        assert np.array_equal(a.samples.gaps, b.samples.gaps)
        assert np.array_equal(a.best_x, b.best_x)
        c, _ = run_engine(seed=6)
        assert not np.array_equal(a.samples.points, c.samples.points)

    def test_prunes_hopeless_volume(self):
        trace = SearchTrace(policy="bandit", budget=600)
        run_engine(budget=600, rounds=30, trace=trace)
        assert trace.pruned_volume > 0
        assert len(trace.rounds) > 1
        assert trace.best_gap >= 1.0

    def test_exclusions_are_respected(self):
        # Exclude the whole band: no admissible point may come from it.
        band = Box.from_arrays(np.array([0.6, 0.0]), np.array([0.9, 1.0]))
        result, _ = run_engine(excluded=[band])
        assert result.samples.size > 0
        assert not band.contains_many(result.samples.points).any()

    def test_mostly_excluded_domain_keeps_hunting(self):
        # 99% of the box is excluded but the root cell is not *fully*
        # covered: rounds whose proposals all land in the exclusion must
        # be retried with fresh draws, not treated as exhaustion.
        problem = band_problem(dim=2, lo=0.992, hi=1.0)
        most = Box.from_arrays(np.zeros(2), np.array([0.99, 1.0]))
        ledger = BudgetLedger(limit=2000)
        engine = AdaptiveSearchEngine(
            problem,
            problem.input_box,
            threshold=0.5,
            ledger=ledger,
            budget=2000,
            rounds=100,
            seed=2,
            excluded=[most],
        )
        result = engine.run()
        assert result.best_x is not None
        assert result.best_x[0] > 0.99
        assert result.best_gap >= 1.0

    def test_fully_excluded_domain_returns_nothing(self):
        everything = Box.from_arrays(np.zeros(2), np.ones(2))
        result, ledger = run_engine(excluded=[everything])
        assert result.best_x is None
        assert result.samples.size == 0
        assert ledger.spent == 0

    def test_target_hits_counts_cumulatively(self):
        # The band covers 30% of the box: 40 hits need > one round but
        # must be reached well before a 400-point budget is gone.
        result, _ = run_engine(target_gap=1.0, target_hits=40)
        assert result.evals_to_target is not None
        assert 40 <= result.evals_to_target < 400
        # Early stop: the engine quits once the target is reached.
        assert result.spent < 400

    def test_shared_ledger_clips_across_engines(self):
        problem = band_problem(dim=2)
        ledger = BudgetLedger(limit=100)
        for _ in range(3):
            engine = AdaptiveSearchEngine(
                problem,
                problem.input_box,
                threshold=0.5,
                ledger=ledger,
                budget=80,
                rounds=4,
                seed=1,
            )
            engine.run()
        assert ledger.spent <= 100
