"""Tests for the campaign runner: spec parsing, reports, determinism."""

import json
import sys

import pytest

from repro.exceptions import AnalyzerError
from repro.parallel.campaign import (
    CampaignSpec,
    deterministic_view,
    load_campaign_spec,
    run_campaign,
)

SPEC_DATA = {
    "name": "test-campaign",
    "seed": 11,
    "defaults": {
        "explainer_samples": 15,
        "generalizer_samples": 0,
        "generator": {
            "max_subspaces": 1,
            "tree_extra_samples": 40,
            "significance_pairs": 12,
        },
    },
    "jobs": [
        {
            "name": "band",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 2},
            },
        },
        {
            "name": "vbp-3x3",
            "problem": {
                "factory": "repro.domains.binpack:first_fit_problem",
                "kwargs": {"num_balls": 3, "num_bins": 3},
            },
            "config": {"generator": {"tree_extra_samples": 30}},
        },
    ],
}


class TestSpecParsing:
    def test_from_dict(self):
        spec = CampaignSpec.from_dict(SPEC_DATA)
        assert spec.name == "test-campaign"
        assert len(spec.jobs) == 2
        assert spec.jobs[1].config["generator"]["tree_extra_samples"] == 30

    def test_json_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(SPEC_DATA))
        spec = load_campaign_spec(path)
        assert [job.name for job in spec.jobs] == ["band", "vbp-3x3"]

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib is stdlib from 3.11"
    )
    def test_toml_file(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            "name = 'toml-campaign'\n"
            "seed = 3\n"
            "[[jobs]]\n"
            "name = 'band'\n"
            "[jobs.problem]\n"
            "factory = 'repro.parallel._testing:band_problem'\n"
        )
        spec = load_campaign_spec(path)
        assert spec.name == "toml-campaign"
        assert spec.jobs[0].problem.factory.endswith("band_problem")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(AnalyzerError, match="not valid JSON"):
            load_campaign_spec(path)

    def test_no_jobs(self):
        with pytest.raises(AnalyzerError, match="no 'jobs'"):
            CampaignSpec.from_dict({"name": "empty"})

    def test_missing_problem(self):
        with pytest.raises(AnalyzerError, match="no 'problem'"):
            CampaignSpec.from_dict({"jobs": [{"name": "x"}]})

    def test_duplicate_names(self):
        job = SPEC_DATA["jobs"][0]
        with pytest.raises(AnalyzerError, match="unique"):
            CampaignSpec.from_dict({"jobs": [job, job]})

    @pytest.mark.parametrize(
        "name", ["te/fig1a", "../escape", ".hidden", "campaign", ""]
    )
    def test_unsafe_job_names_rejected(self, name):
        # Names become report file paths under --out-dir.
        job = dict(SPEC_DATA["jobs"][0], name=name)
        with pytest.raises(AnalyzerError, match="file name"):
            CampaignSpec.from_dict({"jobs": [job]})

    def test_invalid_worker_count_rejected(self):
        spec = CampaignSpec.from_dict(SPEC_DATA)
        with pytest.raises(AnalyzerError, match="workers"):
            run_campaign(spec, workers=0)

    def test_unknown_config_key_fails_at_run(self):
        spec = CampaignSpec.from_dict(
            {
                "jobs": [
                    {
                        "name": "bad",
                        "problem": {
                            "factory": "repro.parallel._testing:band_problem"
                        },
                        "config": {"explodiness": 9},
                    }
                ]
            }
        )
        with pytest.raises(AnalyzerError, match="explodiness"):
            run_campaign(spec, workers=1)


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def serial_report(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("campaign-serial")
        spec = CampaignSpec.from_dict(SPEC_DATA)
        return run_campaign(spec, workers=1, out_dir=out_dir), out_dir

    def test_report_shape(self, serial_report):
        report, _ = serial_report
        assert report["campaign"] == "test-campaign"
        assert [r["name"] for r in report["problems"]] == ["band", "vbp-3x3"]
        assert report["num_subspaces_total"] >= 1
        assert report["worst_gap"] > 0

    def test_files_written(self, serial_report):
        report, out_dir = serial_report
        for name in ("band", "vbp-3x3", "campaign"):
            path = out_dir / f"{name}.json"
            assert path.exists()
            json.loads(path.read_text())  # valid JSON

    def test_merged_stats_are_sums(self, serial_report):
        report, _ = serial_report
        total = sum(r["oracle"]["points"] for r in report["problems"])
        assert report["oracle_totals"]["points"] == total
        assert report["oracle_totals"]["points"] > 0

    def test_derived_seeds_are_deterministic(self, serial_report):
        report, _ = serial_report
        seeds = [r["seed"] for r in report["problems"]]
        again = run_campaign(CampaignSpec.from_dict(SPEC_DATA), workers=1)
        assert [r["seed"] for r in again["problems"]] == seeds

    def test_workers_4_bit_identical(self, serial_report):
        """The acceptance criterion: identical campaign report JSON
        across workers=1 and workers=4 (timing stripped)."""
        report, _ = serial_report
        parallel = run_campaign(CampaignSpec.from_dict(SPEC_DATA), workers=4)
        assert deterministic_view(parallel) == deterministic_view(report)

    def test_deterministic_view_strips_timing(self, serial_report):
        report, _ = serial_report
        view = deterministic_view(report)
        assert "timing" not in view
        assert all("timing" not in p for p in view["problems"])

    def test_explicit_job_seed_wins(self):
        data = json.loads(json.dumps(SPEC_DATA))
        data["jobs"] = [dict(data["jobs"][0], seed=99)]
        report = run_campaign(CampaignSpec.from_dict(data), workers=1)
        assert report["problems"][0]["seed"] == 99
