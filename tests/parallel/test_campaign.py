"""Tests for the campaign runner: spec parsing, reports, determinism."""

import json

import pytest

from repro.exceptions import AnalyzerError
from repro.parallel.campaign import (
    CampaignSpec,
    deterministic_view,
    load_campaign_spec,
    run_campaign,
)

try:  # stdlib on 3.11+, tomli backport on 3.10 (requirements-dev.txt)
    import tomllib  # noqa: F401

    _HAS_TOML = True
except ImportError:
    try:
        import tomli  # noqa: F401

        _HAS_TOML = True
    except ImportError:
        _HAS_TOML = False

SPEC_DATA = {
    "name": "test-campaign",
    "seed": 11,
    "defaults": {
        "explainer_samples": 15,
        "generalizer_samples": 0,
        "generator": {
            "max_subspaces": 1,
            "tree_extra_samples": 40,
            "significance_pairs": 12,
        },
    },
    "jobs": [
        {
            "name": "band",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 2},
            },
        },
        {
            "name": "vbp-3x3",
            "problem": {
                "factory": "repro.domains.binpack:first_fit_problem",
                "kwargs": {"num_balls": 3, "num_bins": 3},
            },
            "config": {"generator": {"tree_extra_samples": 30}},
        },
    ],
}


class TestSpecParsing:
    def test_from_dict(self):
        spec = CampaignSpec.from_dict(SPEC_DATA)
        assert spec.name == "test-campaign"
        assert len(spec.jobs) == 2
        assert spec.jobs[1].config["generator"]["tree_extra_samples"] == 30

    def test_json_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(SPEC_DATA))
        spec = load_campaign_spec(path)
        assert [job.name for job in spec.jobs] == ["band", "vbp-3x3"]

    @pytest.mark.skipif(not _HAS_TOML, reason="needs tomllib or tomli")
    def test_toml_file(self, tmp_path):
        # On 3.10 this leg runs through the tomli fallback (CI installs
        # it via requirements-dev.txt), keeping TOML at feature parity.
        path = tmp_path / "campaign.toml"
        path.write_text(
            "name = 'toml-campaign'\n"
            "seed = 3\n"
            "[[jobs]]\n"
            "name = 'band'\n"
            "[jobs.problem]\n"
            "factory = 'repro.parallel._testing:band_problem'\n"
        )
        spec = load_campaign_spec(path)
        assert spec.name == "toml-campaign"
        assert spec.jobs[0].problem.factory.endswith("band_problem")

    def test_toml_fallback_prefers_backport_on_310(self, monkeypatch):
        """Without stdlib tomllib, _toml_module must return tomli."""
        import builtins

        from repro.parallel.campaign import _toml_module

        real_import = builtins.__import__
        sentinel = object()

        def fake_import(name, *args, **kwargs):
            if name == "tomllib":
                raise ImportError("no stdlib tomllib (simulated 3.10)")
            if name == "tomli":
                return sentinel
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", fake_import)
        assert _toml_module() is sentinel

    def test_toml_missing_everywhere_has_clear_error(self, monkeypatch):
        import builtins

        from repro.parallel.campaign import _toml_module

        real_import = builtins.__import__

        def fake_import(name, *args, **kwargs):
            if name in ("tomllib", "tomli"):
                raise ImportError(f"no {name} (simulated)")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", fake_import)
        with pytest.raises(AnalyzerError, match="tomli"):
            _toml_module()

    @pytest.mark.skipif(not _HAS_TOML, reason="needs tomllib or tomli")
    def test_bad_toml(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed\n")
        with pytest.raises(AnalyzerError, match="not valid TOML"):
            load_campaign_spec(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(AnalyzerError, match="not valid JSON"):
            load_campaign_spec(path)

    def test_unknown_problem_key(self):
        job = {
            "name": "x",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwrgs": {"dim": 2},  # typo must not be dropped silently
            },
        }
        with pytest.raises(AnalyzerError, match="unknown problem spec keys"):
            CampaignSpec.from_dict({"jobs": [job]})

    @pytest.mark.parametrize(
        "config, match",
        [
            ({"executor": "threads"}, "unknown executor"),
            ({"workers": 0}, "workers"),
            ({"workers": "many"}, "workers"),
            ({"generator": {"max_subspace": 1}}, "max_subspace"),
        ],
    )
    def test_bad_config_values_fail_at_run(self, config, match):
        spec = CampaignSpec.from_dict(
            {
                "jobs": [
                    {
                        "name": "bad",
                        "problem": {
                            "factory": "repro.parallel._testing:band_problem"
                        },
                        "config": config,
                    }
                ]
            }
        )
        with pytest.raises(AnalyzerError, match=match):
            run_campaign(spec, workers=1)

    def test_spec_round_trips_through_to_dict(self):
        spec = CampaignSpec.from_dict(SPEC_DATA)
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_no_jobs(self):
        with pytest.raises(AnalyzerError, match="no 'jobs'"):
            CampaignSpec.from_dict({"name": "empty"})

    def test_missing_problem(self):
        with pytest.raises(AnalyzerError, match="no 'problem'"):
            CampaignSpec.from_dict({"jobs": [{"name": "x"}]})

    def test_duplicate_names(self):
        job = SPEC_DATA["jobs"][0]
        with pytest.raises(AnalyzerError, match="unique"):
            CampaignSpec.from_dict({"jobs": [job, job]})

    @pytest.mark.parametrize(
        "name", ["te/fig1a", "../escape", ".hidden", "campaign", ""]
    )
    def test_unsafe_job_names_rejected(self, name):
        # Names become report file paths under --out-dir.
        job = dict(SPEC_DATA["jobs"][0], name=name)
        with pytest.raises(AnalyzerError, match="file name"):
            CampaignSpec.from_dict({"jobs": [job]})

    def test_invalid_worker_count_rejected(self):
        spec = CampaignSpec.from_dict(SPEC_DATA)
        with pytest.raises(AnalyzerError, match="workers"):
            run_campaign(spec, workers=0)

    def test_unknown_config_key_fails_at_run(self):
        spec = CampaignSpec.from_dict(
            {
                "jobs": [
                    {
                        "name": "bad",
                        "problem": {
                            "factory": "repro.parallel._testing:band_problem"
                        },
                        "config": {"explodiness": 9},
                    }
                ]
            }
        )
        with pytest.raises(AnalyzerError, match="explodiness"):
            run_campaign(spec, workers=1)


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def serial_report(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("campaign-serial")
        spec = CampaignSpec.from_dict(SPEC_DATA)
        return run_campaign(spec, workers=1, out_dir=out_dir), out_dir

    def test_report_shape(self, serial_report):
        report, _ = serial_report
        assert report["campaign"] == "test-campaign"
        assert [r["name"] for r in report["problems"]] == ["band", "vbp-3x3"]
        assert report["num_subspaces_total"] >= 1
        assert report["worst_gap"] > 0

    def test_files_written(self, serial_report):
        report, out_dir = serial_report
        for name in ("band", "vbp-3x3", "campaign"):
            path = out_dir / f"{name}.json"
            assert path.exists()
            json.loads(path.read_text())  # valid JSON

    def test_merged_stats_are_sums(self, serial_report):
        report, _ = serial_report
        total = sum(r["oracle"]["points"] for r in report["problems"])
        assert report["oracle_totals"]["points"] == total
        assert report["oracle_totals"]["points"] > 0

    def test_derived_seeds_are_deterministic(self, serial_report):
        report, _ = serial_report
        seeds = [r["seed"] for r in report["problems"]]
        again = run_campaign(CampaignSpec.from_dict(SPEC_DATA), workers=1)
        assert [r["seed"] for r in again["problems"]] == seeds

    def test_workers_4_bit_identical(self, serial_report):
        """The acceptance criterion: identical campaign report JSON
        across workers=1 and workers=4 (timing stripped)."""
        report, _ = serial_report
        parallel = run_campaign(CampaignSpec.from_dict(SPEC_DATA), workers=4)
        assert deterministic_view(parallel) == deterministic_view(report)

    def test_deterministic_view_strips_timing(self, serial_report):
        report, _ = serial_report
        view = deterministic_view(report)
        assert "timing" not in view
        assert all("timing" not in p for p in view["problems"])

    def test_explicit_job_seed_wins(self):
        data = json.loads(json.dumps(SPEC_DATA))
        data["jobs"] = [dict(data["jobs"][0], seed=99)]
        report = run_campaign(CampaignSpec.from_dict(data), workers=1)
        assert report["problems"][0]["seed"] == 99
