"""Serial vs parallel must be bit-identical for a fixed seed (DESIGN.md §9)."""

import numpy as np
import pytest

from repro import XPlain, XPlainConfig
from repro.domains.binpack import first_fit_problem
from repro.domains.registry import registry
from repro.exceptions import AnalyzerError
from repro.parallel._testing import band_problem, crashing_problem
from repro.subspace import GeneratorConfig


def make_config(**overrides):
    defaults = dict(
        generator=GeneratorConfig(
            max_subspaces=2,
            tree_extra_samples=80,
            significance_pairs=16,
            seed=5,
        ),
        explainer_samples=30,
        generalizer_samples=40,
        unit_points=16,
        seed=5,
    )
    defaults.update(overrides)
    return XPlainConfig(**defaults)


def assert_reports_identical(first, second):
    """Every deterministic field of two XPlainReports matches exactly."""
    ga, gb = first.generator_report, second.generator_report
    assert ga.threshold == gb.threshold
    assert ga.analyzer_calls == gb.analyzer_calls
    assert len(ga.subspaces) == len(gb.subspaces)
    assert len(ga.rejected) == len(gb.rejected)
    for sa, sb in zip(ga.subspaces, gb.subspaces):
        assert np.array_equal(sa.region.box.lo_array, sb.region.box.lo_array)
        assert np.array_equal(sa.region.box.hi_array, sb.region.box.hi_array)
        assert [(h.coeffs, h.rhs) for h in sa.region.halfspaces] == [
            (h.coeffs, h.rhs) for h in sb.region.halfspaces
        ]
        assert sa.seed.validated_gap == sb.seed.validated_gap
        assert sa.significance.p_value == sb.significance.p_value
        assert sa.mean_gap_inside == sb.mean_gap_inside
        assert np.array_equal(sa.samples.points, sb.samples.points)
        assert np.array_equal(sa.samples.gaps, sb.samples.gaps)
    assert first.worst_gap == second.worst_gap
    for ea, eb in zip(first.explained, second.explained):
        assert ea.heatmap.num_samples == eb.heatmap.num_samples
        assert set(ea.heatmap.scores) == set(eb.heatmap.scores)
        for key, score_a in ea.heatmap.scores.items():
            assert score_a.mean_score == eb.heatmap.scores[key].mean_score


class TestGeneratorDeterminism:
    """Same seed ⇒ identical GeneratorReport regions at any worker count."""

    @pytest.fixture(scope="class")
    def reports(self):
        serial = XPlain(band_problem(), make_config()).run()
        parallel = XPlain(
            band_problem(), make_config(executor="process", workers=4)
        ).run()
        return serial, parallel

    def test_regions_bit_identical(self, reports):
        serial, parallel = reports
        assert serial.num_subspaces >= 1
        assert_reports_identical(serial, parallel)

    def test_oracle_counters_match(self, reports):
        serial, parallel = reports
        sa = serial.generator_report.oracle_stats
        sb = parallel.generator_report.oracle_stats
        assert sa.points == sb.points
        assert sa.cache_hits == sb.cache_hits
        assert sa.native_batched == sb.native_batched
        assert sa.warm_solves == sb.warm_solves
        assert sa.cold_solves == sb.cold_solves


class TestLpBackedDeterminism:
    """First Fit runs the MetaOpt analyzer + native batched oracle."""

    def test_workers_1_vs_4_bit_identical(self):
        config = dict(
            generator=GeneratorConfig(
                max_subspaces=1,
                tree_extra_samples=60,
                significance_pairs=12,
                seed=3,
            ),
            explainer_samples=20,
            generalizer_samples=30,
            unit_points=16,
            seed=3,
        )
        serial = XPlain(
            first_fit_problem(num_balls=4, num_bins=3),
            XPlainConfig(**config),
        ).run()
        parallel = XPlain(
            first_fit_problem(num_balls=4, num_bins=3),
            XPlainConfig(executor="process", workers=4, **config),
        ).run()
        assert_reports_identical(serial, parallel)


class TestRegistryDomainsDeterminism:
    """workers=1 vs workers=4 bit-identity for every registered domain.

    The registry round-trip acceptance test: each domain's smoke problem
    runs the full pipeline serially and across a 4-process pool, and the
    deterministic report fields must match exactly.
    """

    @pytest.mark.parametrize("domain", [p.name for p in registry()])
    def test_workers_1_vs_4_bit_identical(self, domain):
        plugin = registry().get(domain)
        config = dict(
            generator=GeneratorConfig(
                max_subspaces=1,
                tree_extra_samples=60,
                significance_pairs=12,
                seed=7,
            ),
            explainer_samples=15,
            generalizer_samples=0,
            blackbox_budget=120,
            unit_points=16,
            seed=7,
        )
        config.update(plugin.config_defaults)
        serial = XPlain(plugin.smoke_spec().build(), XPlainConfig(**config)).run()
        parallel = XPlain(
            plugin.smoke_spec().build(),
            XPlainConfig(executor="process", workers=4, **config),
        ).run()
        assert_reports_identical(serial, parallel)


class TestWorkerCrash:
    def test_pipeline_raises_clean_analyzer_error(self):
        """A crashing oracle must fail the run, not hang the pool."""
        problem = crashing_problem()
        config = make_config(executor="process", workers=2)
        with pytest.raises(AnalyzerError):
            XPlain(problem, config).run()

    def test_pipeline_serial_propagates_original_error(self):
        # In-process execution keeps the original exception (and its
        # traceback); only cross-process failures are wrapped.
        problem = crashing_problem()
        with pytest.raises(RuntimeError, match="synthetic oracle crash"):
            XPlain(problem, make_config()).run()


class TestExecutorUninstalledAfterRun:
    def test_engine_restored(self):
        problem = band_problem()
        XPlain(problem, make_config(generalizer_samples=0)).run()
        assert problem.oracle._executor is None
