"""The resume acceptance test: kill a campaign mid-run, resume, compare.

A store-backed campaign interrupted partway must (a) resume to a report
byte-identical to an uninterrupted run (timing excluded) and (b) load
its completed units from the store instead of re-solving them.
"""

import json

import pytest

from repro.domains.registry import registry
from repro.parallel.campaign import (
    CampaignSpec,
    deterministic_view,
    run_campaign,
)
from repro.store import RunStore

_COUNTED_FACTORY = "repro.parallel._testing:counted_band_problem"

TINY = {
    "explainer_samples": 15,
    "generalizer_samples": 0,
    "generator": {
        "max_subspaces": 1,
        "tree_extra_samples": 40,
        "significance_pairs": 12,
    },
}


def _spec(counter_path, flag_path):
    return CampaignSpec.from_dict(
        {
            "name": "resumable",
            "seed": 13,
            "defaults": dict(TINY),
            "jobs": [
                {
                    "name": "first",
                    "problem": {
                        "factory": _COUNTED_FACTORY,
                        "kwargs": {"counter_path": str(counter_path)},
                    },
                },
                {
                    "name": "crashy",
                    "problem": {
                        "factory": "repro.parallel._testing:flaky_problem",
                        "kwargs": {"flag_path": str(flag_path)},
                    },
                },
                {
                    "name": "last",
                    "problem": {
                        "factory": "repro.parallel._testing:band_problem",
                        "kwargs": {"dim": 2, "lo": 0.3, "hi": 0.5},
                    },
                },
            ],
        }
    )


def _builds(counter_path) -> int:
    if not counter_path.exists():
        return 0
    return len(counter_path.read_text().splitlines())


class TestResume:
    @pytest.fixture()
    def paths(self, tmp_path):
        return {
            "counter": tmp_path / "builds.log",
            "flag": tmp_path / "healed.flag",
            "store": tmp_path / "store",
            "fresh_store": tmp_path / "fresh-store",
        }

    def test_interrupt_resume_bit_identical(self, paths):
        spec = _spec(paths["counter"], paths["flag"])
        store = RunStore(paths["store"])

        # Kill mid-run: the second job's factory raises, so the campaign
        # dies after exactly one completed (and persisted) unit.
        with pytest.raises(RuntimeError, match="injected mid-campaign"):
            run_campaign(spec, workers=1, store=store)
        assert _builds(paths["counter"]) == 1
        campaigns = store.list_campaigns()
        assert len(campaigns) == 1
        assert campaigns[0]["status"] == "failed"
        done = [r for r in store.list_runs() if r["status"] == "done"]
        assert len(done) == 1

        # Heal and resume from the same store.
        paths["flag"].touch()
        resumed = run_campaign(spec, workers=1, store=store)
        assert store.campaign(resumed["campaign_id"])["status"] == "done"

        # (b) The completed unit was loaded, not re-solved: its factory
        # never ran again, and the report says so.
        assert _builds(paths["counter"]) == 1
        assert resumed["timing"]["resumed_runs"] == 1
        assert resumed["problems"][0]["timing"]["resumed"] is True
        assert "resumed" not in resumed["problems"][1]["timing"]

        # (a) Byte-identical to an uninterrupted run, timing excluded —
        # per-problem and for the whole campaign report.
        fresh_store = RunStore(paths["fresh_store"])
        fresh = run_campaign(spec, workers=1, store=fresh_store)
        assert _builds(paths["counter"]) == 2  # the fresh run rebuilt it
        for resumed_problem, fresh_problem in zip(
            resumed["problems"], fresh["problems"]
        ):
            assert json.dumps(
                deterministic_view(resumed_problem), sort_keys=True
            ) == json.dumps(deterministic_view(fresh_problem), sort_keys=True)
        assert json.dumps(
            deterministic_view(resumed), sort_keys=True
        ) == json.dumps(deterministic_view(fresh), sort_keys=True)

        # Oracle counters merged into the campaign totals come from the
        # stored unit, so totals match the uninterrupted run exactly.
        assert resumed["oracle_totals"] == fresh["oracle_totals"]

    def test_rerunning_done_campaign_resumes_everything(self, paths):
        spec = _spec(paths["counter"], paths["flag"])
        paths["flag"].touch()
        store = RunStore(paths["store"])
        first = run_campaign(spec, workers=1, store=store)
        builds = _builds(paths["counter"])
        again = run_campaign(spec, workers=1, store=store)
        assert again["timing"]["resumed_runs"] == len(spec.jobs)
        assert _builds(paths["counter"]) == builds
        assert deterministic_view(again) == deterministic_view(first)

    def test_campaign_units_ignore_store_path(self, paths, tmp_path):
        """store_path in a job config must not leak into unit reports.

        A spilled gap cache would make the report's hit/miss counters
        depend on what the store already holds, breaking the pure
        payload -> report function that run IDs content-address.
        """
        from repro.parallel.campaign import execute_job

        payload = {
            "name": "band",
            "problem": {
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 2},
            },
            "config": dict(TINY, store_path=str(tmp_path / "unit-store")),
            "seed": 13,
        }
        first = execute_job(dict(payload))
        second = execute_job(dict(payload))
        assert first["oracle"] == second["oracle"]
        assert first["oracle"]["cache_misses"] > 0  # nothing spilled over
        assert not (tmp_path / "unit-store").exists()

    @pytest.mark.parametrize("domain", [p.name for p in registry()])
    def test_every_registered_domain_kills_and_resumes(self, domain, tmp_path):
        """Registry round trip: each domain's smoke unit survives a
        mid-campaign crash and resumes bit-identically.

        The spec puts the real domain unit first and a crashing job
        second, so the first run persists the domain unit then dies; the
        resumed run must load it from the store and match a fresh
        uninterrupted campaign outside the timing blocks.
        """
        plugin = registry().get(domain)
        flag = tmp_path / "healed.flag"
        spec = CampaignSpec.from_dict(
            {
                "name": f"{domain}-resume",
                "seed": 11,
                "defaults": dict(TINY, blackbox_budget=120),
                "jobs": [
                    {
                        "name": f"{domain}-unit",
                        "problem": {
                            "domain": domain,
                            "kwargs": dict(plugin.smoke_kwargs),
                        },
                        "config": dict(plugin.config_defaults),
                    },
                    {
                        "name": "crashy",
                        "problem": {
                            "factory": "repro.parallel._testing:flaky_problem",
                            "kwargs": {"flag_path": str(flag)},
                        },
                    },
                ],
            }
        )
        store = RunStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="injected mid-campaign"):
            run_campaign(spec, workers=1, store=store)
        done = [r for r in store.list_runs() if r["status"] == "done"]
        assert len(done) == 1

        flag.touch()
        resumed = run_campaign(spec, workers=1, store=store)
        assert resumed["timing"]["resumed_runs"] == 1
        assert resumed["problems"][0]["timing"]["resumed"] is True

        fresh_store = RunStore(tmp_path / "fresh-store")
        fresh = run_campaign(spec, workers=1, store=fresh_store)
        assert json.dumps(
            deterministic_view(resumed), sort_keys=True
        ) == json.dumps(deterministic_view(fresh), sort_keys=True)

    def test_shared_units_dedupe_across_campaigns(self, paths):
        """A unit reused by a second campaign resolves from the store."""
        store = RunStore(paths["store"])
        base = {
            "name": "a",
            "seed": 13,
            "defaults": dict(TINY),
            "jobs": [
                {
                    "name": "shared",
                    "problem": {
                        "factory": _COUNTED_FACTORY,
                        "kwargs": {"counter_path": str(paths["counter"])},
                    },
                    "seed": 99,
                }
            ],
        }
        run_campaign(CampaignSpec.from_dict(base), workers=1, store=store)
        assert _builds(paths["counter"]) == 1
        other = dict(base, name="b")  # same unit, different campaign
        other_spec = CampaignSpec.from_dict(other)
        report = run_campaign(other_spec, workers=1, store=store)
        assert _builds(paths["counter"]) == 1
        assert report["timing"]["resumed_runs"] == 1
        assert len(store.list_campaigns()) == 2
        assert len(store.list_runs()) == 1
