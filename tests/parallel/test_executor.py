"""Tests for work units, sharding, seed derivation, and executors."""

import numpy as np
import pytest

from repro.exceptions import AnalyzerError
from repro.parallel import (
    EvalUnit,
    ProblemSpec,
    ProcessExecutor,
    SerialExecutor,
    derive_seed,
    evaluate_unit,
    make_executor,
    plan_units,
)
from repro.parallel._testing import band_problem, crashing_problem, dying_problem


class TestPlanUnits:
    def test_covers_every_point_in_order(self):
        plan = plan_units(10, 3)
        assert plan == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_small_batch_is_one_unit(self):
        assert plan_units(5, 64) == [(0, 5)]

    def test_empty_batch(self):
        assert plan_units(0, 64) == []

    def test_plan_depends_only_on_n_and_unit_size(self):
        # The whole determinism argument: no worker count anywhere.
        assert plan_units(100, 16) == plan_units(100, 16)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            plan_units(-1, 8)
        with pytest.raises(ValueError):
            plan_units(8, 0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 1, 3) == derive_seed(7, 1, 3)

    def test_distinct_coordinates_distinct_seeds(self):
        seeds = {
            derive_seed(base, stage, shard)
            for base in (0, 1)
            for stage in (1, 2, 3)
            for shard in range(4)
        }
        assert len(seeds) == 24

    def test_pinned_values(self):
        # SeedSequence is stable by design; freeze two values so an
        # accidental derivation change (which would silently break
        # cross-version reproducibility of recorded seeds) fails loudly.
        assert derive_seed(0, 1, 0) == 5836529245451711556
        assert derive_seed(123, 2, 5) == 1670400809374086579


class TestProblemSpec:
    def test_build_roundtrip(self):
        spec = ProblemSpec(
            factory="repro.parallel._testing:band_problem",
            kwargs={"dim": 3},
        )
        problem = spec.build()
        assert problem.dim == 3
        assert problem.spec is not None

    def test_dict_roundtrip(self):
        spec = ProblemSpec("repro.parallel._testing:band_problem", {"dim": 2})
        assert ProblemSpec.from_dict(spec.to_dict()) == spec

    def test_bad_factory_format(self):
        with pytest.raises(AnalyzerError):
            ProblemSpec("no_colon_here")

    def test_missing_module(self):
        with pytest.raises(AnalyzerError):
            ProblemSpec("repro.does_not_exist:factory").build()

    def test_missing_attribute(self):
        with pytest.raises(AnalyzerError):
            ProblemSpec("repro.parallel._testing:nope").build()


class TestEvaluateUnit:
    def test_native_path_matches_scalar_oracle(self):
        problem = band_problem()
        points = np.random.default_rng(0).uniform(size=(9, 2))
        result = evaluate_unit(problem, points)
        assert result["path"] == "native"
        expected = [problem.evaluate(x).benchmark_value for x in points]
        assert np.array_equal(result["benchmark"], np.array(expected))

    def test_scalar_fallback_path(self):
        problem = band_problem()
        problem.evaluate_batch = None
        points = np.random.default_rng(1).uniform(size=(4, 2))
        result = evaluate_unit(problem, points)
        assert result["path"] == "scalar"
        assert len(result["benchmark"]) == 4


class TestSerialExecutor:
    def test_maps_units_in_order(self):
        problem = band_problem()
        rng = np.random.default_rng(2)
        points = rng.uniform(size=(20, 2))
        units = [EvalUnit(points[a:b]) for a, b in plan_units(20, 6)]
        results = SerialExecutor(problem).map_units(units)
        merged = np.concatenate([r["benchmark"] for r in results])
        assert np.array_equal(merged, evaluate_unit(problem, points)["benchmark"])


class TestProcessExecutor:
    def test_matches_serial_bit_for_bit(self):
        problem = band_problem()
        rng = np.random.default_rng(3)
        points = rng.uniform(size=(30, 2))
        units = [EvalUnit(points[a:b]) for a, b in plan_units(30, 8)]
        serial = SerialExecutor(problem).map_units(units)
        executor = ProcessExecutor(2, spec=problem.spec)
        try:
            parallel = executor.map_units(units)
        finally:
            executor.close()
        for s, p in zip(serial, parallel):
            assert np.array_equal(s["benchmark"], p["benchmark"])
            assert np.array_equal(s["heuristic"], p["heuristic"])
            assert np.array_equal(s["feasible"], p["feasible"])

    def test_worker_exception_raises_analyzer_error(self):
        problem = crashing_problem()
        executor = ProcessExecutor(2, spec=problem.spec)
        units = [EvalUnit(np.zeros((2, 2))) for _ in range(3)]
        with pytest.raises(AnalyzerError, match="work unit failed"):
            executor.map_units(units)

    def test_worker_death_raises_analyzer_error(self):
        problem = dying_problem()
        executor = ProcessExecutor(2, spec=problem.spec)
        units = [EvalUnit(np.zeros((1, 1)))]
        with pytest.raises(AnalyzerError):
            executor.map_units(units)

    def test_empty_unit_list(self):
        executor = ProcessExecutor(2)
        assert executor.map_units([]) == []
        executor.close()

    def test_invalid_worker_count(self):
        with pytest.raises(AnalyzerError):
            ProcessExecutor(0)


class TestMakeExecutor:
    def test_serial(self):
        executor = make_executor("serial", 1, band_problem())
        assert isinstance(executor, SerialExecutor)

    def test_process_requires_spec(self):
        problem = band_problem()
        problem.spec = None
        with pytest.raises(AnalyzerError, match="no ProblemSpec"):
            make_executor("process", 2, problem)

    def test_process_with_spec(self):
        executor = make_executor("process", 2, band_problem())
        assert isinstance(executor, ProcessExecutor)
        executor.close()

    def test_unknown_executor(self):
        with pytest.raises(AnalyzerError, match="unknown executor"):
            make_executor("threads", 2, band_problem())
