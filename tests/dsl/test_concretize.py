"""Tests for abstract templates and concretization (§5.1)."""

import numpy as np
import pytest

from repro.dsl import (
    FlowGraph,
    GroupTracker,
    NodeKind,
    ParamSpec,
    ProblemTemplate,
)
from repro.exceptions import DslError


def make_chain_template():
    """Template: a source-to-sink chain with `length` middle splits."""

    def build(params):
        graph = FlowGraph(f"chain{params['length']}")
        graph.add_node("src", NodeKind.SOURCE, supply=float(params["supply"]))
        previous = "src"
        for i in range(params["length"]):
            name = f"mid{i}"
            graph.add_node(name, NodeKind.SPLIT)
            graph.add_edge(previous, name)
            previous = name
        graph.add_node("dst", NodeKind.SINK)
        graph.add_edge(previous, "dst")
        graph.set_objective("dst", "max")
        return graph

    return ProblemTemplate(
        name="chain",
        params=[
            ParamSpec("length", int, low=1, high=10, default=2),
            ParamSpec("supply", float, low=0.0, high=100.0, default=5.0),
        ],
        build=build,
    )


class TestParamSpec:
    def test_int_validation(self):
        spec = ParamSpec("n", int, low=1, high=5)
        assert spec.validate(3) == 3
        with pytest.raises(DslError):
            spec.validate(0)
        with pytest.raises(DslError):
            spec.validate(2.5)
        with pytest.raises(DslError):
            spec.validate(True)  # bools are not ints here

    def test_float_validation(self):
        spec = ParamSpec("x", float, low=0.0, high=1.0)
        assert spec.validate(0.5) == 0.5
        assert spec.validate(1) == 1.0  # ints coerce to float
        with pytest.raises(DslError):
            spec.validate(2.0)

    def test_sampling_in_range(self):
        rng = np.random.default_rng(0)
        int_spec = ParamSpec("n", int, low=2, high=4)
        float_spec = ParamSpec("x", float, low=0.5, high=0.9)
        for _ in range(20):
            assert 2 <= int_spec.sample(rng) <= 4
            assert 0.5 <= float_spec.sample(rng) <= 0.9


class TestProblemTemplate:
    def test_instantiate_with_defaults(self):
        template = make_chain_template()
        graph = template.instantiate()
        assert graph.num_nodes == 2 + 2  # src, mid0, mid1, dst

    def test_instantiate_with_overrides(self):
        template = make_chain_template()
        graph = template.instantiate(length=4)
        assert graph.has_node("mid3")

    def test_unknown_param_rejected(self):
        template = make_chain_template()
        with pytest.raises(DslError):
            template.instantiate(bogus=1)

    def test_out_of_range_rejected(self):
        template = make_chain_template()
        with pytest.raises(DslError):
            template.instantiate(length=99)

    def test_missing_param_without_default(self):
        template = ProblemTemplate(
            "needy",
            params=[ParamSpec("n", int, low=1, high=3)],
            build=lambda p: FlowGraph(),
        )
        with pytest.raises(DslError):
            template.instantiate()

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(DslError):
            ProblemTemplate(
                "dup",
                params=[
                    ParamSpec("n", int, 1, 2),
                    ParamSpec("n", int, 1, 2),
                ],
                build=lambda p: FlowGraph(),
            )

    def test_sample_instance_valid_graph(self):
        template = make_chain_template()
        rng = np.random.default_rng(1)
        for _ in range(5):
            graph = template.sample_instance(rng)
            graph.validate()  # instantiate() already validates; idempotent

    def test_instantiate_validates_graph(self):
        # A builder that produces an invalid graph must be caught.
        def broken(params):
            graph = FlowGraph()
            graph.add_node("lonely", NodeKind.SOURCE, supply=1.0)
            return graph

        template = ProblemTemplate(
            "broken",
            params=[ParamSpec("n", int, 1, 2, default=1)],
            build=broken,
        )
        from repro.exceptions import GraphValidationError

        with pytest.raises(GraphValidationError):
            template.instantiate()


class TestGroupTracker:
    def test_tracks_members_in_order(self):
        tracker = GroupTracker()
        tracker.add("BALLS", "ball0")
        tracker.add("BALLS", "ball1")
        tracker.add("BINS", "bin0")
        assert tracker.members("BALLS") == ["ball0", "ball1"]
        assert tracker.members("BINS") == ["bin0"]
        assert tracker.members("MISSING") == []

    def test_members_returns_copy(self):
        tracker = GroupTracker()
        tracker.add("G", "a")
        members = tracker.members("G")
        members.append("b")
        assert tracker.members("G") == ["a"]
