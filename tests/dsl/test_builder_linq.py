"""Unit tests for the fluent builder and the LINQ-style combinators."""

import pytest

from repro.dsl import FlowGraphBuilder, NodeKind, query
from repro.exceptions import GraphValidationError


class TestBuilder:
    def test_chained_construction(self):
        graph = (
            FlowGraphBuilder("demo")
            .input_source("d", lb=0, ub=10, group="DEMANDS")
            .split("p", group="PATHS")
            .sink("met", objective="max")
            .edge("d", "p")
            .edge("p", "met", capacity=5)
            .build()
        )
        assert graph.num_nodes == 3
        assert graph.objective_node == "met"
        assert graph.node("d").is_input
        assert graph.node("d").group() == "DEMANDS"
        assert graph.edge("p", "met").capacity == 5

    def test_all_node_kinds_available(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=4.0)
            .split("sp")
            .pick("pk")
            .multiply("m", factor=2.0)
            .all_equal("ae")
            .copy_node("cp")
            .sink("t", objective="max")
            .edge("s", "sp")
            .edge("sp", "pk")
            .edge("pk", "m")
            .edge("m", "ae")
            .edge("ae", "cp")
            .edge("cp", "t")
            .build()
        )
        assert graph.node("m").multiplier == 2.0
        assert graph.node("pk").routing_kind is NodeKind.PICK

    def test_chain_helper(self):
        graph = (
            FlowGraphBuilder()
            .source("a", supply=1.0)
            .split("b")
            .split("c")
            .sink("d", objective="max")
            .chain(["a", "b", "c", "d"], capacity=7)
            .build()
        )
        assert graph.edge("b", "c").capacity == 7
        assert graph.num_edges == 3

    def test_pick_source_behavior(self):
        graph = (
            FlowGraphBuilder()
            .input_source("ball", lb=0, ub=1, behavior=NodeKind.PICK)
            .sink("bin1")
            .sink("bin2", objective="max")
            .edge("ball", "bin1")
            .edge("ball", "bin2")
            .build()
        )
        assert graph.node("ball").routing_kind is NodeKind.PICK

    def test_big_m_setting(self):
        builder = FlowGraphBuilder().big_m(55.0)
        graph = (
            builder.source("a", supply=1.0).sink("t", objective="max")
            .edge("a", "t").build()
        )
        assert graph.default_big_m == 55.0
        with pytest.raises(GraphValidationError):
            FlowGraphBuilder().big_m(0.0)

    def test_build_validates(self):
        builder = FlowGraphBuilder().source("a", supply=1.0)
        with pytest.raises(GraphValidationError):
            builder.build()  # source with no outgoing edges


class TestQuery:
    def test_where_select(self):
        out = (
            query(range(10))
            .where(lambda x: x % 2 == 0)
            .select(lambda x: x * x)
            .to_list()
        )
        assert out == [0, 4, 16, 36, 64]

    def test_order_by_descending(self):
        out = query([3, 1, 2]).order_by(lambda x: x, descending=True).to_list()
        assert out == [3, 2, 1]

    def test_group_by(self):
        groups = query(range(6)).group_by(lambda x: x % 2)
        assert groups[0] == [0, 2, 4]
        assert groups[1] == [1, 3, 5]

    def test_select_many(self):
        out = query([[1, 2], [3]]).select_many(lambda xs: xs).to_list()
        assert out == [1, 2, 3]

    def test_distinct_with_key(self):
        out = query(["aa", "ab", "ba"]).distinct(lambda s: s[0]).to_list()
        assert out == ["aa", "ba"]

    def test_take_skip(self):
        assert query(range(10)).skip(8).to_list() == [8, 9]
        assert query(range(10)).take(2).to_list() == [0, 1]

    def test_aggregations(self):
        q = query([1, 2, 3, 4])
        assert q.count() == 4
        assert query([1, 2, 3, 4]).count(lambda x: x > 2) == 2
        assert query([1, 2, 3]).sum() == 6
        assert query([1, 2, 3]).sum(lambda x: x * 10) == 60
        assert query([3, 1, 2]).min_by(lambda x: x) == 1
        assert query([3, 1, 2]).max_by(lambda x: x) == 3

    def test_first_and_first_or_none(self):
        assert query([1, 2, 3]).first(lambda x: x > 1) == 2
        assert query([1]).first_or_none(lambda x: x > 5) is None
        with pytest.raises(ValueError):
            query([]).first()

    def test_any_all(self):
        assert query([1, 2]).any()
        assert not query([]).any()
        assert query([2, 4]).all(lambda x: x % 2 == 0)
        assert query([1, 2]).any(lambda x: x == 2)

    def test_to_dict(self):
        d = query(["a", "bb"]).to_dict(lambda s: s, lambda s: len(s))
        assert d == {"a": 1, "bb": 2}

    def test_lazy_evaluation(self):
        seen = []

        def spy(x):
            seen.append(x)
            return x

        q = query(range(100)).select(spy).take(3)
        assert seen == []  # nothing evaluated yet
        q.to_list()
        assert seen == [0, 1, 2]

    def test_query_over_graph_nodes(self):
        graph = (
            FlowGraphBuilder()
            .input_source("d1", 0, 10, group="DEMANDS")
            .input_source("d2", 0, 10, group="DEMANDS")
            .split("p", group="PATHS")
            .sink("t", objective="max")
            .edge("d1", "p")
            .edge("d2", "p")
            .edge("p", "t")
            .build()
        )
        demands = (
            query(graph.nodes)
            .where(lambda n: n.group() == "DEMANDS")
            .select(lambda n: n.name)
            .to_list()
        )
        assert demands == ["d1", "d2"]
