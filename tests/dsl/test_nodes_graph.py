"""Unit tests for DSL nodes, edges and the flow-graph IR."""

import pytest

from repro.dsl import FlowGraph, InputSpec, NodeKind, make_node
from repro.exceptions import GraphValidationError


class TestNode:
    def test_make_node_accepts_strings(self):
        node = make_node("n", "split", "source", supply=3.0)
        assert NodeKind.SPLIT in node.kinds
        assert node.is_source
        assert node.supply == 3.0

    def test_routing_kind_single(self):
        node = make_node("n", NodeKind.PICK)
        assert node.routing_kind is NodeKind.PICK

    def test_mixed_routing_behaviors_rejected(self):
        with pytest.raises(GraphValidationError):
            make_node("n", NodeKind.SPLIT, NodeKind.PICK)

    def test_sink_cannot_route(self):
        with pytest.raises(GraphValidationError):
            make_node("n", NodeKind.SINK, NodeKind.SPLIT)

    def test_supply_requires_source(self):
        with pytest.raises(GraphValidationError):
            make_node("n", NodeKind.SPLIT, supply=1.0)

    def test_multiply_needs_positive_factor(self):
        with pytest.raises(GraphValidationError):
            make_node("n", NodeKind.MULTIPLY, multiplier=0.0)

    def test_input_spec_range_validation(self):
        with pytest.raises(GraphValidationError):
            InputSpec(lb=2.0, ub=1.0)
        spec = InputSpec(lb=0.0, ub=5.0)
        assert spec.width == 5.0

    def test_is_input_detection(self):
        node = make_node("n", NodeKind.SOURCE, supply=InputSpec(0, 10))
        assert node.is_input
        const = make_node("m", NodeKind.SOURCE, supply=4.0)
        assert not const.is_input

    def test_metadata_role_and_group(self):
        node = make_node(
            "n", NodeKind.SPLIT, metadata={"role": "path", "group": "PATHS"}
        )
        assert node.role() == "path"
        assert node.group() == "PATHS"


class TestEdge:
    def test_negative_capacity_rejected(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=1.0)
        g.add_node("b", NodeKind.SINK)
        with pytest.raises(GraphValidationError):
            g.add_edge("a", "b", capacity=-1.0)

    def test_fixed_rate_above_capacity_rejected(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=5.0)
        g.add_node("b", NodeKind.SINK)
        with pytest.raises(GraphValidationError):
            g.add_edge("a", "b", capacity=1.0, fixed_rate=2.0)

    def test_duplicate_edge_rejected(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=1.0)
        g.add_node("b", NodeKind.SINK)
        g.add_edge("a", "b")
        with pytest.raises(GraphValidationError):
            g.add_edge("a", "b")

    def test_unknown_endpoint_rejected(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=1.0)
        with pytest.raises(GraphValidationError):
            g.add_edge("a", "missing")


class TestFlowGraph:
    def build_small(self):
        g = FlowGraph("small")
        g.add_node("src", NodeKind.SOURCE, supply=InputSpec(0, 10))
        g.add_node("mid", NodeKind.SPLIT)
        g.add_node("dst", NodeKind.SINK)
        g.add_edge("src", "mid", capacity=10)
        g.add_edge("mid", "dst")
        g.set_objective("dst", "max")
        return g

    def test_queries(self):
        g = self.build_small()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert [e.dst for e in g.out_edges("src")] == ["mid"]
        assert [e.src for e in g.in_edges("dst")] == ["mid"]
        assert g.input_names() == ["src"]
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_validation_passes(self):
        self.build_small().validate()

    def test_objective_must_be_sink(self):
        g = self.build_small()
        with pytest.raises(GraphValidationError):
            g.set_objective("mid")

    def test_sink_with_outgoing_rejected(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=1.0)
        g.add_node("s", NodeKind.SINK)
        g.add_node("b", NodeKind.SPLIT)
        g.add_edge("a", "s")
        g.add_edge("s", "b")
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_source_with_incoming_rejected(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=1.0)
        g.add_node("b", NodeKind.SOURCE, NodeKind.SPLIT, supply=1.0)
        g.add_node("t", NodeKind.SINK)
        g.add_edge("a", "b")
        g.add_edge("b", "t")
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_multiply_arity_enforced(self):
        g = FlowGraph()
        g.add_node("a", NodeKind.SOURCE, supply=1.0)
        g.add_node("m", NodeKind.MULTIPLY, multiplier=2.0)
        g.add_node("t", NodeKind.SINK)
        g.add_node("t2", NodeKind.SINK)
        g.add_edge("a", "m")
        g.add_edge("m", "t")
        g.add_edge("m", "t2")
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_isolated_node_rejected(self):
        g = self.build_small()
        g.add_node("orphan", NodeKind.SPLIT)
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_copy_is_deep_for_structure(self):
        g = self.build_small()
        dup = g.copy()
        dup.add_node("extra", NodeKind.SINK)
        assert not g.has_node("extra")
        assert dup.objective_node == g.objective_node

    def test_describe_mentions_nodes_and_objective(self):
        text = self.build_small().describe()
        assert "src" in text
        assert "objective: max inflow(dst)" in text
