"""Tests for the Type-3 generalizer: grammar, validation, enumeration."""

import numpy as np
import pytest

from repro.exceptions import GeneralizeError
from repro.generalize import (
    Decreasing,
    EnumerativeGeneralizer,
    Increasing,
    Observations,
    ThresholdShift,
    benjamini_hochberg,
    generate_instances,
    line_te_instance_generator,
    monotone_test,
    observe_across_instances,
    observe_within_instance,
    te_instance_generator,
    threshold_test,
    vbp_instance_generator,
)


class TestMonotoneTest:
    def test_detects_increasing(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 60)
        y = 2 * x + rng.normal(0, 0.1, size=60)
        evidence = monotone_test(x, y, "increasing")
        assert evidence.significant
        assert evidence.tau > 0.5

    def test_rejects_wrong_direction(self):
        x = np.linspace(0, 1, 60)
        y = 2 * x
        evidence = monotone_test(x, y, "decreasing")
        assert not evidence.significant

    def test_no_trend_insignificant(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 1, 60)
        y = rng.normal(0, 1, size=60)
        evidence = monotone_test(x, y, "increasing")
        assert evidence.p_value > 0.01  # overwhelmingly likely

    def test_constant_inputs_graceful(self):
        evidence = monotone_test(np.ones(20), np.linspace(0, 1, 20), "increasing")
        assert evidence.p_value == 1.0

    def test_too_few_points_rejected(self):
        with pytest.raises(GeneralizeError):
            monotone_test(np.zeros(4), np.zeros(4), "increasing")


class TestThresholdTest:
    def test_detects_regime_change(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 1, 80)
        y = np.where(x > 0.6, 5.0, 0.0) + rng.normal(0, 0.2, size=80)
        evidence = threshold_test(x, y)
        assert evidence.significant
        assert evidence.threshold == pytest.approx(0.6, abs=0.15)
        assert evidence.direction == "above"

    def test_flat_data_insignificant(self):
        x = np.linspace(0, 1, 80)
        y = np.full(80, 3.0)
        evidence = threshold_test(x, y)
        assert not evidence.significant


class TestBenjaminiHochberg:
    def test_all_tiny_pass(self):
        assert benjamini_hochberg([1e-10, 1e-9, 1e-8]) == [True, True, True]

    def test_all_large_fail(self):
        assert benjamini_hochberg([0.5, 0.9, 0.7]) == [False, False, False]

    def test_mixed(self):
        keep = benjamini_hochberg([0.001, 0.9, 0.02])
        assert keep[0] is True
        assert keep[1] is False

    def test_empty(self):
        assert benjamini_hochberg([]) == []


class TestGrammar:
    def test_increasing_statement(self):
        x = np.linspace(0, 1, 40)
        y = x * 3
        checked = Increasing("path_len").check(x, y)
        assert checked.statement == "increasing(path_len)"
        assert checked.significant

    def test_decreasing_statement(self):
        x = np.linspace(0, 1, 40)
        checked = Decreasing("capacity").check(x, -x)
        assert checked.significant

    def test_threshold_statement_format(self):
        rng = np.random.default_rng(3)
        x = np.linspace(0, 1, 60)
        y = np.where(x > 0.5, 4.0, 0.0) + rng.normal(0, 0.1, 60)
        checked = ThresholdShift("load").check(x, y)
        assert "load" in checked.statement
        assert checked.significant


class TestEnumerativeSearch:
    def test_finds_planted_trend(self):
        rng = np.random.default_rng(4)
        n = 80
        relevant = np.linspace(0, 1, n)
        noise = rng.uniform(0, 1, size=n)
        gaps = 3 * relevant + rng.normal(0, 0.2, size=n)
        observations = Observations(
            feature_names=["relevant", "noise"],
            features=np.column_stack([relevant, noise]),
            gaps=gaps,
        )
        result = EnumerativeGeneralizer().search(observations)
        statements = [c.statement for c in result.supported]
        assert "increasing(relevant)" in statements
        assert "increasing(noise)" not in statements
        assert "relevant" in result.clause.describe()

    def test_clause_one_predicate_per_feature(self):
        rng = np.random.default_rng(5)
        x = np.linspace(0, 1, 100)
        gaps = np.where(x > 0.5, 3.0, 0.0) + x + rng.normal(0, 0.1, 100)
        observations = Observations(
            feature_names=["f"], features=x.reshape(-1, 1), gaps=gaps
        )
        result = EnumerativeGeneralizer().search(observations)
        features = [p.feature for p in result.clause.predicates]
        assert len(features) == len(set(features))


class TestInstanceGenerators:
    def test_te_generator_produces_problems(self):
        rng = np.random.default_rng(6)
        generator = te_instance_generator(num_nodes_range=(4, 5))
        instances = list(generate_instances(generator, 3, rng))
        assert len(instances) == 3
        for inst in instances:
            assert inst.problem.dim >= 1
            assert "mean_shortest_path_len" in inst.features

    def test_line_generator_path_length_feature(self):
        rng = np.random.default_rng(7)
        generator = line_te_instance_generator(length_range=(3, 5))
        inst = generator(rng)
        assert inst.features["pinned_shortest_path_len"] >= 2.0

    def test_vbp_generator(self):
        rng = np.random.default_rng(8)
        generator = vbp_instance_generator(num_balls_range=(3, 4))
        inst = generator(rng)
        assert inst.problem.instance_info["num_balls"] in (3, 4)

    def test_observe_within_instance(self):
        rng = np.random.default_rng(9)
        generator = vbp_instance_generator(num_balls_range=(3, 3))
        problem = generator(rng).problem
        observations = observe_within_instance(problem, 30, rng)
        assert observations.features.shape[0] == 30
        assert set(observations.feature_names) == set(problem.features)

    def test_observe_across_instances(self):
        rng = np.random.default_rng(10)
        generator = vbp_instance_generator(num_balls_range=(3, 4))
        instances = list(generate_instances(generator, 4, rng))
        observations = observe_across_instances(
            instances, samples_per_instance=10, rng=rng
        )
        assert observations.features.shape == (4, 3)
        assert observations.gaps.shape == (4,)
