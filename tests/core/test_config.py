"""XPlainConfig must reject bad knob values eagerly with clear messages."""

import pytest

from repro import XPlainConfig
from repro.exceptions import AnalyzerError


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = XPlainConfig()
        assert config.analyzer == "auto"
        assert config.executor == "serial"
        assert config.workers == 1

    def test_unknown_analyzer(self):
        with pytest.raises(AnalyzerError, match="unknown analyzer 'metopt'"):
            XPlainConfig(analyzer="metopt")

    def test_unknown_backend(self):
        with pytest.raises(AnalyzerError, match="unknown backend"):
            XPlainConfig(backend="gurobi")

    def test_unknown_blackbox_strategy(self):
        with pytest.raises(AnalyzerError, match="unknown blackbox strategy"):
            XPlainConfig(blackbox_strategy="genetic")

    def test_unknown_executor(self):
        with pytest.raises(AnalyzerError, match="unknown executor"):
            XPlainConfig(executor="threads")

    def test_workers_must_be_positive(self):
        with pytest.raises(AnalyzerError, match="workers"):
            XPlainConfig(executor="process", workers=0)

    def test_workers_must_be_int(self):
        with pytest.raises(AnalyzerError, match="workers"):
            XPlainConfig(executor="process", workers=2.5)

    def test_serial_executor_is_single_worker(self):
        with pytest.raises(AnalyzerError, match="single-worker"):
            XPlainConfig(executor="serial", workers=4)

    def test_process_executor_accepts_workers(self):
        config = XPlainConfig(executor="process", workers=4)
        assert config.workers == 4

    def test_unit_points_validated(self):
        with pytest.raises(AnalyzerError, match="unit_points"):
            XPlainConfig(unit_points=0)

    def test_error_message_lists_choices(self):
        with pytest.raises(AnalyzerError, match="metaopt"):
            XPlainConfig(analyzer="bogus")
