"""XPlainConfig must reject bad knob values eagerly with clear messages."""

import pytest

from repro import XPlainConfig
from repro.exceptions import AnalyzerError


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = XPlainConfig()
        assert config.analyzer == "auto"
        assert config.executor == "serial"
        assert config.workers == 1

    def test_unknown_analyzer(self):
        with pytest.raises(AnalyzerError, match="unknown analyzer 'metopt'"):
            XPlainConfig(analyzer="metopt")

    def test_unknown_backend(self):
        with pytest.raises(AnalyzerError, match="unknown backend"):
            XPlainConfig(backend="gurobi")

    def test_unknown_blackbox_strategy(self):
        with pytest.raises(AnalyzerError, match="unknown blackbox strategy"):
            XPlainConfig(blackbox_strategy="genetic")

    def test_unknown_executor(self):
        with pytest.raises(AnalyzerError, match="unknown executor"):
            XPlainConfig(executor="threads")

    def test_workers_must_be_positive(self):
        with pytest.raises(AnalyzerError, match="workers"):
            XPlainConfig(executor="process", workers=0)

    def test_workers_must_be_int(self):
        with pytest.raises(AnalyzerError, match="workers"):
            XPlainConfig(executor="process", workers=2.5)

    def test_serial_executor_is_single_worker(self):
        with pytest.raises(AnalyzerError, match="single-worker"):
            XPlainConfig(executor="serial", workers=4)

    def test_process_executor_accepts_workers(self):
        config = XPlainConfig(executor="process", workers=4)
        assert config.workers == 4

    def test_unit_points_validated(self):
        with pytest.raises(AnalyzerError, match="unit_points"):
            XPlainConfig(unit_points=0)

    def test_error_message_lists_choices(self):
        with pytest.raises(AnalyzerError, match="metaopt"):
            XPlainConfig(analyzer="bogus")


class TestStoreKnobs:
    def test_defaults(self):
        config = XPlainConfig()
        assert config.store_path is None
        assert config.store_retention == 0
        assert config.cache_max_entries == 1_000_000

    def test_store_path_must_be_string_or_none(self):
        with pytest.raises(AnalyzerError, match="store_path"):
            XPlainConfig(store_path=7)

    def test_store_path_must_not_be_blank(self):
        with pytest.raises(AnalyzerError, match="store_path"):
            XPlainConfig(store_path="   ")

    def test_store_retention_must_be_nonnegative_int(self):
        with pytest.raises(AnalyzerError, match="store_retention"):
            XPlainConfig(store_retention=-1)
        with pytest.raises(AnalyzerError, match="store_retention"):
            XPlainConfig(store_retention=2.5)

    def test_cache_max_entries_must_be_positive_int(self):
        with pytest.raises(AnalyzerError, match="cache_max_entries"):
            XPlainConfig(cache_max_entries=0)
        with pytest.raises(AnalyzerError, match="cache_max_entries"):
            XPlainConfig(cache_max_entries="lots")

    def test_valid_store_config_accepted(self):
        config = XPlainConfig(
            store_path="/tmp/store", store_retention=3, cache_max_entries=64
        )
        assert config.store_path == "/tmp/store"
        assert config.store_retention == 3
        assert config.cache_max_entries == 64


class TestSearchKnobs:
    def test_defaults(self):
        config = XPlainConfig()
        assert config.search == "uniform"
        assert config.search_budget == 4096
        assert config.search_rounds == 8

    def test_unknown_search_policy(self):
        with pytest.raises(AnalyzerError, match="unknown search policy"):
            XPlainConfig(search="genetic")

    def test_error_lists_policies(self):
        with pytest.raises(AnalyzerError, match="bandit"):
            XPlainConfig(search="bogus")

    def test_search_budget_must_be_positive_int(self):
        with pytest.raises(AnalyzerError, match="search_budget"):
            XPlainConfig(search_budget=0)
        with pytest.raises(AnalyzerError, match="search_budget"):
            XPlainConfig(search_budget=2.5)

    def test_search_rounds_must_be_positive_int(self):
        with pytest.raises(AnalyzerError, match="search_rounds"):
            XPlainConfig(search_rounds=0)
        with pytest.raises(AnalyzerError, match="search_rounds"):
            XPlainConfig(search_rounds="many")

    def test_valid_search_config_accepted(self):
        config = XPlainConfig(search="hybrid", search_budget=256, search_rounds=4)
        assert config.search == "hybrid"
        assert config.search_budget == 256
        assert config.search_rounds == 4
