"""Tests for the end-to-end XPlain pipeline and visualizations."""

import pytest

from repro import XPlain, XPlainConfig
from repro.analyzer import AnalyzedProblem, GapSample
from repro.core.visualize import (
    render_gap_table,
    render_layered_graph,
    render_region_matrix,
)
from repro.domains.binpack import first_fit_problem
from repro.exceptions import AnalyzerError
from repro.subspace import Box, GeneratorConfig, Region
from repro.subspace.region import Halfspace


def fast_config(**overrides):
    defaults = dict(
        generator=GeneratorConfig(
            max_subspaces=1,
            tree_extra_samples=120,
            significance_pairs=24,
            seed=1,
        ),
        explainer_samples=60,
        generalizer_samples=60,
        seed=1,
    )
    defaults.update(overrides)
    return XPlainConfig(**defaults)


@pytest.fixture(scope="module")
def ff_report():
    problem = first_fit_problem(num_balls=4, num_bins=3)
    return XPlain(problem, fast_config()).run()


class TestPipeline:
    def test_report_has_all_types(self, ff_report):
        assert ff_report.num_subspaces >= 1  # Type 1
        explained = ff_report.explained[0]
        assert explained.heatmap.num_samples == 60  # Type 2
        assert ff_report.generalization is not None  # Type 3 (checked)
        assert ff_report.worst_gap == pytest.approx(1.0)

    def test_subspace_is_significant(self, ff_report):
        assert all(e.subspace.significant for e in ff_report.explained)
        assert ff_report.explained[0].subspace.significance.p_value < 0.05

    def test_summary_renders(self, ff_report):
        text = ff_report.summary()
        assert "XPlain report" in text
        assert "subspace D0" in text
        assert "Wilcoxon" in text

    def test_narrative_present(self, ff_report):
        narrative = ff_report.explained[0].narrative.render()
        assert "ball" in narrative

    def test_auto_uses_blackbox_without_encoding(self):
        def evaluate(x):
            return GapSample(
                x=x, benchmark_value=float(x[0]), heuristic_value=0.0
            )

        bare = AnalyzedProblem(
            name="bare",
            input_names=["x"],
            input_box=Box((0.0,), (1.0,)),
            evaluate=evaluate,
        )
        pipeline = XPlain(bare, fast_config(generalizer_samples=0))
        analyzer = pipeline.make_analyzer()
        assert type(analyzer).__name__ == "BlackBoxAnalyzer"

    def test_metaopt_mode_requires_encoding(self):
        def evaluate(x):
            return GapSample(x=x, benchmark_value=0.0, heuristic_value=0.0)

        bare = AnalyzedProblem(
            name="bare2",
            input_names=["x"],
            input_box=Box((0.0,), (1.0,)),
            evaluate=evaluate,
        )
        pipeline = XPlain(bare, fast_config(analyzer="metaopt"))
        with pytest.raises(AnalyzerError):
            pipeline.make_analyzer()

    def test_runtime_recorded(self, ff_report):
        assert ff_report.runtime_seconds > 0


class TestVisualize:
    def test_layered_graph_render(self, ff_report):
        problem = ff_report.problem
        text = render_layered_graph(
            problem.graph, ff_report.explained[0].heatmap
        )
        assert "[BALLS]" in text
        assert "[BINS]" in text
        assert "->" in text

    def test_region_matrix_render(self):
        region = Region(
            box=Box((0.0, 0.0), (1.0, 1.0)),
            halfspaces=[Halfspace((-1.0, -1.0), -1.5)],
        )
        text = render_region_matrix(region, ["B0", "B1"])
        assert "A X <= C" in text
        assert "T X <= V" in text
        assert "-1.5" in text

    def test_gap_table(self):
        text = render_gap_table([("fig1a", 150.0, 250.0)])
        assert "fig1a" in text
        assert "100" in text
