"""Tests for cross-instance Type-3 generalization via the pipeline."""

import pytest

from repro import XPlain, XPlainConfig
from repro.domains.te import (
    build_demand_set,
    demand_pinning_problem,
    fig1a_demand_pairs,
    fig1a_topology,
)
from repro.generalize import line_te_instance_generator, vbp_instance_generator
from repro.subspace import GeneratorConfig


@pytest.fixture(scope="module")
def dp_pipeline():
    demand_set = build_demand_set(
        fig1a_topology(), fig1a_demand_pairs(), num_paths=2
    )
    problem = demand_pinning_problem(demand_set, threshold=50.0, d_max=100.0)
    config = XPlainConfig(
        generator=GeneratorConfig(max_subspaces=1, seed=0), seed=0
    )
    return XPlain(problem, config)


class TestGeneralizeAcross:
    def test_sampled_observation_mode(self, dp_pipeline):
        result = dp_pipeline.generalize_across(
            vbp_instance_generator(num_balls_range=(3, 5)),
            num_instances=10,
            samples_per_instance=15,
        )
        # Every checked predicate carries valid statistics.
        for predicate in result.checked:
            assert 0.0 <= predicate.p_value <= 1.0

    def test_exact_analyzer_mode_finds_path_length_trend(self, dp_pipeline):
        result = dp_pipeline.generalize_across(
            line_te_instance_generator(length_range=(3, 7)),
            num_instances=9,
            use_exact_analyzer=True,
        )
        statements = [c.statement for c in result.supported]
        assert "increasing(pinned_shortest_path_len)" in statements

    def test_result_describe_renders(self, dp_pipeline):
        result = dp_pipeline.generalize_across(
            vbp_instance_generator(num_balls_range=(3, 4)),
            num_instances=8,
            samples_per_instance=10,
        )
        assert "type-3 clause" in result.describe()
