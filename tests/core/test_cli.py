"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dp_defaults(self):
        from repro.cli import _analyze_kwargs
        from repro.domains.registry import registry

        args = build_parser().parse_args(["dp"])
        kwargs = _analyze_kwargs(args, registry().get("te"))
        assert kwargs["threshold"] == 50.0
        assert kwargs["d_max"] == 100.0
        assert not kwargs["fig4a"]

    def test_explicit_default_valued_knob_beats_preset(self):
        from repro.cli import _analyze_kwargs
        from repro.domains.registry import registry

        # --policy lru equals the knob default but was explicitly typed,
        # so it must override the fifo preset.
        args = build_parser().parse_args(
            ["analyze", "caching", "--preset", "fifo", "--policy", "lru"]
        )
        kwargs = _analyze_kwargs(args, registry().get("caching"))
        assert kwargs["policy"] == "lru"

    def test_vbp_options(self):
        args = build_parser().parse_args(
            ["vbp", "--balls", "5", "--bins", "4", "--seed", "7"]
        )
        assert args.balls == 5
        assert args.bins == 4
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_every_analyze_subcommand_accepts_search_flags(self):
        from repro.domains.registry import registry

        domains = [p.name for p in registry()]
        legacy = [cmd for p in registry() for cmd in p.legacy_cli]
        for argv in [["analyze", d] for d in domains] + [[c] for c in legacy]:
            args = build_parser().parse_args(
                argv + ["--search", "bandit", "--search-budget", "512",
                        "--search-rounds", "6"]
            )
            assert args.search == "bandit"
            assert args.search_budget == 512
            assert args.search_rounds == 6

    def test_search_flags_default_to_unset(self):
        args = build_parser().parse_args(["analyze", "caching"])
        assert args.search is None
        assert args.search_budget is None
        assert args.search_rounds is None

    def test_search_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "caching", "--search", "genetic"]
            )

    def test_search_flags_reach_the_config(self):
        from repro.cli import _pipeline_config

        args = build_parser().parse_args(
            ["analyze", "caching", "--search", "hybrid",
             "--search-budget", "256"]
        )
        config = _pipeline_config(args)
        assert config.search == "hybrid"
        assert config.search_budget == 256
        assert config.search_rounds == 8  # untouched default

    def test_unset_search_flags_leave_plugin_defaults(self):
        from repro.cli import _pipeline_config

        args = build_parser().parse_args(["analyze", "caching"])
        config = _pipeline_config(args, {"search": "bandit"})
        assert config.search == "bandit"  # plugin override survives

    def test_every_subcommand_accepts_workers(self):
        for argv in (
            ["dp"], ["vbp"], ["sched"], ["fig1a"], ["encode"],
            ["type3"], ["campaign", "spec.json"],
            ["analyze", "caching"], ["analyze", "te"],
        ):
            args = build_parser().parse_args(argv + ["--workers", "3"])
            assert args.workers == 3

    def test_analyze_requires_a_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_analyze_rejects_unknown_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "frobnicate"])

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "my-spec.json", "--out-dir", "reports"]
        )
        assert args.spec == "my-spec.json"
        assert args.out_dir == "reports"
        assert args.workers == 1
        assert args.store is None

    def test_campaign_store_option(self):
        args = build_parser().parse_args(
            ["campaign", "my-spec.json", "--store", "run-store"]
        )
        assert args.store == "run-store"

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--port", "9001", "--workers", "2"]
        )
        assert args.store == "s"
        assert args.port == 9001
        assert args.workers == 2
        assert args.retention == 0

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_runs_subcommands(self):
        args = build_parser().parse_args(["runs", "list", "--store", "s"])
        assert (args.runs_command, args.store) == ("list", "s")
        args = build_parser().parse_args(
            ["runs", "show", "run-abc", "--store", "s"]
        )
        assert (args.runs_command, args.id) == ("show", "run-abc")
        args = build_parser().parse_args(
            ["runs", "gc", "--store", "s", "--keep", "2"]
        )
        assert (args.runs_command, args.keep) == ("gc", 2)


class TestCommands:
    def test_fig1a_prints_table(self, capsys):
        assert main(["fig1a"]) == 0
        out = capsys.readouterr().out
        assert "150" in out and "250" in out

    def test_encode_roundtrip(self, capsys):
        assert main(["encode"]) == 0
        out = capsys.readouterr().out
        assert "direct optimum 20, via flow graph 20" in out
        assert "stove" in out

    def test_vbp_small_runs(self, capsys):
        # 3 balls is FF-optimal, so this exercises the empty-report path.
        code = main(
            ["vbp", "--balls", "3", "--bins", "3", "--samples", "30",
             "--subspaces", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "XPlain report" in out
        assert "worst-case gap found: 0" in out

    def test_dp_runs_pipeline(self, capsys):
        code = main(
            ["dp", "--samples", "30", "--subspaces", "1", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst-case gap found: 100" in out
        assert "Wilcoxon" in out

    def test_dp_with_workers_matches_serial(self, capsys):
        argv = ["dp", "--samples", "30", "--subspaces", "1", "--seed", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Identical report text except wall-clock lines (runtime, oracle
        # eval seconds, LP solve seconds).
        def strip(text):
            return [
                line for line in text.splitlines()
                if "runtime" not in line
                and " in " not in line
                and "lp templates" not in line
            ]

        assert strip(parallel_out) == strip(serial_out)

    def test_campaign_runs_spec(self, capsys, tmp_path):
        code = main(
            ["campaign", "examples/campaign_smoke.json",
             "--out-dir", str(tmp_path / "out")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign 'smoke'" in out
        assert (tmp_path / "out" / "campaign.json").exists()

    def test_runs_list_and_gc_on_store(self, capsys, tmp_path):
        import json

        spec = {
            "name": "cli-store",
            "seed": 5,
            "defaults": {
                "explainer_samples": 15,
                "generalizer_samples": 0,
                "generator": {
                    "max_subspaces": 1,
                    "tree_extra_samples": 40,
                    "significance_pairs": 12,
                },
            },
            "jobs": [
                {
                    "name": "band",
                    "problem": {
                        "factory": "repro.parallel._testing:band_problem"
                    },
                }
            ],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        store = str(tmp_path / "store")
        assert main(["campaign", str(spec_path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "recorded in" in out

        assert main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 campaigns, 1 runs" in out
        campaign_id = next(
            line.split()[0]
            for line in out.splitlines()
            if line.strip().startswith("camp-")
        )

        assert main(["runs", "show", campaign_id, "--store", store]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["status"] == "done"

        assert main(["runs", "show", "run-nope", "--store", store]) == 1
        capsys.readouterr()

        assert main(["runs", "gc", "--store", store, "--keep", "0"]) == 0
        assert "deleted 1 campaigns" in capsys.readouterr().out
