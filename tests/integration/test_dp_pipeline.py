"""Integration: the full XPlain pipeline on Demand Pinning (Fig. 1a/4a)."""

import numpy as np
import pytest

from repro import XPlain, XPlainConfig
from repro.domains.te import (
    build_demand_set,
    demand_pinning_problem,
    fig1a_demand_pairs,
    fig1a_topology,
)
from repro.subspace import GeneratorConfig


@pytest.fixture(scope="module")
def dp_report():
    demand_set = build_demand_set(
        fig1a_topology(), fig1a_demand_pairs(), num_paths=2
    )
    problem = demand_pinning_problem(demand_set, threshold=50.0, d_max=100.0)
    config = XPlainConfig(
        generator=GeneratorConfig(
            max_subspaces=1,
            tree_extra_samples=120,
            significance_pairs=24,
            seed=2,
        ),
        explainer_samples=60,
        generalizer_samples=80,
        seed=2,
    )
    return XPlain(problem, config).run()


class TestDpEndToEnd:
    def test_worst_gap_is_100(self, dp_report):
        assert dp_report.worst_gap == pytest.approx(100.0, abs=1e-3)

    def test_type1_subspace_found_and_significant(self, dp_report):
        assert dp_report.num_subspaces >= 1
        subspace = dp_report.explained[0].subspace
        assert subspace.significant
        assert subspace.significance.p_value < 0.05

    def test_type1_shape_matches_section3(self, dp_report):
        """§3 Type 1: the pinnable demand's coordinate stays at/below the
        threshold inside the subspace; the interfering demands are large."""
        region = dp_report.explained[0].subspace.region
        names = dp_report.problem.input_names
        i13 = names.index("1->3")
        # d13's box upper edge sits near the threshold 50.
        assert region.box.hi[i13] <= 60.0
        # the other demands' box lower edges are high (they must congest
        # the shared links).
        for key in ("1->2", "2->3"):
            idx = names.index(key)
            assert region.box.lo[idx] >= 60.0

    def test_type2_heatmap_matches_fig4a(self, dp_report):
        """Fig. 4a: DP-only red on the pinned shortest path, OPT-only blue
        on the alternative path."""
        heatmap = dp_report.explained[0].heatmap
        red = heatmap.score("d[1->3]", "p[1-2-3]")
        blue = heatmap.score("d[1->3]", "p[1-4-5-3]")
        assert red.mean_score < -0.5
        assert blue.mean_score > 0.5

    def test_type2_narrative_story(self, dp_report):
        text = dp_report.explained[0].narrative.render()
        assert "1~>3" in text

    def test_type3_checked_dp_features(self, dp_report):
        """Within-instance generalization runs over the DP features and the
        pinnable-volume trend is checked (§5.4 in miniature)."""
        result = dp_report.generalization
        assert result is not None
        checked_features = {c.feature for c in result.checked}
        assert "pinnable_count" in checked_features or "pinnable_volume" in checked_features

    def test_seeds_reproduce(self):
        demand_set = build_demand_set(
            fig1a_topology(), fig1a_demand_pairs(), num_paths=2
        )
        problem = demand_pinning_problem(
            demand_set, threshold=50.0, d_max=100.0
        )
        config = XPlainConfig(
            generator=GeneratorConfig(
                max_subspaces=1,
                tree_extra_samples=60,
                significance_pairs=24,
                seed=3,
            ),
            explainer_samples=0 or 20,
            generalizer_samples=0,
            seed=3,
        )
        first = XPlain(problem, config).run()
        second = XPlain(problem, config).run()
        assert first.worst_gap == second.worst_gap
        if first.explained and second.explained:
            assert np.allclose(
                first.explained[0].subspace.region.box.lo_array,
                second.explained[0].subspace.region.box.lo_array,
            )
