"""Cross-component consistency checks promised in DESIGN.md §7."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_graph, solve_graph
from repro.domains.binpack import (
    VbpInstance,
    first_fit,
    first_fit_problem,
    solve_optimal_packing,
)
from repro.domains.te import (
    build_demand_set,
    build_te_graph,
    fig1a_demand_pairs,
    fig1a_topology,
    solve_optimal_te,
    solve_te_graph,
)
from repro.dsl import FlowGraphBuilder, NodeKind
from repro.explain.scoring import FLOW_TOL


class TestCompiledDslVsHandWrittenLp:
    """The compiled Fig. 4a DSL and the hand-written path LP must agree."""

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=3,
            max_size=3,
        )
    )
    def test_te_objective_equality(self, demand_values):
        demand_set = build_demand_set(
            fig1a_topology(), fig1a_demand_pairs(), num_paths=2
        )
        graph = build_te_graph(demand_set, max_demand=100.0)
        values = dict(zip(demand_set.keys, demand_values))
        via_dsl, _ = solve_te_graph(graph, demand_set, values)
        via_lp = solve_optimal_te(demand_set, values)
        assert via_dsl == pytest.approx(via_lp.total_flow, abs=1e-5)


class TestFlowConservationOnCompiledModels:
    """Every compiled DSL model satisfies flow conservation at split nodes."""

    def _check_conservation(self, graph, solution, varmap):
        for node in graph.nodes:
            if node.routing_kind is not NodeKind.SPLIT or node.is_sink:
                continue
            inflow = sum(
                solution.values[varmap.edge_vars[e.key]]
                for e in graph.in_edges(node.name)
            )
            if node.is_source:
                if node.name in varmap.input_vars:
                    inflow += solution.values[varmap.input_vars[node.name]]
                elif node.name in varmap.free_supply_vars:
                    inflow += solution.values[
                        varmap.free_supply_vars[node.name]
                    ]
                elif isinstance(node.supply, (int, float)):
                    inflow += float(node.supply)
            outflow = sum(
                solution.values[varmap.edge_vars[e.key]]
                for e in graph.out_edges(node.name)
            )
            assert inflow == pytest.approx(outflow, abs=1e-6)

    def test_te_graph_conserves(self):
        demand_set = build_demand_set(
            fig1a_topology(), fig1a_demand_pairs(), num_paths=2
        )
        graph = build_te_graph(demand_set, max_demand=100.0)
        inputs = {
            "d[1->3]": 50.0,
            "d[1->2]": 80.0,
            "d[2->3]": 30.0,
        }
        compiled = compile_graph(graph, inputs=inputs, rewrite=False, run_presolve=False)
        solution = compiled.solve(backend="scipy")
        assert solution.is_optimal
        self._check_conservation(graph, solution, compiled.varmap)

    def test_custom_pick_graph_conserves(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=4.0, behavior=NodeKind.PICK)
            .split("m")
            .sink("t", objective="max")
            .sink("u")
            .edge("s", "m", capacity=10.0)
            .edge("s", "u", capacity=10.0)
            .edge("m", "t")
            .build()
        )
        compiled = compile_graph(graph, rewrite=False, run_presolve=False)
        solution = compiled.solve(backend="scipy")
        assert solution.is_optimal
        self._check_conservation(graph, solution, compiled.varmap)


class TestHeuristicFlowsConsistency:
    """Edge-flow mappings must reproduce the oracles' objective values."""

    def test_ff_flows_sum_to_sizes(self):
        problem = first_fit_problem(num_balls=5, num_bins=5)
        rng = np.random.default_rng(0)
        for x in problem.input_box.sample(rng, 5):
            flows = problem.heuristic_flows(x)
            placed = sum(
                flow
                for (src, dst), flow in flows.items()
                if src.startswith("ball[") and flow > FLOW_TOL
            )
            assert placed == pytest.approx(float(np.sum(x)), abs=1e-6)

    def test_ff_oracle_gap_matches_simulation(self):
        problem = first_fit_problem(num_balls=5, num_bins=5)
        rng = np.random.default_rng(1)
        for x in problem.input_box.sample(rng, 5):
            inst = VbpInstance.one_dimensional(x, num_bins=5)
            expected = (
                first_fit(inst).bins_used
                - solve_optimal_packing(inst).bins_used
            )
            assert problem.gap(x) == pytest.approx(float(expected))


class TestBackendAgreementOnCompiledGraphs:
    """Built-in simplex/B&B and SciPy agree on compiled DSL models."""

    @pytest.mark.parametrize("rewrite", [True, False])
    def test_te_graph_backends_agree(self, rewrite):
        demand_set = build_demand_set(
            fig1a_topology(), fig1a_demand_pairs(), num_paths=2
        )
        graph = build_te_graph(demand_set, max_demand=100.0)
        inputs = {"d[1->3]": 50.0, "d[1->2]": 100.0, "d[2->3]": 100.0}
        ours, _ = solve_graph(graph, inputs=inputs, backend="simplex", rewrite=rewrite)
        scipy_sol, _ = solve_graph(graph, inputs=inputs, backend="scipy", rewrite=rewrite)
        assert ours.objective == pytest.approx(scipy_sol.objective, abs=1e-6)

    def test_vbp_graph_backends_agree(self):
        problem = first_fit_problem(num_balls=3, num_bins=3)
        graph = problem.graph
        inputs = {f"ball[{i}]": v for i, v in enumerate([0.4, 0.5, 0.6])}
        ours, _ = solve_graph(graph, inputs=inputs, backend="simplex")
        scipy_sol, _ = solve_graph(graph, inputs=inputs, backend="scipy")
        assert ours.objective == pytest.approx(scipy_sol.objective, abs=1e-6)
