"""RunStore: lifecycle, report round-trips, retention."""

import pytest

from repro.exceptions import AnalyzerError
from repro.explain.heatmap import EdgeScore
from repro.explain.report import Divergence, ExplanationReport
from repro.oracle.stats import OracleStats
from repro.store import RunStore
from repro.subspace.region import Box, Halfspace, Region


def _report(name="unit", seed=7):
    """A fabricated per-unit report in the campaign report schema."""
    region = Region(
        box=Box((0.0, 50.0), (25.0, 100.0)),
        halfspaces=[Halfspace((-1.0, 0.0), -10.0)],
    )
    explanation = ExplanationReport(
        headline="diverges on 1 edge:",
        heuristic_side=[
            Divergence(
                edge_score=EdgeScore(
                    edge=("d[0]", "p[1]"),
                    mean_score=-0.8,
                    heuristic_use_rate=0.9,
                    benchmark_use_rate=0.1,
                    mean_heuristic_flow=40.0,
                    mean_benchmark_flow=5.0,
                    samples=30,
                ),
                src_role="demand",
                dst_role="path",
                sentence="the heuristic routes demand 0 over path 1",
            )
        ],
    )
    stats = OracleStats(
        points=100,
        cache_hits=20,
        cache_misses=80,
        native_batched=80,
        warm_solves=60,
        cold_solves=20,
        lp_iterations=500,
        lp_seconds=0.5,
        eval_seconds=1.5,
    )
    counters = stats.to_dict()
    timing = {
        "runtime_seconds": 2.0,
        "lp_seconds": counters.pop("lp_seconds"),
        "eval_seconds": counters.pop("eval_seconds"),
    }
    return {
        "name": name,
        "seed": seed,
        "worst_gap": 12.5,
        "num_subspaces": 1,
        "oracle": counters,
        "subspaces": [
            {
                "region": region.to_dict(),
                "explanation": explanation.to_dict(),
                "seed_gap": 12.5,
            }
        ],
        "timing": timing,
    }, region, explanation, stats


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


def _register(store, campaign_id="camp-1", seed=3, runs=(("run-1", "unit"),)):
    store.register_campaign(campaign_id, "c", seed, {"jobs": []}, list(runs))


class TestCampaignLifecycle:
    def test_register_and_status(self, store):
        _register(store)
        campaign = store.campaign("camp-1")
        assert campaign["status"] == "pending"
        assert campaign["runs"] == [
            {
                "position": 0,
                "run_id": "run-1",
                "job_name": "unit",
                "status": "pending",
            }
        ]
        store.set_campaign_status("camp-1", "running")
        assert store.campaign("camp-1")["status"] == "running"
        store.set_campaign_status("camp-1", "failed", error="boom")
        assert store.campaign("camp-1")["error"] == "boom"

    def test_register_is_idempotent(self, store):
        for _ in range(2):
            _register(store)
        assert len(store.list_campaigns()) == 1

    def test_unknown_campaign_and_status(self, store):
        with pytest.raises(AnalyzerError, match="unknown campaign"):
            store.set_campaign_status("camp-missing", "done")
        store.register_campaign("camp-1", "c", 3, {}, [])
        with pytest.raises(AnalyzerError, match="unknown campaign status"):
            store.set_campaign_status("camp-1", "paused")
        assert store.campaign("camp-missing") is None


class TestRunRoundTrip:
    def test_report_splits_and_remerges_timing(self, store):
        report, _, _, _ = _report()
        store.record_run("run-1", {"seed": 7}, report)
        row = store.run("run-1")
        assert "timing" not in row["report"]
        assert row["timing"]["runtime_seconds"] == 2.0
        assert store.completed_report("run-1") == report

    def test_incomplete_runs_do_not_resolve(self, store):
        store.record_run("run-1", {}, None, status="failed", error="boom")
        assert store.completed_report("run-1") is None
        assert store.run("run-1")["error"] == "boom"

    def test_typed_round_trips(self, store):
        report, region, explanation, stats = _report()
        store.record_run("run-1", {}, report)
        assert store.run_stats("run-1") == stats
        (loaded_region,) = store.run_regions("run-1")
        assert loaded_region == region
        (loaded_explanation,) = store.run_explanations("run-1")
        assert loaded_explanation == explanation

    def test_typed_round_trip_requires_completed_run(self, store):
        with pytest.raises(AnalyzerError, match="no completed run"):
            store.run_stats("run-missing")


class TestGc:
    def _campaign(self, store, i):
        report, _, _, _ = _report(name=f"unit-{i}")
        runs = [(f"run-{i}", f"unit-{i}")]
        _register(store, campaign_id=f"camp-{i}", seed=i, runs=runs)
        store.record_run(f"run-{i}", {}, report)
        store.set_campaign_status(f"camp-{i}", "done")

    def test_keeps_most_recent(self, store):
        for i in range(4):
            self._campaign(store, i)
        stats = store.gc(keep=2)
        assert stats == {"campaigns_deleted": 2, "runs_deleted": 2}
        kept = {c["campaign_id"] for c in store.list_campaigns()}
        assert kept == {"camp-2", "camp-3"}
        assert {r["run_id"] for r in store.list_runs()} == {"run-2", "run-3"}

    def test_shared_runs_survive(self, store):
        report, _, _, _ = _report()
        for campaign_id in ("camp-a", "camp-b"):
            runs = [("run-shared", "unit")]
            _register(store, campaign_id=campaign_id, seed=0, runs=runs)
            store.set_campaign_status(campaign_id, "done")
        store.record_run("run-shared", {}, report)
        stats = store.gc(keep=1)
        assert stats["campaigns_deleted"] == 1
        assert stats["runs_deleted"] == 0  # still referenced
        stats = store.gc(keep=0)
        assert stats == {"campaigns_deleted": 1, "runs_deleted": 1}

    def test_negative_keep_rejected(self, store):
        with pytest.raises(AnalyzerError, match="gc keep"):
            store.gc(keep=-1)

    def test_queued_campaigns_are_never_collected(self, store):
        """Retention must not delete accepted-but-unfinished work."""
        self._campaign(store, 0)  # done, older
        _register(store, campaign_id="camp-q", seed=9, runs=[("run-q", "u")])
        store.set_campaign_status("camp-q", "running")
        stats = store.gc(keep=0)
        assert stats["campaigns_deleted"] == 1  # only the finished one
        kept = {c["campaign_id"] for c in store.list_campaigns()}
        assert kept == {"camp-q"}
