"""Content-addressing: stable, permutation-proof, environment-blind."""

from repro.store.ids import campaign_id_for, run_id_for


def _payload(**overrides):
    payload = {
        "name": "job",
        "problem": {
            "factory": "repro.parallel._testing:band_problem",
            "kwargs": {"dim": 2},
        },
        "config": {"explainer_samples": 15},
        "seed": 7,
    }
    payload.update(overrides)
    return payload


class TestRunIds:
    def test_stable_prefix_and_shape(self):
        run_id = run_id_for(_payload())
        assert run_id.startswith("run-")
        assert len(run_id) == len("run-") + 16

    def test_key_order_does_not_matter(self):
        a = _payload()
        b = {k: a[k] for k in reversed(list(a))}
        assert run_id_for(a) == run_id_for(b)

    def test_semantic_fields_matter(self):
        base = run_id_for(_payload())
        assert run_id_for(_payload(seed=8)) != base
        assert run_id_for(_payload(config={"explainer_samples": 16})) != base
        other_problem = _payload(
            problem={
                "factory": "repro.parallel._testing:band_problem",
                "kwargs": {"dim": 3},
            }
        )
        assert run_id_for(other_problem) != base

    def test_environmental_config_is_ignored(self):
        """Store location/retention cannot change a unit's output, so
        they must not orphan completed runs."""
        base = run_id_for(_payload())
        env = _payload(
            config={
                "explainer_samples": 15,
                "store_path": "/somewhere/else",
                "store_retention": 5,
                "executor": "process",
                "workers": 4,
            }
        )
        assert run_id_for(env) == base

    def test_cache_cap_is_semantic(self):
        """LRU eviction changes the report's hit/miss counters, so a
        different cache cap must be a different run."""
        base = run_id_for(_payload())
        capped = _payload(
            config={"explainer_samples": 15, "cache_max_entries": 2}
        )
        assert run_id_for(capped) != base


class TestCampaignIds:
    def test_addresses_planned_units(self):
        units = [_payload(), _payload(name="job2", seed=8)]
        a = campaign_id_for("camp", 3, units)
        assert a.startswith("camp-")
        assert campaign_id_for("camp", 3, list(units)) == a
        assert campaign_id_for("other", 3, units) != a
        assert campaign_id_for("camp", 4, units) != a
        assert campaign_id_for("camp", 3, units[:1]) != a
