"""GapSpill persistence + GapCache LRU/spill behavior."""

import numpy as np
import pytest

from repro.oracle.cache import GapCache
from repro.store import GapSpill, problem_cache_key
from repro.subspace.region import Box


BOX = Box((0.0, 0.0), (1.0, 1.0))


class TestGapSpill:
    def test_put_get_roundtrip(self, tmp_path):
        spill = GapSpill(tmp_path, "gap-abc")
        spill.put((1, 2), 3.5, 1.25, True)
        assert spill.get((1, 2)) == (3.5, 1.25, True)  # buffered
        spill.flush()
        assert spill.get((1, 2)) == (3.5, 1.25, True)  # from disk
        assert spill.get((9, 9)) is None
        spill.close()

    def test_survives_process_boundary(self, tmp_path):
        first = GapSpill(tmp_path, "gap-abc")
        first.put((1, 2), 3.5, 1.25, False)
        first.close()  # flushes
        second = GapSpill(tmp_path, "gap-abc")
        assert second.get((1, 2)) == (3.5, 1.25, False)
        assert len(second) == 1
        second.close()

    def test_namespaces_are_isolated(self, tmp_path):
        a = GapSpill(tmp_path, "gap-a")
        a.put((1,), 1.0, 0.0, True)
        a.close()
        b = GapSpill(tmp_path, "gap-b")
        assert b.get((1,)) is None
        b.close()

    def test_auto_flush_at_buffer_size(self, tmp_path):
        spill = GapSpill(tmp_path, "gap-abc", buffer_size=3)
        for i in range(3):
            spill.put((i,), float(i), 0.0, True)
        assert spill._buffer == {}  # hit the cap, flushed itself
        spill.close()


class TestProblemCacheKey:
    def test_spec_and_resolution_identify_namespace(self):
        from repro.parallel._testing import band_problem

        a = band_problem(dim=2)
        b = band_problem(dim=2)
        c = band_problem(dim=3)
        assert problem_cache_key(a, 1e-9) == problem_cache_key(b, 1e-9)
        assert problem_cache_key(a, 1e-9) != problem_cache_key(c, 1e-9)
        assert problem_cache_key(a, 1e-9) != problem_cache_key(a, 1e-6)

    def test_specless_problem_has_no_key(self):
        from repro.parallel._testing import band_problem

        problem = band_problem(dim=2)
        problem.spec = None  # a bare name is not a sound identity
        assert problem_cache_key(problem, 1e-9) is None


class TestPreload:
    def test_preload_bulk_loads_namespace(self, tmp_path):
        writer = GapSpill(tmp_path, "gap-abc")
        for i in range(5):
            writer.put((i, i), float(i), 0.0, True)
        writer.close()

        cache = GapCache(BOX)
        reader = GapSpill(tmp_path, "gap-abc")
        assert reader.preload(cache) == 5
        reader.close()
        for i in range(5):
            assert cache.get((i, i)) == (float(i), 0.0, True)
        assert cache.misses == 0

    def test_fresh_namespace_skips_disk_lookups(self, tmp_path):
        spill = GapSpill(tmp_path, "gap-fresh")
        assert spill.get((1, 2)) is None
        assert spill._known_empty is True  # subsequent gets skip SELECTs
        spill.put((1, 2), 1.0, 0.0, True)
        spill.flush()
        assert spill.get((3, 4)) is None  # consults disk again
        assert spill.get((1, 2)) == (1.0, 0.0, True)
        spill.close()


class TestGapCacheLru:
    def test_eviction_caps_size(self):
        cache = GapCache(BOX, max_entries=3)
        for i in range(5):
            cache.put((i,), float(i), 0.0, True)
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.get((0,)) is None  # oldest two are gone
        assert cache.get((1,)) is None
        assert cache.get((4,)) == (4.0, 0.0, True)

    def test_get_refreshes_recency(self):
        cache = GapCache(BOX, max_entries=2)
        cache.put((0,), 0.0, 0.0, True)
        cache.put((1,), 1.0, 0.0, True)
        assert cache.get((0,)) is not None  # (0,) is now most recent
        cache.put((2,), 2.0, 0.0, True)  # evicts (1,)
        assert cache.get((1,)) is None
        assert cache.get((0,)) is not None

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            GapCache(BOX, max_entries=0)

    def test_entries_dump_and_load(self):
        cache = GapCache(BOX)
        cache.put((1, 2), 3.0, 1.0, True)
        cache.put((3, 4), 5.0, 2.0, False)
        other = GapCache(BOX)
        other.load_entries(cache.entries())
        assert other.get((1, 2)) == (3.0, 1.0, True)
        assert other.get((3, 4)) == (5.0, 2.0, False)

    def test_spill_second_level(self, tmp_path):
        spill = GapSpill(tmp_path, "gap-abc")
        cache = GapCache(BOX, max_entries=2, spill=spill)
        for i in range(4):
            cache.put((i,), float(i), 0.0, True)
        # (0,) and (1,) were evicted from memory but write-through kept
        # them on disk; a get promotes them back.
        assert cache.get((0,)) == (0.0, 0.0, True)
        assert cache.spill_hits == 1
        assert cache.hits == 1
        spill.close()

    def test_key_quantization_unchanged(self):
        cache = GapCache(BOX)
        x = np.array([0.5, 0.25])
        assert cache.key(x) == cache.key(x + 1e-12)
        assert cache.key(x) != cache.key(x + 1e-6)
