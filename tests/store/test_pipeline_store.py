"""store_path wiring: pipeline runs share oracle work through the store."""

from repro import XPlain, XPlainConfig
from repro.parallel._testing import band_problem
from repro.subspace.generator import GeneratorConfig


def _config(store_path=None, **overrides):
    return XPlainConfig(
        generator=GeneratorConfig(
            max_subspaces=1,
            tree_extra_samples=40,
            significance_pairs=12,
            seed=5,
        ),
        explainer_samples=15,
        generalizer_samples=0,
        seed=5,
        store_path=str(store_path) if store_path else None,
        **overrides,
    )


class TestPersistentGapCache:
    def test_specless_problem_gets_no_spill(self, tmp_path):
        from repro.analyzer.interface import AnalyzedProblem, GapSample
        from repro.subspace.region import Box
        import numpy as np

        # Two *different* spec-less problems sharing a name must never
        # serve each other cached values — so neither gets a spill.
        def evaluate(x):
            x = np.asarray(x, dtype=float)
            inside = 0.6 <= x[0] <= 0.9
            return GapSample(
                x=x,
                benchmark_value=1.0 + x[1] / 10.0 if inside else 0.0,
                heuristic_value=0.0,
            )

        problem = AnalyzedProblem(
            name="anon",
            input_names=["x0", "x1"],
            input_box=Box((0.0, 0.0), (1.0, 1.0)),
            evaluate=evaluate,
            heuristic_flows=lambda x: {("in", "out"): 0.0},
            benchmark_flows=lambda x: {
                ("in", "out"): evaluate(x).benchmark_value
            },
        )
        XPlain(problem, _config(tmp_path)).run()
        assert problem.oracle.cache.spill is None

    def test_spill_preserved_when_config_has_no_store(self, tmp_path):
        from repro.store import GapSpill

        problem = band_problem(dim=2)
        spill = GapSpill(tmp_path, "gap-user-attached")
        problem.configure_oracle(spill=spill)
        XPlain(problem, _config(None)).run()
        # configure_cache without an explicit spill must not detach the
        # one the caller attached at construction.
        assert problem.oracle.cache.spill is spill
        spill.close()

    def test_second_run_reuses_spilled_answers(self, tmp_path):
        first_problem = band_problem(dim=2)
        first = XPlain(first_problem, _config(tmp_path)).run()
        first_stats = first_problem.oracle.stats
        assert first_stats.cache_misses > 0

        # A brand-new problem object (fresh engine, fresh in-memory
        # cache — as in another process) answers everything from disk:
        # the spill preloads into memory at attach, so not a single
        # point is re-solved.
        second_problem = band_problem(dim=2)
        second = XPlain(second_problem, _config(tmp_path)).run()
        second_stats = second_problem.oracle.stats
        assert second_stats.cache_misses == 0
        assert second_stats.cache_hits == second_stats.points
        assert second.worst_gap == first.worst_gap
        assert second.num_subspaces == first.num_subspaces

    def test_store_does_not_change_results(self, tmp_path):
        with_store = XPlain(band_problem(dim=2), _config(tmp_path)).run()
        without = XPlain(band_problem(dim=2), _config(None)).run()
        assert with_store.worst_gap == without.worst_gap
        assert [s.subspace.region for s in with_store.explained] == [
            s.subspace.region for s in without.explained
        ]

    def test_spill_detached_after_run(self, tmp_path):
        problem = band_problem(dim=2)
        XPlain(problem, _config(tmp_path)).run()
        assert problem.oracle.cache.spill is None  # closed and detached

    def test_cache_max_entries_reaches_engine(self, tmp_path):
        problem = band_problem(dim=2)
        XPlain(problem, _config(tmp_path, cache_max_entries=50)).run()
        cache = problem.oracle.cache
        assert cache.max_entries == 50
        assert len(cache) <= 50
        assert cache.evictions > 0
