"""Tests for the region algebra (boxes, halfspaces, Fig. 5c form)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SubspaceError
from repro.subspace.region import Box, Halfspace, Region


class TestBox:
    def test_membership(self):
        box = Box((0.0, 0.0), (1.0, 2.0))
        assert box.contains(np.array([0.5, 1.5]))
        assert not box.contains(np.array([1.5, 0.5]))
        assert box.contains(np.array([0.0, 0.0]))  # boundary inclusive

    def test_contains_many(self):
        box = Box((0.0,), (1.0,))
        xs = np.array([[0.5], [2.0], [-1.0]])
        assert list(box.contains_many(xs)) == [True, False, False]

    def test_empty_side_rejected(self):
        with pytest.raises(SubspaceError):
            Box((1.0,), (0.0,))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(SubspaceError):
            Box((0.0,), (1.0, 2.0))

    def test_around_clips_to_bounds(self):
        bounds = Box((0.0, 0.0), (1.0, 1.0))
        box = Box.around(np.array([0.05, 0.95]), 0.2, bounds=bounds)
        assert box.lo[0] == 0.0
        assert box.hi[1] == 1.0

    def test_expanded_direction(self):
        box = Box((0.4,), (0.6,))
        grown_up = box.expanded(0, +1, 0.1)
        assert grown_up.hi[0] == pytest.approx(0.7)
        grown_down = box.expanded(0, -1, 0.1)
        assert grown_down.lo[0] == pytest.approx(0.3)

    def test_expanded_respects_bounds(self):
        bounds = Box((0.0,), (1.0,))
        box = Box((0.9,), (1.0,))
        grown = box.expanded(0, +1, 0.5, bounds=bounds)
        assert grown.hi[0] == 1.0

    def test_intersect(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((0.5, 0.5), (2.0, 2.0))
        both = a.intersect(b)
        assert both == Box((0.5, 0.5), (1.0, 1.0))
        disjoint = Box((2.0, 2.0), (3.0, 3.0))
        assert a.intersect(disjoint) is None
        assert not a.overlaps(disjoint)

    def test_volume_and_widths(self):
        box = Box((0.0, 0.0), (2.0, 3.0))
        assert box.volume() == pytest.approx(6.0)
        assert list(box.widths) == [2.0, 3.0]
        assert list(box.center) == [1.0, 1.5]

    def test_sampling_stays_inside(self):
        box = Box((0.2, 0.4), (0.3, 0.9))
        rng = np.random.default_rng(0)
        samples = box.sample(rng, 100)
        assert samples.shape == (100, 2)
        assert np.all(box.contains_many(samples))

    def test_clip_point(self):
        box = Box((0.0,), (1.0,))
        assert box.clip_point(np.array([2.0]))[0] == 1.0

    def test_describe_uses_names(self):
        box = Box((0.0,), (1.0,))
        assert "demand" in box.describe(["demand"])


class TestHalfspace:
    def test_axis_below(self):
        h = Halfspace.axis(1, 3, threshold=0.5, below=True)
        assert h.contains(np.array([9.0, 0.4, 9.0]))
        assert not h.contains(np.array([0.0, 0.6, 0.0]))

    def test_axis_above(self):
        h = Halfspace.axis(0, 2, threshold=0.5, below=False)
        assert h.contains(np.array([0.6, 0.0]))
        assert not h.contains(np.array([0.4, 0.0]))

    def test_general_coefficients(self):
        # x + y <= 1.5 (the paper's sum predicate, negated direction)
        h = Halfspace((1.0, 1.0), 1.5)
        assert h.contains(np.array([0.7, 0.7]))
        assert not h.contains(np.array([0.9, 0.7]))

    def test_contains_many(self):
        h = Halfspace((1.0, 0.0), 0.5)
        xs = np.array([[0.4, 9.0], [0.6, 9.0]])
        assert list(h.contains_many(xs)) == [True, False]

    def test_describe(self):
        h = Halfspace((1.0, -2.0), 0.25)
        text = h.describe(["a", "b"])
        assert "+1*a" in text and "-2*b" in text and "0.25" in text


class TestRegion:
    def region(self):
        return Region(
            box=Box((0.0, 0.0), (1.0, 1.0)),
            halfspaces=[Halfspace((1.0, 1.0), 1.2)],
        )

    def test_membership_combines(self):
        region = self.region()
        assert region.contains(np.array([0.5, 0.5]))
        assert not region.contains(np.array([0.9, 0.9]))  # fails halfspace
        assert not region.contains(np.array([1.5, 0.0]))  # fails box

    def test_sampling_respects_halfspaces(self):
        region = self.region()
        rng = np.random.default_rng(1)
        samples = region.sample(rng, 64)
        assert np.all(region.contains_many(samples))

    def test_sampling_impossible_region_raises(self):
        region = Region(
            box=Box((0.0,), (1.0,)),
            halfspaces=[Halfspace((1.0,), -5.0)],  # x <= -5: empty
        )
        rng = np.random.default_rng(0)
        with pytest.raises(SubspaceError):
            region.sample(rng, 8, max_tries=5)

    def test_matrix_form_matches_fig5c(self):
        region = self.region()
        a, c, t, v = region.matrix_form()
        assert a.shape == (4, 2)  # [I; -I]
        assert np.allclose(a[:2], np.eye(2))
        assert np.allclose(a[2:], -np.eye(2))
        assert list(c) == [1.0, 1.0, 0.0, 0.0]
        assert t.shape == (1, 2)
        assert v[0] == pytest.approx(1.2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=2
        )
    )
    def test_membership_consistent_with_matrix_form(self, point):
        region = self.region()
        x = np.array(point)
        a, c, t, v = region.matrix_form()
        algebraic = bool(np.all(a @ x <= c + 1e-9) and np.all(t @ x <= v + 1e-9))
        assert algebraic == region.contains(x)

    def test_describe(self):
        text = self.region().describe(["u", "w"])
        assert "box:" in text and "and:" in text
