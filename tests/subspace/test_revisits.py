"""Tests for the §5.2 revisit budget on insignificant areas."""

import numpy as np

from repro.analyzer import AnalyzedProblem, GapSample
from repro.subspace import (
    AdversarialSubspaceGenerator,
    Box,
    GeneratorConfig,
)


class CountingAnalyzer:
    """Deterministic fake analyzer: always returns the same point."""

    def __init__(self, point, gap):
        self.point = np.asarray(point, dtype=float)
        self.gap = gap
        self.calls = 0
        self.excluded_seen: list[int] = []

    def find_adversarial(self, excluded=None, min_gap=0.0):
        self.calls += 1
        self.excluded_seen.append(len(excluded or []))
        if any(box.contains(self.point) for box in (excluded or [])):
            return None
        if self.gap <= min_gap:
            return None
        from repro.analyzer.interface import AdversarialExample

        return AdversarialExample(
            x=self.point.copy(),
            predicted_gap=self.gap,
            validated_gap=self.gap,
            analyzer="fake",
        )


def isolated_spike_problem():
    """Gap 1 only at one exact point (measure zero).

    Random sampling never observes a positive gap, so every candidate
    region deterministically fails the significance test — the setting the
    revisit budget exists for.
    """

    def evaluate(x):
        gap = 1.0 if np.array_equal(x, np.array([0.5, 0.5])) else 0.0
        return GapSample(x=x, benchmark_value=gap, heuristic_value=0.0)

    return AnalyzedProblem(
        name="spike",
        input_names=["a", "b"],
        input_box=Box.from_arrays(np.zeros(2), np.ones(2)),
        evaluate=evaluate,
    )


class TestRevisitBudget:
    def _run(self, max_revisits):
        problem = isolated_spike_problem()
        analyzer = CountingAnalyzer([0.5, 0.5], gap=1.0)
        generator = AdversarialSubspaceGenerator(
            problem,
            analyzer,
            GeneratorConfig(
                max_subspaces=5,
                max_revisits=max_revisits,
                tree_extra_samples=40,
                significance_pairs=24,
                seed=0,
            ),
        )
        report = generator.run()
        return report, analyzer

    def test_no_revisits_excludes_immediately(self):
        report, analyzer = self._run(max_revisits=0)
        # First rejection excludes the area; the second analyzer call sees
        # the exclusion and returns None -> exactly 2 calls.
        assert len(report.rejected) == 1
        assert analyzer.calls == 2

    def test_revisits_allow_reexamination(self):
        report, analyzer = self._run(max_revisits=2)
        # The area is re-examined twice before being excluded: three
        # rejections, then exclusion, then the final None call.
        assert len(report.rejected) == 3
        assert analyzer.calls == 4

    def test_loop_always_terminates(self):
        # Even with a generous budget the loop is bounded by max_subspaces.
        report, analyzer = self._run(max_revisits=100)
        assert len(report.rejected) == 5
        assert analyzer.calls == 5
