"""Sampler edge cases: zero-volume boxes, empty regions, DKW extremes."""

import numpy as np
import pytest

from repro.exceptions import SubspaceError
from repro.parallel._testing import band_problem
from repro.subspace.region import Box, Halfspace, Region
from repro.subspace.sampler import (
    SampleSet,
    collect_outside,
    dkw_sample_size,
    sample_in_box,
    sample_in_boxes,
)


class TestZeroVolumeBoxes:
    def test_degenerate_box_is_legal(self):
        box = Box.from_arrays(np.array([0.5, 0.5]), np.array([0.5, 0.5]))
        assert box.volume() == 0.0
        assert box.contains(np.array([0.5, 0.5]))

    def test_sampling_a_point_box_returns_the_point(self):
        box = Box.from_arrays(np.array([0.3, 0.7]), np.array([0.3, 0.7]))
        points = box.sample(np.random.default_rng(0), 8)
        assert points.shape == (8, 2)
        assert np.allclose(points, [0.3, 0.7])

    def test_sample_in_box_evaluates_degenerate_boxes(self):
        problem = band_problem(dim=2, lo=0.6, hi=0.9)
        box = Box.from_arrays(np.array([0.7, 0.5]), np.array([0.7, 0.5]))
        samples = sample_in_box(
            problem, box, 5, 0.5, np.random.default_rng(0)
        )
        assert samples.size == 5
        assert samples.bad_density == 1.0  # x0=0.7 sits inside the band

    def test_partially_flat_box_samples_on_the_face(self):
        box = Box.from_arrays(np.array([0.0, 0.4]), np.array([1.0, 0.4]))
        points = box.sample(np.random.default_rng(0), 16)
        assert np.allclose(points[:, 1], 0.4)
        assert np.ptp(points[:, 0]) > 0

    def test_sample_in_boxes_mixes_degenerate_and_regular(self):
        problem = band_problem(dim=2)
        flat = Box.from_arrays(np.array([0.7, 0.2]), np.array([0.7, 0.2]))
        regular = Box.from_arrays(np.zeros(2), np.ones(2))
        sets = sample_in_boxes(
            problem, [flat, regular], 6, 0.5, np.random.default_rng(0)
        )
        assert [s.size for s in sets] == [6, 6]
        assert np.allclose(sets[0].points, [0.7, 0.2])

    def test_collect_outside_zero_volume_outer_raises(self):
        # Outer is a single point inside the inner region: nothing is
        # ever admissible, which must fail loudly, not loop forever.
        inner = Box.from_arrays(np.zeros(2), np.ones(2))
        outer = Box.from_arrays(np.array([0.5, 0.5]), np.array([0.5, 0.5]))
        with pytest.raises(SubspaceError, match="could not sample outside"):
            collect_outside(inner, outer, 4, np.random.default_rng(0))


class TestRestrictedToEmptyRegions:
    def _samples(self, n=20):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(n, 2))
        return SampleSet(points, points[:, 0], 0.5)

    def test_restricted_to_disjoint_box_is_empty(self):
        empty = self._samples().restricted_to(
            Box.from_arrays(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        )
        assert empty.size == 0
        assert empty.bad_count == 0
        assert empty.bad_density == 0.0
        assert empty.bad_points().shape[0] == 0

    def test_restricted_to_infeasible_region_is_empty(self):
        # Halfspaces exclude the whole box: x0 <= -1 never holds.
        region = Region(
            box=Box.from_arrays(np.zeros(2), np.ones(2)),
            halfspaces=[Halfspace((1.0, 0.0), -1.0)],
        )
        empty = self._samples().restricted_to(region)
        assert empty.size == 0

    def test_empty_set_restricts_to_empty(self):
        base = SampleSet(np.zeros((0, 2)), np.zeros(0), 0.5)
        still_empty = base.restricted_to(
            Box.from_arrays(np.zeros(2), np.ones(2))
        )
        assert still_empty.size == 0

    def test_empty_merge_identities(self):
        base = self._samples()
        empty = SampleSet(np.zeros((0, 2)), np.zeros(0), 0.5)
        assert base.merged_with(empty) is base
        assert empty.merged_with(base) is base

    def test_sampling_an_infeasible_region_raises(self):
        region = Region(
            box=Box.from_arrays(np.zeros(2), np.ones(2)),
            halfspaces=[Halfspace((1.0, 0.0), -1.0)],
        )
        with pytest.raises(SubspaceError, match="rejection sampling failed"):
            region.sample(np.random.default_rng(0), 4, max_tries=5)


class TestDkwExtremes:
    def test_moderate_values(self):
        # ln(2/0.05) / (2 * 0.1^2) = 184.44... -> 185
        assert dkw_sample_size(0.1, 0.05) == 185

    def test_tiny_epsilon_explodes_quadratically(self):
        n_coarse = dkw_sample_size(1e-2, 0.05)
        n_fine = dkw_sample_size(1e-3, 0.05)
        assert n_fine == pytest.approx(n_coarse * 100, rel=1e-3)
        assert n_fine > 1_000_000

    def test_tiny_delta_grows_only_logarithmically(self):
        n = dkw_sample_size(0.1, 1e-12)
        assert n == int(np.ceil(np.log(2e12) / 0.02))

    def test_near_one_epsilon_needs_at_least_one_sample(self):
        assert dkw_sample_size(0.999, 0.999) >= 1

    @pytest.mark.parametrize(
        "epsilon,delta",
        [(0.0, 0.5), (1.0, 0.5), (0.5, 0.0), (0.5, 1.0), (-0.1, 0.5), (0.5, -0.1)],
    )
    def test_out_of_range_rejected(self, epsilon, delta):
        with pytest.raises(SubspaceError, match="DKW needs"):
            dkw_sample_size(epsilon, delta)
