"""Tests for DKW sampling, slice expansion and the generator loop."""

import numpy as np
import pytest

from repro.analyzer import AnalyzedProblem, BlackBoxAnalyzer, GapSample
from repro.exceptions import SubspaceError
from repro.subspace import (
    AdversarialSubspaceGenerator,
    Box,
    ExpansionConfig,
    GeneratorConfig,
    SampleSet,
    dkw_sample_size,
    expand_around,
    sample_in_box,
    sample_in_shell,
)


def make_band_problem():
    """Gap = 1 on the band 0.6 <= x0 <= 0.9 (any x1), else 0.

    The adversarial subspace is a fat axis-aligned band, so slice expansion
    should grow along x1 fully and stop at the x0 edges.
    """

    def evaluate(x):
        gap = 1.0 if 0.6 <= x[0] <= 0.9 else 0.0
        return GapSample(x=x, benchmark_value=gap, heuristic_value=0.0)

    return AnalyzedProblem(
        name="band",
        input_names=["x0", "x1"],
        input_box=Box.from_arrays(np.zeros(2), np.ones(2)),
        evaluate=evaluate,
    )


class TestDkw:
    def test_formula(self):
        # n >= ln(2/delta) / (2 eps^2); eps=0.1, delta=0.05 -> 185
        assert dkw_sample_size(0.1, 0.05) == 185

    def test_tighter_needs_more(self):
        assert dkw_sample_size(0.05, 0.05) > dkw_sample_size(0.1, 0.05)

    def test_invalid_args(self):
        with pytest.raises(SubspaceError):
            dkw_sample_size(0.0, 0.05)
        with pytest.raises(SubspaceError):
            dkw_sample_size(0.1, 1.5)


class TestSampleSet:
    def test_bad_density(self):
        samples = SampleSet(
            points=np.array([[0.1], [0.2], [0.3], [0.4]]),
            gaps=np.array([0.0, 1.0, 1.0, 0.0]),
            threshold=0.5,
        )
        assert samples.bad_density == pytest.approx(0.5)
        assert samples.bad_count == 2
        assert samples.bad_points().shape == (2, 1)

    def test_merge(self):
        a = SampleSet(np.array([[0.0]]), np.array([1.0]), 0.5)
        b = SampleSet(np.array([[1.0]]), np.array([0.0]), 0.5)
        merged = a.merged_with(b)
        assert merged.size == 2

    def test_restrict(self):
        samples = SampleSet(
            np.array([[0.1], [0.9]]), np.array([1.0, 0.0]), 0.5
        )
        inside = samples.restricted_to(Box((0.0,), (0.5,)))
        assert inside.size == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(SubspaceError):
            SampleSet(np.zeros((2, 1)), np.zeros(3), 0.5)


class TestShellSampling:
    def test_shell_excludes_inner(self):
        problem = make_band_problem()
        rng = np.random.default_rng(0)
        inner = Box((0.4, 0.4), (0.6, 0.6))
        outer = Box((0.2, 0.2), (0.8, 0.8))
        samples = sample_in_shell(problem, inner, outer, 50, 0.5, rng)
        assert samples.size == 50
        assert not np.any(inner.contains_many(samples.points))
        assert np.all(outer.contains_many(samples.points))

    def test_impossible_shell_raises(self):
        problem = make_band_problem()
        rng = np.random.default_rng(0)
        box = Box((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(SubspaceError):
            sample_in_shell(problem, box, box, 10, 0.5, rng, max_tries=3)


class TestSliceExpansion:
    def test_expands_inside_band(self):
        problem = make_band_problem()
        rng = np.random.default_rng(0)
        result = expand_around(
            problem,
            np.array([0.75, 0.5]),
            threshold=0.5,
            rng=rng,
            config=ExpansionConfig(
                initial_halfwidth_fraction=0.05,
                step_fraction=0.1,
                samples_per_slice=30,
                density_threshold=0.5,
            ),
        )
        box = result.box
        # x1 should expand to (nearly) the full [0, 1] range.
        assert box.hi[1] - box.lo[1] > 0.7
        # x0 must not escape the 0.6..0.9 band by much.
        assert box.lo[0] > 0.45
        assert box.hi[0] < 1.0
        assert result.expansions_accepted > 0
        assert result.samples.size > 100

    def test_stops_everywhere_on_isolated_point(self):
        # Gap positive only at (essentially) a point: no direction expands.
        def evaluate(x):
            gap = 1.0 if np.linalg.norm(x - 0.5) < 0.01 else 0.0
            return GapSample(x=x, benchmark_value=gap, heuristic_value=0.0)

        problem = AnalyzedProblem(
            name="point",
            input_names=["a", "b"],
            input_box=Box.from_arrays(np.zeros(2), np.ones(2)),
            evaluate=evaluate,
        )
        rng = np.random.default_rng(1)
        result = expand_around(
            problem,
            np.array([0.5, 0.5]),
            threshold=0.5,
            rng=rng,
            config=ExpansionConfig(samples_per_slice=12),
        )
        assert result.expansions_accepted == 0

    def test_trace_records_decisions(self):
        problem = make_band_problem()
        rng = np.random.default_rng(2)
        result = expand_around(
            problem,
            np.array([0.75, 0.5]),
            threshold=0.5,
            rng=rng,
            config=ExpansionConfig(samples_per_slice=15, max_expansions=6),
        )
        assert result.trace
        assert any(t.accepted for t in result.trace)
        for t in result.trace:
            assert 0.0 <= t.density <= 1.0


class TestGeneratorLoop:
    def test_finds_band_subspace(self):
        problem = make_band_problem()
        analyzer = BlackBoxAnalyzer(
            problem, strategy="random", budget=150, seed=4
        )
        generator = AdversarialSubspaceGenerator(
            problem,
            analyzer,
            GeneratorConfig(
                max_subspaces=2,
                tree_extra_samples=150,
                significance_pairs=30,
                seed=4,
            ),
        )
        report = generator.run()
        assert len(report.subspaces) >= 1
        best = report.subspaces[0]
        assert best.significant
        # The region lies inside the band on x0.
        center = best.region.box.center
        assert 0.55 <= center[0] <= 0.95

    def test_exclusion_terminates_loop(self):
        problem = make_band_problem()
        analyzer = BlackBoxAnalyzer(
            problem, strategy="random", budget=120, seed=5
        )
        generator = AdversarialSubspaceGenerator(
            problem,
            analyzer,
            GeneratorConfig(
                max_subspaces=6,
                tree_extra_samples=100,
                significance_pairs=24,
                seed=5,
            ),
        )
        report = generator.run()
        # The loop must stop on its own (analyzer returns None eventually)
        # well before max_subspaces purely covers the space.
        assert report.analyzer_calls <= 7
        assert report.threshold == pytest.approx(0.5)

    def test_union_membership(self):
        problem = make_band_problem()
        analyzer = BlackBoxAnalyzer(
            problem, strategy="random", budget=150, seed=6
        )
        report = AdversarialSubspaceGenerator(
            problem,
            analyzer,
            GeneratorConfig(
                max_subspaces=2,
                tree_extra_samples=120,
                significance_pairs=24,
                seed=6,
            ),
        ).run()
        if report.subspaces:
            inside_point = report.subspaces[0].region.box.center
            assert report.union_contains(inside_point)
            assert not report.union_contains(np.array([0.05, 0.05]))
