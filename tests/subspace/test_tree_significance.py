"""Tests for the regression tree (Fig. 5b) and the significance checker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.exceptions import SubspaceError
from repro.subspace.significance import wilcoxon_signed_rank
from repro.subspace.tree import (
    RegressionTree,
    path_to_halfspaces,
)


class TestRegressionTree:
    def test_single_split_recovered(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 1))
        y = np.where(x[:, 0] > 0.6, 5.0, 1.0)
        tree = RegressionTree(max_depth=2, min_samples_leaf=10).fit(x, y)
        assert tree.num_leaves() >= 2
        assert tree.predict_one(np.array([0.9])) == pytest.approx(5.0, abs=0.2)
        assert tree.predict_one(np.array([0.1])) == pytest.approx(1.0, abs=0.2)
        # The split threshold sits near 0.6.
        path = tree.path_to(np.array([0.9]))
        assert path[0].threshold == pytest.approx(0.6, abs=0.05)

    def test_two_feature_interaction(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(600, 2))
        y = np.where((x[:, 0] > 0.5) & (x[:, 1] > 0.5), 3.0, 0.0)
        tree = RegressionTree(max_depth=3, min_samples_leaf=15).fit(x, y)
        corner = np.array([0.9, 0.9])
        assert tree.predict_one(corner) > 2.0
        path = tree.path_to(corner)
        assert len(path) >= 2

    def test_constant_target_single_leaf(self):
        x = np.linspace(0, 1, 50).reshape(-1, 1)
        y = np.full(50, 2.5)
        tree = RegressionTree().fit(x, y)
        assert tree.num_leaves() == 1
        assert tree.depth() == 0
        assert tree.predict_one(np.array([0.3])) == 2.5

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(30, 1))
        y = rng.uniform(0, 1, size=30)
        tree = RegressionTree(max_depth=10, min_samples_leaf=16).fit(x, y)
        # 30 samples cannot split into two leaves of >= 16.
        assert tree.num_leaves() == 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, size=(500, 1))
        y = x[:, 0] ** 2
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(x, y)
        assert tree.depth() <= 2

    def test_unfitted_raises(self):
        with pytest.raises(SubspaceError):
            RegressionTree().predict_one(np.zeros(1))

    def test_empty_fit_rejected(self):
        with pytest.raises(SubspaceError):
            RegressionTree().fit(np.zeros((0, 1)), np.zeros(0))

    def test_path_predicates_hold_for_their_point(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, size=(400, 3))
        y = x[:, 0] + np.where(x[:, 2] > 0.7, 2.0, 0.0)
        tree = RegressionTree(max_depth=4, min_samples_leaf=10).fit(x, y)
        for point in x[:20]:
            for predicate in tree.path_to(point):
                assert predicate.holds(point)

    def test_path_to_halfspaces_membership(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, size=(400, 2))
        y = np.where(x[:, 1] > 0.5, 1.0, 0.0)
        tree = RegressionTree(max_depth=2, min_samples_leaf=10).fit(x, y)
        point = np.array([0.5, 0.9])
        halfspaces = path_to_halfspaces(tree.path_to(point), 2)
        assert all(h.contains(point) for h in halfspaces)

    def test_render_mentions_features(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 1, size=(200, 2))
        y = np.where(x[:, 0] > 0.5, 1.0, 0.0)
        tree = RegressionTree(
            max_depth=2, min_samples_leaf=10, feature_names=["alpha", "beta"]
        ).fit(x, y)
        assert "alpha" in tree.render()

    def test_predictions_piecewise_constant_in_leaf(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 1, size=(300, 1))
        y = np.where(x[:, 0] > 0.5, 4.0, 1.0)
        tree = RegressionTree(max_depth=1, min_samples_leaf=20).fit(x, y)
        # Two points in the same leaf get the same prediction.
        assert tree.predict_one(np.array([0.8])) == tree.predict_one(
            np.array([0.9])
        )


class TestWilcoxon:
    def test_clear_separation_significant(self):
        rng = np.random.default_rng(0)
        inside = rng.normal(2.0, 0.3, size=40)
        outside = rng.normal(0.5, 0.3, size=40)
        result = wilcoxon_signed_rank(inside, outside)
        assert result.significant
        assert result.p_value < 1e-5

    def test_identical_pools_not_significant(self):
        values = np.linspace(0, 1, 30)
        result = wilcoxon_signed_rank(values, values)
        assert not result.significant
        assert result.p_value == 1.0

    def test_wrong_direction_not_significant(self):
        rng = np.random.default_rng(1)
        inside = rng.normal(0.2, 0.1, size=30)
        outside = rng.normal(1.0, 0.1, size=30)
        result = wilcoxon_signed_rank(inside, outside)
        assert not result.significant

    def test_size_mismatch_rejected(self):
        with pytest.raises(SubspaceError):
            wilcoxon_signed_rank(np.zeros(10), np.zeros(9))

    def test_too_few_pairs_rejected(self):
        with pytest.raises(SubspaceError):
            wilcoxon_signed_rank(np.zeros(3), np.ones(3))

    def test_builtin_matches_scipy(self):
        rng = np.random.default_rng(2)
        for _ in range(6):
            inside = rng.normal(1.0, 0.5, size=35)
            outside = rng.normal(0.7, 0.5, size=35)
            ours = wilcoxon_signed_rank(inside, outside, method="builtin")
            scipys = wilcoxon_signed_rank(inside, outside, method="scipy")
            # Normal approximation vs exact: agree within a tolerance.
            assert ours.p_value == pytest.approx(scipys.p_value, abs=0.02)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1, max_value=1),
            min_size=12,
            max_size=12,
        )
    )
    def test_builtin_p_value_in_unit_interval(self, shifts):
        inside = np.linspace(0, 1, 12) + np.array(shifts)
        outside = np.linspace(0, 1, 12)
        result = wilcoxon_signed_rank(inside, outside, method="builtin")
        assert 0.0 <= result.p_value <= 1.0

    def test_describe_mentions_verdict(self):
        rng = np.random.default_rng(3)
        inside = rng.normal(2.0, 0.1, size=20)
        outside = rng.normal(0.0, 0.1, size=20)
        text = wilcoxon_signed_rank(inside, outside).describe()
        assert "significant" in text
