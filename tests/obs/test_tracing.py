"""Tracer/span semantics, the runtime switchboard, and report folding."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    fold_campaign_report,
    fold_unit_report,
    install,
    registry,
    span,
    tracing_enabled,
    uninstall,
)
from repro.obs.runtime import OBS_ENV
from repro.obs.tracing import _NOOP


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    uninstall()
    deactivate()


class TestSpans:
    def test_noop_without_active_tracer(self):
        assert current_tracer() is None
        assert span("anything") is _NOOP  # shared instance: no allocation

    def test_spans_record_nesting_and_attrs(self):
        tracer = activate(Tracer())
        with span("outer", kind="campaign"):
            with span("inner") as active:
                active.annotate(points=7)
        deactivate()
        records = tracer.to_list()
        assert [r["name"] for r in records] == ["outer", "inner"]
        assert records[1]["parent"] == 0
        assert "parent" not in records[0]
        assert records[0]["attrs"] == {"kind": "campaign"}
        assert records[1]["attrs"] == {"points": 7}
        assert records[1]["duration"] <= records[0]["duration"]

    def test_exception_marks_span_and_propagates(self):
        tracer = activate(Tracer())
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        deactivate()
        assert tracer.to_list()[0]["attrs"]["error"] == "RuntimeError"

    def test_span_cap_counts_drops(self):
        tracer = activate(Tracer(max_spans=2))
        for _ in range(5):
            with span("s"):
                pass
        deactivate()
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert tracer.summary() == {"spans": 2, "dropped": 3}

    def test_dropped_spans_keep_parent_stack_sane(self):
        tracer = activate(Tracer(max_spans=1))
        with span("kept"):
            with span("dropped"):
                pass
        with span("also_dropped"):
            pass
        deactivate()
        assert [r["name"] for r in tracer.to_list()] == ["kept"]


class TestRuntime:
    def test_install_registry_roundtrip(self):
        assert registry() is None
        reg = install()
        assert registry() is reg
        assert isinstance(reg, MetricsRegistry)
        uninstall()
        assert registry() is None

    def test_tracing_enabled_via_registry_or_env(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV, raising=False)
        assert not tracing_enabled()
        install()
        assert tracing_enabled()
        uninstall()
        monkeypatch.setenv(OBS_ENV, "1")
        assert tracing_enabled()


def _unit_report(**overrides):
    report = {
        "name": "u0",
        "problem": {"factory": "repro.domains.te:te_problem", "kwargs": {}},
        "search": {"policy": "bandit", "oracle_calls": 40},
        "num_subspaces": 2,
        "oracle": {
            "points": 100,
            "cache_hits": 30,
            "cache_misses": 70,
            "native_batched": 70,
            "scalar_fallback": 0,
            "warm_solves": 60,
            "cold_solves": 10,
            "lp_iterations": 420,
        },
        "timing": {"runtime_seconds": 1.25},
    }
    report.update(overrides)
    return report


class TestFold:
    def test_unit_fold_covers_oracle_solver_search(self):
        reg = MetricsRegistry()
        fold_unit_report(reg, _unit_report())
        snap = reg.snapshot()
        te = '{"domain":"te"}'
        assert snap["xplain_oracle_points_total"]["samples"][te] == 100
        assert snap["xplain_oracle_cache_hits_total"]["samples"][te] == 30
        assert snap["xplain_lp_warm_solves_total"]["samples"][te] == 60
        assert snap["xplain_lp_iterations_total"]["samples"][te] == 420
        assert snap["xplain_search_oracle_calls_total"]["samples"][
            '{"domain":"te","policy":"bandit"}'
        ] == 40
        assert snap["xplain_subspaces_found_total"]["samples"][te] == 2
        assert snap["xplain_units_completed_total"]["samples"][
            '{"domain":"te","resumed":"false"}'
        ] == 1
        assert snap["xplain_unit_runtime_seconds"]["samples"][""]["count"] == 1

    def test_resumed_units_fold_no_work_counters(self):
        reg = MetricsRegistry()
        fold_unit_report(
            reg, _unit_report(timing={"runtime_seconds": 1.0, "resumed": True})
        )
        snap = reg.snapshot()
        assert snap["xplain_units_completed_total"]["samples"][
            '{"domain":"te","resumed":"true"}'
        ] == 1
        # the oracle work was folded by whoever computed it originally
        assert "xplain_oracle_points_total" not in snap
        assert "xplain_unit_runtime_seconds" not in snap

    def test_non_registry_factory_labels_custom(self):
        reg = MetricsRegistry()
        fold_unit_report(
            reg,
            _unit_report(problem={"factory": "mypkg:thing", "kwargs": {}}),
        )
        assert '{"domain":"custom","resumed":"false"}' in (
            reg.snapshot()["xplain_units_completed_total"]["samples"]
        )

    def test_campaign_fold(self):
        reg = MetricsRegistry()
        fold_campaign_report(reg, {"worst_gap": 0.75})
        snap = reg.snapshot()
        assert snap["xplain_campaigns_completed_total"]["samples"][""] == 1
        assert snap["xplain_last_campaign_worst_gap"]["samples"][""] == 0.75
