"""MetricsRegistry: instruments, snapshot/merge, exposition, fleet files."""

import math
import threading

import pytest

from promtext import parse, sample
from repro.obs import (
    MetricsRegistry,
    merged_snapshot,
    render_prometheus,
    write_worker_snapshot,
)


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter_inc("x_total", 1, help="h", domain="te")
        reg.counter_inc("x_total", 2, domain="te")
        reg.counter_inc("x_total", 5, domain="binpack")
        snap = reg.snapshot()["x_total"]
        assert snap["kind"] == "counter"
        assert snap["samples"]['{"domain":"te"}'] == 3
        assert snap["samples"]['{"domain":"binpack"}'] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter_inc("x_total", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 1.5)
        reg.gauge_set("g", 2.5)
        assert reg.snapshot()["g"]["samples"][""] == 2.5

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter_inc("x_total", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge_set("x_total", 1)

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter_inc("bad name", 1)
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter_inc("ok_total", 1, **{"bad-label": "v"})

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        for value in (0.003, 0.03, 0.3, 3.0, 30.0):
            reg.histogram_observe("h_seconds", value, buckets=(0.01, 0.1, 1.0))
        state = reg.snapshot()["h_seconds"]["samples"][""]
        # per-bin storage: (<=0.01, <=0.1, <=1.0); 3.0 and 30.0 overflow
        assert state["buckets"] == [1, 1, 1]
        assert state["count"] == 5
        assert state["sum"] == pytest.approx(33.333)

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()

        def spin():
            for _ in range(500):
                reg.counter_inc("spins_total", 1)
                reg.histogram_observe("spin_seconds", 0.01)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["spins_total"]["samples"][""] == 4000
        assert snap["spin_seconds"]["samples"][""]["count"] == 4000


class TestSnapshotMerge:
    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 3)):
            reg.counter_inc("c_total", n)
            reg.histogram_observe("h", 0.05, buckets=(0.1, 1.0))
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["c_total"]["samples"][""] == 5
        assert snap["h"]["samples"][""]["count"] == 2

    def test_merge_gauge_takes_incoming(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge_set("g", 1)
        b.gauge_set("g", 7)
        a.merge(b.snapshot())
        assert a.snapshot()["g"]["samples"][""] == 7

    def test_merge_rejects_bucket_layout_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram_observe("h", 0.05, buckets=(0.1, 1.0))
        b.histogram_observe("h", 0.05, buckets=(0.1,))
        with pytest.raises(ValueError, match="bucket layout"):
            a.merge(b.snapshot())

    def test_snapshot_is_deep_copied(self):
        reg = MetricsRegistry()
        reg.histogram_observe("h", 0.05)
        snap = reg.snapshot()
        snap["h"]["samples"][""]["count"] = 999
        assert reg.snapshot()["h"]["samples"][""]["count"] == 1


class TestExposition:
    def test_render_is_parseable_and_exact(self):
        reg = MetricsRegistry()
        reg.counter_inc("jobs_total", 3, help="jobs", status="ok")
        reg.gauge_set("depth", 2.5, help="queue depth")
        reg.histogram_observe("lat_seconds", 0.02, buckets=(0.01, 0.1))
        reg.histogram_observe("lat_seconds", 0.5, buckets=(0.01, 0.1))
        families = parse(reg.render())
        assert families["jobs_total"]["type"] == "counter"
        assert sample(families, "jobs_total", status="ok") == 3
        assert sample(families, "depth") == 2.5
        # cumulative le semantics: 0 at 0.01, 1 at 0.1, 2 at +Inf
        assert sample(families, "lat_seconds_bucket", le="0.01") == 0
        assert sample(families, "lat_seconds_bucket", le="0.1") == 1
        assert sample(families, "lat_seconds_bucket", le="+Inf") == 2
        assert sample(families, "lat_seconds_count") == 2
        assert sample(families, "lat_seconds_sum") == pytest.approx(0.52)

    def test_label_values_escape(self):
        reg = MetricsRegistry()
        reg.counter_inc("c_total", 1, path='say "hi"\\now')
        text = reg.render()
        assert '\\"hi\\"' in text and "\\\\" in text
        families = parse(text)
        assert families["c_total"]["samples"] != {}

    def test_render_is_pure(self):
        reg = MetricsRegistry()
        reg.counter_inc("c_total", 2)
        assert reg.render() == reg.render()

    def test_infinity_formatting(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", math.inf)
        assert "g +Inf" in reg.render()


class TestFleetFiles:
    def test_worker_snapshots_merge_without_double_count(self, tmp_path):
        base = MetricsRegistry()
        base.counter_inc("c_total", 1)
        worker = MetricsRegistry()
        worker.counter_inc("c_total", 10, worker="w0")
        write_worker_snapshot(tmp_path, "w0", worker)
        # cumulative spill: the worker rewrites its whole life each time
        worker.counter_inc("c_total", 5, worker="w0")
        write_worker_snapshot(tmp_path, "w0", worker)

        merged = merged_snapshot(base, tmp_path)
        assert merged["c_total"]["samples"][""] == 1
        assert merged["c_total"]["samples"]['{"worker":"w0"}'] == 15
        # scrape-time merge never mutates the base registry
        assert base.snapshot()["c_total"]["samples"][""] == 1

    def test_torn_files_are_skipped(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        base = MetricsRegistry()
        base.counter_inc("c_total", 2)
        merged = merged_snapshot(base, tmp_path)
        assert merged["c_total"]["samples"][""] == 2

    def test_missing_directory_is_fine(self, tmp_path):
        base = MetricsRegistry()
        base.counter_inc("c_total", 2)
        merged = merged_snapshot(base, tmp_path / "nope")
        assert merged["c_total"]["samples"][""] == 2
