"""A minimal Prometheus text-exposition (0.0.4) parser for tests.

Just enough of the format to *validate* what ``/metrics`` serves — not a
client library. ``parse()`` returns ``{family: {"type", "help",
"samples"}}`` where samples map ``(sample_name, (sorted label items))``
to a float, and raises ``ValueError`` on malformed lines, samples
without a ``# TYPE``, or histogram bucket series whose cumulative
counts decrease.
"""

from __future__ import annotations

import math
import re

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _family_of(sample_name: str, types: dict) -> str:
    """The family a sample line belongs to (histogram suffixes strip)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def parse(text: str) -> dict:
    """Parse exposition text; raise ``ValueError`` on format violations."""
    families: dict = {}
    types: dict = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": "", "samples": {}}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"unknown TYPE {kind!r} for {name!r}")
            entry = families.setdefault(
                name, {"type": None, "help": "", "samples": {}}
            )
            entry["type"] = kind
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (k, v.replace('\\"', '"').replace("\\\\", "\\"))
                for k, v in _LABEL_RE.findall(labels_text)
            )
        )
        family = _family_of(match.group("name"), types)
        if family not in families or families[family]["type"] is None:
            raise ValueError(f"sample {line!r} has no preceding # TYPE")
        families[family]["samples"][(match.group("name"), labels)] = (
            _parse_value(match.group("value"))
        )
    _check_histograms(families)
    return families


def _check_histograms(families: dict) -> None:
    """Cumulative bucket counts must be non-decreasing and end at +Inf."""
    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        series: dict = {}
        for (sample, labels), value in entry["samples"].items():
            if not sample.endswith("_bucket"):
                continue
            rest = tuple(kv for kv in labels if kv[0] != "le")
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"{name} bucket without le label")
            series.setdefault(rest, []).append((_parse_value(le), value))
        if not series:
            raise ValueError(f"histogram {name} has no bucket series")
        for rest, buckets in series.items():
            buckets.sort()
            if buckets[-1][0] != math.inf:
                raise ValueError(f"{name}{dict(rest)} is missing +Inf")
            counts = [count for _, count in buckets]
            if any(b < a for a, b in zip(counts, counts[1:])):
                raise ValueError(
                    f"{name}{dict(rest)} cumulative counts decrease: {counts}"
                )
            count_key = (f"{name}_count", rest)
            if entry["samples"].get(count_key) != counts[-1]:
                raise ValueError(
                    f"{name}{dict(rest)} +Inf bucket != _count sample"
                )


def sample(families: dict, name: str, **labels) -> float | None:
    """One sample's value, or None (labels must match exactly)."""
    family = _family_of(name, {
        k: v["type"] for k, v in families.items()
    })
    entry = families.get(family)
    if entry is None:
        return None
    return entry["samples"].get(
        (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
    )
