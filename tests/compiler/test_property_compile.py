"""Property tests: randomly generated DSL graphs compile soundly.

For random layered flow graphs (input sources -> routing layers -> sink):

* the built-in simplex and SciPy agree on the compiled model's optimum;
* rewrites + presolve never change the optimum;
* flow conservation holds at every SPLIT node of the solution;
* all flows respect edge capacities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_graph, solve_graph
from repro.dsl import FlowGraph, NodeKind, InputSpec
from repro.solver import SolveStatus


@st.composite
def layered_graph(draw):
    """A random feasible layered flow graph.

    Sources carry free input supplies in [0, ub], so the all-zero flow is
    always feasible; maximizing sink inflow is therefore always bounded by
    capacities and never infeasible.
    """
    num_sources = draw(st.integers(min_value=1, max_value=3))
    num_layers = draw(st.integers(min_value=1, max_value=2))
    width = draw(st.integers(min_value=1, max_value=3))
    kinds = st.sampled_from([NodeKind.SPLIT, NodeKind.COPY, NodeKind.ALL_EQUAL])

    graph = FlowGraph("random_layers")
    graph.add_node("sink", NodeKind.SINK)
    layers: list[list[str]] = []

    sources = []
    for i in range(num_sources):
        ub = draw(st.integers(min_value=1, max_value=10))
        name = f"s{i}"
        graph.add_node(
            name, NodeKind.SOURCE, NodeKind.SPLIT, supply=InputSpec(0.0, float(ub))
        )
        sources.append(name)
    layers.append(sources)

    for layer_index in range(num_layers):
        layer = []
        for j in range(width):
            name = f"n{layer_index}_{j}"
            graph.add_node(name, draw(kinds))
            layer.append(name)
        layers.append(layer)

    # Wiring: every node gets >= 1 outgoing edge to the next layer (or the
    # sink) and every non-source node >= 1 incoming edge.
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(rng_seed)
    for depth, layer in enumerate(layers):
        targets = layers[depth + 1] if depth + 1 < len(layers) else ["sink"]
        for name in layer:
            chosen = rng.choice(
                targets, size=rng.integers(1, len(targets) + 1), replace=False
            )
            for target in chosen:
                capacity = (
                    float(rng.integers(1, 12)) if rng.random() < 0.6 else None
                )
                if not graph.has_edge(name, target):
                    graph.add_edge(name, target, capacity=capacity)
        # Ensure next layer's nodes are reachable (have an in-edge).
        for target in (layers[depth + 1] if depth + 1 < len(layers) else []):
            if not graph.in_edges(target):
                source = layer[int(rng.integers(0, len(layer)))]
                if not graph.has_edge(source, target):
                    graph.add_edge(source, target)
    # Nodes with no path forward are fine (conservation forces zero), but
    # ALL_EQUAL dead-ends tie everything to zero, which is still sound.
    graph.set_objective("sink", "max")
    graph.validate()
    return graph


class TestRandomGraphCompilation:
    @settings(max_examples=25, deadline=None)
    @given(layered_graph())
    def test_backends_agree(self, graph):
        ours, _ = solve_graph(graph, backend="simplex")
        scipy_sol, _ = solve_graph(graph, backend="scipy")
        assert ours.status is SolveStatus.OPTIMAL
        assert scipy_sol.status is SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(scipy_sol.objective, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(layered_graph())
    def test_rewrite_and_presolve_preserve_optimum(self, graph):
        naive, _ = solve_graph(
            graph, backend="scipy", rewrite=False, run_presolve=False
        )
        tuned, _ = solve_graph(
            graph, backend="scipy", rewrite=True, run_presolve=True
        )
        assert naive.objective == pytest.approx(tuned.objective, abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(layered_graph())
    def test_conservation_and_capacity(self, graph):
        compiled = compile_graph(graph, rewrite=False, run_presolve=False)
        solution = compiled.solve(backend="scipy")
        assert solution.is_optimal
        flows = compiled.varmap.flows(solution)
        for edge in graph.edges:
            flow = flows[edge.key]
            assert flow >= -1e-7
            if edge.capacity is not None:
                assert flow <= edge.capacity + 1e-6
        for node in graph.nodes:
            if node.is_sink or node.routing_kind is not NodeKind.SPLIT:
                continue
            inflow = sum(
                flows[e.key] for e in graph.in_edges(node.name)
            )
            if node.is_source:
                inflow += solution.values[
                    compiled.varmap.input_vars[node.name]
                ]
            outflow = sum(
                flows[e.key] for e in graph.out_edges(node.name)
            )
            assert inflow == pytest.approx(outflow, abs=1e-6)
