"""Round-trip tests for the Appendix-A encoder (Theorem A.1).

Every test encodes a model as a flow graph using only the six node
behaviors, compiles the graph back to an optimization, solves it, and
checks the recovered optimum (and variable values) against solving the
original model directly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import encode_and_solve, encode_model
from repro.dsl import NodeKind
from repro.exceptions import CompilerError
from repro.solver import Model, SolveStatus, quicksum


def roundtrip(model, backend="auto"):
    direct = model.solve(backend="scipy")
    assert direct.status is SolveStatus.OPTIMAL, "test model must be solvable"
    encoded_value, values = encode_and_solve(model, backend=backend)
    assert encoded_value == pytest.approx(direct.objective, abs=1e-5)
    # Recovered assignment must be feasible for the original model and
    # achieve the same objective.
    assert model.is_feasible(values, tol=1e-5)
    assert model.objective.evaluate(values) == pytest.approx(
        direct.objective, abs=1e-5
    )
    return encoded_value, values


class TestContinuousLPs:
    def test_simple_max(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=4)
        m.add_constraint(x + 2 * y <= 6)
        m.set_objective(3 * x + 5 * y)
        roundtrip(m)

    def test_simple_min(self):
        m = Model(sense="min")
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constraint(x + y >= 4)
        m.set_objective(2 * x + y)
        roundtrip(m)

    def test_negative_coefficients(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=5)
        y = m.add_var("y", ub=5)
        m.add_constraint(x - y <= 2)
        m.add_constraint(-x + 2 * y <= 6)
        m.set_objective(x + y)
        roundtrip(m)

    def test_negative_rhs(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=5)
        y = m.add_var("y", ub=5)
        m.add_constraint(-x - y <= -2)  # x + y >= 2
        m.set_objective(-x - 2 * y)  # prefers the boundary x+y == 2
        roundtrip(m)

    def test_equality_constraint(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=8)
        y = m.add_var("y", ub=8)
        m.add_constraint(x + y == 6)
        m.set_objective(2 * x + y)
        roundtrip(m)

    def test_objective_constant(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=3)
        m.set_objective(x + 100)
        roundtrip(m)

    def test_fractional_coefficients(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constraint(0.5 * x + 0.25 * y <= 3)
        m.set_objective(0.7 * x + 0.3 * y)
        roundtrip(m)


class TestBinaryAndInteger:
    def test_binary_knapsack(self):
        m = Model(sense="max")
        a = m.add_var("a", vartype="binary")
        b = m.add_var("b", vartype="binary")
        c = m.add_var("c", vartype="binary")
        m.add_constraint(3 * a + 4 * b + 2 * c <= 6)
        m.set_objective(10 * a + 13 * b + 7 * c)
        roundtrip(m)

    def test_binary_with_equality(self):
        m = Model(sense="min")
        a = m.add_var("a", vartype="binary")
        b = m.add_var("b", vartype="binary")
        m.add_constraint(a + b == 1)
        m.set_objective(3 * a + 2 * b)
        roundtrip(m)

    def test_general_integer_binary_expansion(self):
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer", ub=5)
        m.add_constraint(2 * x <= 9)
        m.set_objective(x)
        value, values = roundtrip(m)
        assert value == pytest.approx(4.0)

    def test_integer_cap_row_enforced(self):
        # ub=5 needs 3 bits (max pattern 7): the cap row must bite.
        m = Model(sense="max")
        x = m.add_var("x", vartype="integer", ub=5)
        m.set_objective(x)
        value, _ = roundtrip(m)
        assert value == pytest.approx(5.0)

    def test_mixed_integer_continuous(self):
        m = Model(sense="max")
        x = m.add_var("x", vartype="binary")
        y = m.add_var("y", ub=2.5)
        m.add_constraint(y <= 10 * x)
        m.set_objective(y - 0.4 * x)
        roundtrip(m)


class TestEncoderStructure:
    def test_only_allowed_node_kinds_used(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=4)
        b = m.add_var("b", vartype="binary")
        m.add_constraint(x + 2 * b <= 5)
        m.set_objective(x + b)
        encoded = encode_model(m)
        allowed = {
            NodeKind.SPLIT,
            NodeKind.PICK,
            NodeKind.MULTIPLY,
            NodeKind.ALL_EQUAL,
            NodeKind.COPY,
            NodeKind.SOURCE,
            NodeKind.SINK,
        }
        for node in encoded.graph.nodes:
            assert node.kinds <= allowed

    def test_one_split_node_per_row(self):
        m = Model(sense="max")
        x = m.add_var("x", ub=4)
        m.add_constraint(x <= 3)
        m.add_constraint(2 * x <= 7)
        m.set_objective(x)
        encoded = encode_model(m)
        rows = [n for n in encoded.graph.nodes if n.name.startswith("row[")]
        # 2 constraint rows + 1 objective row
        assert len(rows) == 3

    def test_nonzero_lower_bound_rejected(self):
        m = Model(sense="max")
        m.add_var("x", lb=1.0, ub=4)
        m.set_objective(m.variable_by_name("x"))
        with pytest.raises(CompilerError):
            encode_model(m)

    def test_unbounded_integer_rejected(self):
        m = Model(sense="max")
        m.add_var("x", vartype="integer")
        m.add_constraint(m.variable_by_name("x") <= 3)
        m.set_objective(m.variable_by_name("x"))
        with pytest.raises(CompilerError):
            encode_model(m)

    def test_unbounded_objective_column_rejected(self):
        # x has +inf ub and a positive minimized coefficient after sense
        # folding; the shift cannot be computed.
        m = Model(sense="min")
        x = m.add_var("x")
        m.add_constraint(x >= 1)
        m.set_objective(x)
        with pytest.raises(CompilerError):
            encode_model(m)


class TestEncoderProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=3),
        rows=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    def test_random_lp_roundtrip(self, n, rows, data):
        m = Model(sense=data.draw(st.sampled_from(["min", "max"])))
        xs = [m.add_var(f"x{i}", ub=5) for i in range(n)]
        for _ in range(rows):
            coeffs = [
                data.draw(st.integers(min_value=-3, max_value=3))
                for _ in range(n)
            ]
            rhs = data.draw(st.integers(min_value=1, max_value=10))
            m.add_constraint(
                quicksum(c * x for c, x in zip(coeffs, xs)) <= rhs
            )
        obj = [
            data.draw(st.integers(min_value=-3, max_value=3)) for _ in range(n)
        ]
        m.set_objective(quicksum(c * x for c, x in zip(obj, xs)))
        roundtrip(m, backend="scipy")
