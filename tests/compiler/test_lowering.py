"""Unit tests for DSL -> model lowering (Appendix A.1 semantics)."""

import pytest

from repro.compiler import compile_graph, solve_graph
from repro.dsl import FlowGraphBuilder, NodeKind
from repro.exceptions import CompilerError
from repro.solver import SolveStatus


class TestSplitLowering:
    def test_conservation_and_capacity(self):
        # Source 10 -> split -> two sink paths with caps 3 and 4: max 7
        # routed; supply is an input so total must equal routed + nothing,
        # hence feasibility requires input <= 7.
        _graph = (
            FlowGraphBuilder()
            .input_source("s", lb=0, ub=7)
            .split("n")
            .sink("t", objective="max")
            .edge("s", "n")
            .edge("n", "t", capacity=3)
            .build()
        )
        # add a second path
        graph2 = (
            FlowGraphBuilder()
            .input_source("s", lb=0, ub=10)
            .split("n")
            .sink("t", objective="max")
            .edge("s", "n", capacity=10)
            .edge("n", "t", capacity=3)
            .build()
        )
        sol, compiled = solve_graph(graph2)
        # The split conserves: inflow == outflow <= 3, so the input var is
        # driven to at most 3 by feasibility; objective max pushes it to 3.
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.0)

    def test_split_balances_two_outputs(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=10.0)
            .split("n")
            .sink("t", objective="max")
            .edge("s", "n")
            .edge("n", "t", capacity=6)
            .build()
        )
        sol, _ = solve_graph(graph)
        # supply fixed at 10 but outgoing capacity only 6: infeasible.
        assert sol.status is SolveStatus.INFEASIBLE

    def test_fixed_rate_edge(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=5.0)
            .split("n")
            .sink("t", objective="max")
            .sink("u")
            .edge("s", "n")
            .edge("n", "t")
            .edge("n", "u", fixed_rate=2.0)
            .build()
        )
        sol, compiled = solve_graph(graph)
        flows = compiled.varmap.flows(sol)
        assert flows[("n", "u")] == pytest.approx(2.0)
        assert flows[("n", "t")] == pytest.approx(3.0)


class TestPickLowering:
    def test_pick_single_edge_carries_all(self):
        graph = (
            FlowGraphBuilder()
            .source("ball", supply=0.7, behavior=NodeKind.PICK)
            .sink("bin1")
            .sink("bin2", objective="max")
            .edge("ball", "bin1", capacity=1.0)
            .edge("ball", "bin2", capacity=1.0)
            .build()
        )
        sol, compiled = solve_graph(graph)
        assert sol.is_optimal
        flows = compiled.varmap.flows(sol)
        carrying = [f for f in flows.values() if f > 1e-6]
        assert len(carrying) == 1
        assert carrying[0] == pytest.approx(0.7)
        # objective prefers bin2
        assert flows[("ball", "bin2")] == pytest.approx(0.7)

    def test_pick_binaries_exposed_in_varmap(self):
        graph = (
            FlowGraphBuilder()
            .source("ball", supply=0.7, behavior=NodeKind.PICK)
            .sink("bin1")
            .sink("bin2", objective="max")
            .edge("ball", "bin1", capacity=1.0)
            .edge("ball", "bin2", capacity=1.0)
            .build()
        )
        sol, compiled = solve_graph(graph)
        picks = compiled.varmap.picks(sol)
        assert picks["ball"] == ("ball", "bin2")

    def test_pick_respects_capacity(self):
        # ball of size 0.7 cannot enter a bin with remaining capacity 0.5.
        graph = (
            FlowGraphBuilder()
            .source("ball", supply=0.7, behavior=NodeKind.PICK)
            .sink("small")
            .sink("big", objective="min")
            .edge("ball", "small", capacity=0.5)
            .edge("ball", "big", capacity=1.0)
            .build()
        )
        sol, compiled = solve_graph(graph)
        # Even minimizing inflow to 'big', conservation forces the whole
        # 0.7 through one edge and 'small' cannot take it.
        assert sol.is_optimal
        flows = compiled.varmap.flows(sol)
        assert flows[("ball", "big")] == pytest.approx(0.7)


class TestCopyAndAllEqualLowering:
    def test_copy_duplicates_inflow(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=4.0)
            .copy_node("c")
            .sink("t1", objective="max")
            .sink("t2")
            .edge("s", "c")
            .edge("c", "t1")
            .edge("c", "t2")
            .build()
        )
        sol, compiled = solve_graph(graph)
        flows = compiled.varmap.flows(sol)
        assert flows[("c", "t1")] == pytest.approx(4.0)
        assert flows[("c", "t2")] == pytest.approx(4.0)

    def test_all_equal_ties_edges(self):
        graph = (
            FlowGraphBuilder()
            .source("s1", supply=3.0)
            .all_equal("ae")
            .sink("t1", objective="max")
            .sink("t2")
            .edge("s1", "ae")
            .edge("ae", "t1")
            .edge("ae", "t2")
            .build()
        )
        sol, compiled = solve_graph(graph)
        flows = compiled.varmap.flows(sol)
        assert flows[("ae", "t1")] == pytest.approx(3.0)
        assert flows[("ae", "t2")] == pytest.approx(3.0)
        assert flows[("s1", "ae")] == pytest.approx(3.0)

    def test_multiply_scales_flow(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .multiply("m", factor=2.5)
            .sink("t", objective="max")
            .edge("s", "m")
            .edge("m", "t")
            .build()
        )
        sol, compiled = solve_graph(graph)
        flows = compiled.varmap.flows(sol)
        assert flows[("m", "t")] == pytest.approx(5.0)


class TestInputsAndObjective:
    def test_inputs_pin_supplies(self):
        graph = (
            FlowGraphBuilder()
            .input_source("d", lb=0, ub=10)
            .split("n")
            .sink("t", objective="max")
            .edge("d", "n")
            .edge("n", "t")
            .build()
        )
        sol, compiled = solve_graph(graph, inputs={"d": 4.0})
        assert sol.objective == pytest.approx(4.0)
        assert compiled.varmap.input_values(sol)["d"] == pytest.approx(4.0)

    def test_out_of_range_input_rejected(self):
        graph = (
            FlowGraphBuilder()
            .input_source("d", lb=0, ub=10)
            .split("n")
            .sink("t", objective="max")
            .edge("d", "n")
            .edge("n", "t")
            .build()
        )
        with pytest.raises(CompilerError):
            compile_graph(graph, inputs={"d": 11.0}, run_presolve=False)

    def test_min_objective_sense(self):
        graph = (
            FlowGraphBuilder()
            .input_source("d", lb=2, ub=10)
            .split("n")
            .sink("t", objective="min")
            .edge("d", "n")
            .edge("n", "t")
            .build()
        )
        sol, _ = solve_graph(graph)
        assert sol.objective == pytest.approx(2.0)

    def test_unpinned_input_ranges_free(self):
        graph = (
            FlowGraphBuilder()
            .input_source("d", lb=0, ub=8)
            .split("n")
            .sink("t", objective="max")
            .edge("d", "n")
            .edge("n", "t")
            .build()
        )
        sol, _ = solve_graph(graph)  # no inputs: supply explores [0, 8]
        assert sol.objective == pytest.approx(8.0)


class TestCompileOptions:
    def _graph(self):
        return (
            FlowGraphBuilder()
            .input_source("d", lb=0, ub=5)
            .split("a")
            .split("b")
            .sink("t", objective="max")
            .chain(["d", "a", "b", "t"])
            .build()
        )

    def test_presolve_shrinks_model(self):
        naive = compile_graph(self._graph(), rewrite=False, run_presolve=False)
        tuned = compile_graph(self._graph(), rewrite=True, run_presolve=True)
        assert tuned.presolve_result is not None
        reduced = tuned.presolve_result.reduced
        assert reduced.num_variables < naive.model.num_variables
        assert reduced.num_constraints < naive.model.num_constraints

    def test_same_objective_with_and_without_presolve(self):
        naive_sol, _ = solve_graph(
            self._graph(), rewrite=False, run_presolve=False
        )
        tuned_sol, _ = solve_graph(self._graph())
        assert naive_sol.objective == pytest.approx(tuned_sol.objective)

    def test_flows_recovered_after_presolve(self):
        sol, compiled = solve_graph(self._graph())
        flows = compiled.varmap.flows(sol)
        # All edges on the single chain carry the same (maximal) flow.
        for value in flows.values():
            assert value == pytest.approx(5.0)
