"""Unit tests for graph-level rewrites."""

import pytest

from repro.compiler import rewrite_graph, solve_graph
from repro.dsl import FlowGraphBuilder, NodeKind


class TestZeroCapacityPruning:
    def test_zero_capacity_edge_removed(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=3.0)
            .split("n")
            .sink("t", objective="max")
            .sink("u")
            .edge("s", "n")
            .edge("n", "t")
            .edge("n", "u", capacity=0.0)
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.pruned_zero_capacity_edges == 1
        assert not rewritten.has_edge("n", "u")

    def test_semantics_preserved(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=3.0)
            .split("n")
            .sink("t", objective="max")
            .sink("u")
            .edge("s", "n")
            .edge("n", "t")
            .edge("n", "u", capacity=0.0)
            .build()
        )
        raw, _ = solve_graph(graph, rewrite=False, run_presolve=False)
        opt, _ = solve_graph(graph, rewrite=True, run_presolve=True)
        assert raw.objective == pytest.approx(opt.objective)


class TestIdentityContraction:
    def test_wire_split_contracted(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .split("wire")
            .sink("t", objective="max")
            .edge("s", "wire", capacity=9)
            .edge("wire", "t", capacity=4)
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.contracted_identity_nodes == 1
        assert not rewritten.has_node("wire")
        assert rewritten.edge("s", "t").capacity == 4  # tighter capacity kept

    def test_identity_multiply_contracted(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .multiply("m", factor=1.0)
            .sink("t", objective="max")
            .edge("s", "m")
            .edge("m", "t")
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.contracted_identity_nodes == 1
        assert rewritten.has_edge("s", "t")

    def test_scaling_multiply_not_contracted(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .multiply("m", factor=2.0)
            .sink("t", objective="max")
            .edge("s", "m")
            .edge("m", "t")
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.contracted_identity_nodes == 0
        assert rewritten.has_node("m")

    def test_chain_fully_contracted(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .split("a")
            .split("b")
            .split("c")
            .sink("t", objective="max")
            .chain(["s", "a", "b", "c", "t"])
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.contracted_identity_nodes == 3
        assert rewritten.num_nodes == 2
        assert rewritten.has_edge("s", "t")

    def test_branching_split_not_contracted(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .split("fork")
            .sink("t1", objective="max")
            .sink("t2")
            .edge("s", "fork")
            .edge("fork", "t1")
            .edge("fork", "t2")
            .build()
        )
        _, stats = rewrite_graph(graph)
        assert stats.contracted_identity_nodes == 0

    def test_parallel_edge_collision_keeps_node(self):
        # Contracting 'wire' would duplicate the existing s->t edge.
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .split("wire")
            .sink("t", objective="max")
            .edge("s", "t", capacity=1)
            .edge("s", "wire")
            .edge("wire", "t")
            .build()
        )
        rewritten, _ = rewrite_graph(graph)
        assert rewritten.has_node("wire")


class TestCopyFolding:
    def test_single_out_copy_becomes_split(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .copy_node("c")
            .sink("t", objective="max")
            .edge("s", "c")
            .edge("c", "t")
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.folded_copy_nodes == 1
        # After folding it is a wire split, so contraction removes it too.
        assert not rewritten.has_node("c")

    def test_multi_out_copy_untouched(self):
        graph = (
            FlowGraphBuilder()
            .source("s", supply=2.0)
            .copy_node("c")
            .sink("t1", objective="max")
            .sink("t2")
            .edge("s", "c")
            .edge("c", "t1")
            .edge("c", "t2")
            .build()
        )
        rewritten, stats = rewrite_graph(graph)
        assert stats.folded_copy_nodes == 0
        assert rewritten.node("c").routing_kind is NodeKind.COPY
