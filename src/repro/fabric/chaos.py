"""Deterministic fault injection for the analysis fabric.

A :class:`ChaosPlan` is a JSON file of :class:`ChaosRule` entries; the
supervisor exports its path through the ``XPLAIN_CHAOS`` environment
variable and every worker consults it at fixed points of its
claim-execute-commit loop. Faults are *planned*, never random at
runtime — a test seeds an RNG, picks its victim worker and unit index,
writes the plan, and the same plan reproduces the same failure forever.

Actions (all fire when ``worker`` and ``unit_index`` match a claim):

* ``kill``                — ``os._exit`` immediately after claiming
  (the classic ``kill -9`` mid-unit: lease held, no result);
* ``stall``               — sleep ``stall_seconds`` before executing,
  heartbeats still running (a slow unit; the TTL bounds it);
* ``drop_heartbeat``      — execute with heartbeats disabled, after
  sleeping ``stall_seconds`` so the lease visibly expires mid-flight;
* ``crash_before_commit`` — execute the unit fully, then die without
  committing (work lost, must be redone);
* ``crash_after_commit``  — commit the result, then die (work done,
  worker lost; nothing may be redone *and recommitted*).

:func:`run_chaos_matrix` drives the whole matrix for CI's
``chaos-smoke`` job: one tiny campaign per registered domain, each
fault injected in turn, every faulted run diffed bit-identically
(``deterministic_view``) against the unfaulted baseline, with the
exactly-once commit invariant checked from the queue's counters.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.exceptions import FabricError

#: environment variable naming the active chaos plan file (worker side)
CHAOS_ENV = "XPLAIN_CHAOS"

#: distinct exit codes so a supervisor log can tell faults apart
EXIT_KILLED = 41
EXIT_BEFORE_COMMIT = 42
EXIT_AFTER_COMMIT = 43

ACTIONS = (
    "kill",
    "stall",
    "drop_heartbeat",
    "crash_before_commit",
    "crash_after_commit",
)


@dataclass
class ChaosRule:
    """One planned fault: *this worker*, at *this claim*, does *this*."""

    action: str
    #: exact worker ID to afflict (None = every worker). Worker IDs
    #: include their restart generation (``w0.g0``), so a rule written
    #: for the first incarnation never re-fires on its replacement.
    worker: str | None = None
    #: 1-based index of the claim (per worker incarnation) to afflict;
    #: None matches every claim
    unit_index: int | None = None
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FabricError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {ACTIONS}"
            )

    def matches(self, worker_id: str, claim_index: int) -> bool:
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.unit_index is not None and self.unit_index != claim_index:
            return False
        return True


@dataclass
class ChaosPlan:
    """A serializable list of planned faults."""

    rules: list[ChaosRule] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"rules": [asdict(rule) for rule in self.rules]}

    @staticmethod
    def from_dict(data: dict) -> "ChaosPlan":
        return ChaosPlan([ChaosRule(**rule) for rule in data.get("rules", [])])

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @staticmethod
    def load(path: str | Path) -> "ChaosPlan":
        return ChaosPlan.from_dict(json.loads(Path(path).read_text()))


class ChaosMonkey:
    """Worker-side evaluator of the active plan (no-op without one)."""

    def __init__(self, plan: ChaosPlan | None, worker_id: str) -> None:
        self.plan = plan
        self.worker_id = worker_id

    @staticmethod
    def from_env(worker_id: str) -> "ChaosMonkey":
        path = os.environ.get(CHAOS_ENV)
        plan = ChaosPlan.load(path) if path else None
        return ChaosMonkey(plan, worker_id)

    def rule_for(self, claim_index: int) -> ChaosRule | None:
        if self.plan is None:
            return None
        for rule in self.plan.rules:
            if rule.matches(self.worker_id, claim_index):
                return rule
        return None


# ----------------------------------------------------------------------
def run_chaos_matrix(
    work_dir: str | Path,
    domains: list[str] | None = None,
    faults: tuple[str, ...] = ("kill", "stall", "drop_heartbeat"),
    workers: int = 2,
    seed: int = 0,
    lease_seconds: float = 1.0,
    unit_ttl: float = 20.0,
) -> dict:
    """The CI ``chaos-smoke`` matrix: every domain under every fault.

    For each registered domain, runs its one-unit smoke campaign once
    unfaulted (the baseline) and once per fault on a fresh fabric with a
    seeded chaos plan, asserting convergence: the faulted campaign's
    ``deterministic_view`` must equal the baseline's and every unit must
    be committed exactly once. Returns the full report (per-run fabric
    status included) for the job's artifact; raises
    :class:`FabricError` on any divergence.
    """
    from repro.domains.registry import registry, smoke_campaign_spec
    from repro.parallel.campaign import (
        CampaignSpec,
        deterministic_view,
        run_campaign,
    )

    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    if domains is None:
        domains = [plugin.name for plugin in registry().plugins()]
    report: dict = {"seed": seed, "faults": list(faults), "domains": {}}
    for domain in domains:
        spec = CampaignSpec.from_dict(smoke_campaign_spec([domain]))
        baseline = deterministic_view(run_campaign(spec, workers=1))
        domain_report: dict = {"baseline_worst_gap": baseline["worst_gap"]}
        for fault in faults:
            status, identical = _run_faulted(
                work_dir / f"{domain}-{fault}",
                spec,
                baseline,
                fault,
                # Smoke campaigns have one unit, so claim 1 is the only
                # index that guarantees the fault fires; the seeded
                # multi-unit kill-index variant lives in the chaos
                # integration tests.
                victim_claim=1,
                workers=workers,
                lease_seconds=lease_seconds,
                unit_ttl=unit_ttl,
            )
            commits = status["counters"]["commits"]
            done = status["units"]["done"]
            domain_report[fault] = {
                "identical": identical,
                "retries": status["counters"]["retries"],
                "lease_expiries": status["counters"]["lease_expiries"],
                "late_commits": status["counters"]["late_commits"],
                "commits": commits,
                "fabric": status,
            }
            if not identical:
                raise FabricError(
                    f"{domain}/{fault}: faulted campaign diverged from the "
                    "unfaulted baseline"
                )
            if commits != done:
                raise FabricError(
                    f"{domain}/{fault}: {commits} commits for {done} done "
                    "units — a unit was committed more than once"
                )
        report["domains"][domain] = domain_report
    return report


def _run_faulted(
    run_dir: Path,
    spec,
    baseline: dict,
    fault: str,
    victim_claim: int,
    workers: int,
    lease_seconds: float,
    unit_ttl: float,
) -> tuple[dict, bool]:
    """One faulted campaign on a fresh fabric; returns (status, identical)."""
    from repro.fabric.executor import FabricExecutor
    from repro.fabric.queue import WorkQueue
    from repro.fabric.supervisor import FabricSupervisor
    from repro.parallel.campaign import deterministic_view, run_campaign
    from repro.store import RunStore

    run_dir.mkdir(parents=True, exist_ok=True)
    stall = 3.0 * lease_seconds if fault in ("stall", "drop_heartbeat") else 0.0
    # Stalls must outlive the TTL so the reaper demonstrably recovers
    # the unit from a wedged-but-heartbeating worker.
    ttl = min(unit_ttl, 2.0 * lease_seconds) if fault == "stall" else unit_ttl
    # One rule per first-generation worker: whichever slot wins the race
    # for the victim claim faults, so the fault always fires — and never
    # re-fires, because restarted workers carry a new generation.
    plan = ChaosPlan(
        [
            ChaosRule(
                action=fault,
                worker=f"w{slot}.g0",
                unit_index=victim_claim,
                stall_seconds=stall,
            )
            for slot in range(workers)
        ]
    )
    plan_path = plan.write(run_dir / "chaos.json")
    # Generous retry budget: under a tight stall TTL even honest claims
    # of a slow unit can be reaped; the matrix asserts convergence and
    # exactly-once commits, not a minimal attempt count.
    queue = WorkQueue(
        run_dir, unit_ttl=ttl, backoff_base=0.05, default_max_attempts=8
    )
    supervisor = FabricSupervisor(
        run_dir,
        workers=workers,
        lease_seconds=lease_seconds,
        unit_ttl=ttl,  # workers cap their own heartbeat renewals with it
        chaos_path=plan_path,
    )
    supervisor.start()
    try:
        executor = FabricExecutor(queue, supervisor=supervisor)
        result = run_campaign(
            spec, store=RunStore(run_dir / "store"), executor=executor
        )
    finally:
        supervisor.stop()
    identical = deterministic_view(result) == baseline
    return queue.status(), identical
