"""The fabric as an :class:`~repro.parallel.executor.Executor`.

:class:`FabricExecutor` speaks the same two-method protocol
(``map_units``/``iter_units``) as the serial and process executors, so
every existing consumer — the oracle engine's sharded dispatch,
:func:`~repro.parallel.campaign.run_campaign`, the store-backed resume
path, the analysis service — gets lease-based fault tolerance without
knowing the fabric exists.

Submission enqueues each unit's content-addressed envelope; the wait
loop then polls for results *in unit order* (preserving the streaming
persistence contract crash-safe campaigns rely on), running the lease
reaper and the supervisor's restart pass on every tick. Three exits per
unit:

* ``done``        — yield the decoded result;
* ``quarantined`` — the unit exhausted its retries; raise with the
  recorded error (the campaign fails, poisoned work never loops);
* no progress and **no live workers** — graceful degradation: with
  ``inline_fallback`` (the default), the driver claims and executes
  pending units itself through the very same claim/commit path, so a
  campaign submitted to a dead fleet still converges, exactly once.

Two ownership modes: constructed over a shared queue/supervisor (the
service), ``close()`` leaves the infrastructure alone; constructed via
:func:`local_fabric` (``XPlainConfig.executor="fabric"``), it owns an
ephemeral queue + fleet and tears them down on ``close()``.
"""

from __future__ import annotations

import tempfile
import time
from typing import Iterator, Sequence

from repro.exceptions import FabricError
from repro.fabric.queue import WorkQueue
from repro.fabric.supervisor import FabricSupervisor
from repro.fabric.units import EnvelopeRunner, decode_result, encode_unit

#: worker ID the driver commits under when degrading to inline execution
INLINE_WORKER = "inline-driver"


class FabricExecutor:
    """Run work units through the lease queue + worker fleet."""

    in_process = False

    def __init__(
        self,
        queue: WorkQueue,
        supervisor: FabricSupervisor | None = None,
        problem_spec=None,
        group_id: str | None = None,
        max_attempts: int | None = None,
        poll_interval: float = 0.02,
        lease_seconds: float = 10.0,
        unit_timeout: float | None = None,
        inline_fallback: bool = True,
        owns_infra: bool = False,
    ) -> None:
        self.queue = queue
        self.supervisor = supervisor
        self.problem_spec = problem_spec
        self.group_id = group_id
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.lease_seconds = lease_seconds
        self.unit_timeout = unit_timeout
        self.inline_fallback = inline_fallback
        self._owns_infra = owns_infra
        self._tempdir: tempfile.TemporaryDirectory | None = None
        self._runner = EnvelopeRunner()

    # ------------------------------------------------------------------
    def map_units(self, units: Sequence) -> list:
        return list(self.iter_units(units))

    def iter_units(self, units: Sequence) -> Iterator:
        if not units:
            return
        encoded = []
        for unit in units:
            spec = self.problem_spec or getattr(unit, "spec", None)
            unit_id, envelope = encode_unit(unit, problem_spec=spec)
            self.queue.enqueue(
                unit_id,
                envelope["kind"],
                envelope,
                group_id=self.group_id,
                max_attempts=self.max_attempts,
            )
            encoded.append((unit_id, envelope["kind"]))
        for unit_id, kind in encoded:
            yield decode_result(kind, self._await_unit(unit_id))

    def _await_unit(self, unit_id: str) -> dict:
        """Block until one unit is done (or quarantined / timed out)."""
        deadline = (
            time.monotonic() + self.unit_timeout if self.unit_timeout else None
        )
        while True:
            self.queue.reap()
            if self.supervisor is not None:
                self.supervisor.poll()
            row = self.queue.unit(unit_id)
            if row is None:
                raise FabricError(f"unit {unit_id!r} vanished from the queue")
            if row["status"] == "done":
                return row["result"]
            if row["status"] == "quarantined":
                raise FabricError(
                    f"unit {unit_id!r} quarantined after {row['attempts']} "
                    f"attempts: {row['error']}"
                )
            if self._fleet_is_dead():
                if not self.inline_fallback:
                    raise FabricError(
                        f"no live fabric workers and inline fallback is "
                        f"disabled; unit {unit_id!r} cannot make progress"
                    )
                if self._execute_inline_once():
                    continue  # made progress; re-check immediately
            if deadline is not None and time.monotonic() > deadline:
                raise FabricError(
                    f"unit {unit_id!r} still {row['status']} after "
                    f"{self.unit_timeout}s (attempts: {row['attempts']})"
                )
            time.sleep(self.poll_interval)

    def _fleet_is_dead(self) -> bool:
        return self.supervisor is None or self.supervisor.alive_workers() == 0

    def _execute_inline_once(self) -> bool:
        """Degraded mode: claim and run one unit in the driver itself.

        Uses the identical claim/commit path as real workers, so the
        exactly-once and idempotency guarantees hold even while the
        fleet is down — a half-restarted fleet racing the inline driver
        commits each unit once, whoever finishes first.
        """
        claimed = self.queue.claim(INLINE_WORKER, self.lease_seconds)
        if claimed is None:
            return False
        try:
            result = self._runner.run(claimed["payload"])
        except Exception as exc:  # noqa: BLE001 - poison units quarantine
            self.queue.fail(
                claimed["unit_id"],
                INLINE_WORKER,
                f"{type(exc).__name__}: {exc}",
            )
            return True
        self.queue.commit(claimed["unit_id"], INLINE_WORKER, result)
        return True

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down owned infrastructure; shared infra is left running."""
        if not self._owns_infra:
            return
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


def local_fabric(
    workers: int,
    spec=None,
    lease_seconds: float = 10.0,
    max_attempts: int = 3,
    directory: str | None = None,
) -> FabricExecutor:
    """An ephemeral single-machine fabric (``executor="fabric"``).

    Builds a queue in a temporary directory, spawns ``workers`` worker
    processes over it, and returns an executor that owns both —
    ``close()`` stops the fleet and removes the directory. This is how a
    plain ``XPlain`` run or ``run_campaign`` call gets fabric semantics
    without a long-lived service.
    """
    tempdir = None
    if directory is None:
        tempdir = tempfile.TemporaryDirectory(prefix="xplain-fabric-")
        directory = tempdir.name
    queue = WorkQueue(directory)
    supervisor = FabricSupervisor(
        directory, workers=workers, lease_seconds=lease_seconds
    ).start()
    executor = FabricExecutor(
        queue,
        supervisor=supervisor,
        problem_spec=spec,
        max_attempts=max_attempts,
        lease_seconds=lease_seconds,
        owns_infra=True,
    )
    executor._tempdir = tempdir
    return executor
