"""The fault-tolerant analysis fabric (DESIGN.md §13).

Promotes the single-worker-thread serving model to a crash-tolerant
topology: a SQLite-backed lease queue
(:class:`~repro.fabric.queue.WorkQueue`), a pull-based worker fleet
(:func:`~repro.fabric.worker.worker_main`) kept alive by a
:class:`~repro.fabric.supervisor.FabricSupervisor`, and a
:class:`~repro.fabric.executor.FabricExecutor` that plugs the whole
thing into the existing :class:`~repro.parallel.executor.Executor`
protocol — so campaigns, the run store, and the analysis service gain
heartbeats, lease-expiry retry with backoff, poison-unit quarantine,
and exactly-once commits without changing their own code.

Determinism survives the faults: unit results are pure functions of
content-addressed payloads, so a campaign that lost workers mid-flight
converges bit-identically (``deterministic_view``) to an unfaulted run
— which :mod:`repro.fabric.chaos` proves by injecting kills, stalls,
and dropped heartbeats on a fixed plan.
"""

from repro.fabric.chaos import ChaosMonkey, ChaosPlan, ChaosRule, run_chaos_matrix
from repro.fabric.executor import FabricExecutor, local_fabric
from repro.fabric.queue import WorkQueue, fabric_db_path
from repro.fabric.supervisor import FabricSupervisor
from repro.fabric.units import decode_result, encode_unit
from repro.fabric.worker import worker_main

__all__ = [
    "ChaosMonkey",
    "ChaosPlan",
    "ChaosRule",
    "FabricExecutor",
    "FabricSupervisor",
    "WorkQueue",
    "decode_result",
    "encode_unit",
    "fabric_db_path",
    "local_fabric",
    "run_chaos_matrix",
    "worker_main",
]
