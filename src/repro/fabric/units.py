"""Content-addressed envelopes: work units as JSON, both directions.

The fabric queue stores JSON, not pickles, so a unit must round-trip
through a JSON-safe *envelope*:

* a :class:`~repro.parallel.work.CampaignUnit` becomes
  ``{"kind": "campaign", "job": <payload>}`` addressed by the store's
  :func:`~repro.store.ids.run_id_for` — the queue, the run store, and
  campaign resume all agree on what "the same unit" means;
* an :class:`~repro.parallel.work.EvalUnit` becomes ``{"kind": "eval",
  "points": [[...]], "problem": <spec dict>}`` addressed by a digest of
  that envelope. The problem spec rides along so any worker can rebuild
  the problem; workers keep one resident problem per distinct spec.

Floats survive exactly: Python's ``json`` emits ``repr(float)`` (the
shortest round-tripping form), so arrays decoded from a result envelope
are bit-identical to the arrays the worker computed — the fabric adds
no numeric noise to the determinism argument.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FabricError
from repro.parallel.work import CampaignUnit, EvalUnit
from repro.store.ids import content_digest, run_id_for

#: envelope kinds the fabric knows how to execute
KINDS = ("campaign", "eval")


def encode_unit(unit, problem_spec=None) -> tuple[str, dict]:
    """One work unit -> (content-addressed unit ID, JSON envelope)."""
    if isinstance(unit, CampaignUnit):
        return run_id_for(unit.job), {"kind": "campaign", "job": unit.job}
    if isinstance(unit, EvalUnit):
        envelope = {
            "kind": "eval",
            "points": np.asarray(unit.points, dtype=float).tolist(),
            "problem": problem_spec.to_dict() if problem_spec else None,
        }
        return content_digest("unit", envelope), envelope
    raise FabricError(
        f"cannot encode work unit of type {type(unit).__name__}; "
        "the fabric ships CampaignUnit and EvalUnit payloads"
    )


def encode_result(kind: str, result: dict) -> dict:
    """A unit's result dict in JSON-safe form (arrays -> lists)."""
    if kind == "campaign":
        return result
    return {
        "benchmark": np.asarray(result["benchmark"], dtype=float).tolist(),
        "heuristic": np.asarray(result["heuristic"], dtype=float).tolist(),
        "feasible": np.asarray(result["feasible"], dtype=bool).tolist(),
        "counters": dict(result["counters"]),
        "path": result["path"],
    }


def decode_result(kind: str, result: dict) -> dict:
    """The inverse of :func:`encode_result` (lists -> arrays)."""
    if kind == "campaign":
        return result
    return {
        "benchmark": np.asarray(result["benchmark"], dtype=float),
        "heuristic": np.asarray(result["heuristic"], dtype=float),
        "feasible": np.asarray(result["feasible"], dtype=bool),
        "counters": dict(result["counters"]),
        "path": result["path"],
    }


class EnvelopeRunner:
    """Executes decoded envelopes; caches one problem per distinct spec.

    This is the fabric's face of the existing ``_run_unit`` path: an
    envelope rebuilds the same :class:`EvalUnit`/:class:`CampaignUnit`
    and runs it through :func:`~repro.parallel.work.execute_unit`, so a
    unit's result is byte-for-byte what the serial and process executors
    would produce.
    """

    def __init__(self) -> None:
        self._problems: dict[str, object] = {}

    def _resident_problem(self, spec_data: dict | None):
        if spec_data is None:
            raise FabricError(
                "eval envelope carries no problem spec; the worker cannot "
                "rebuild the problem (construct it through a spec-attaching "
                "domain constructor)"
            )
        from repro.parallel.spec import ProblemSpec
        from repro.store.ids import canonical_json

        key = canonical_json(spec_data)
        if key not in self._problems:
            self._problems[key] = ProblemSpec.from_dict(spec_data).build()
        return self._problems[key]

    def run(self, envelope: dict) -> dict:
        """Execute one envelope, returning its JSON-safe result."""
        from repro.parallel.work import execute_unit

        kind = envelope.get("kind")
        if kind == "campaign":
            result = execute_unit(CampaignUnit(envelope["job"]))
        elif kind == "eval":
            problem = self._resident_problem(envelope.get("problem"))
            unit = EvalUnit(np.asarray(envelope["points"], dtype=float))
            result = execute_unit(unit, problem)
        else:
            raise FabricError(
                f"unknown envelope kind {kind!r}; expected one of {KINDS}"
            )
        return encode_result(kind, result)
