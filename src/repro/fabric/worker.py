"""The pull-based fabric worker: claim, heartbeat, execute, commit.

:func:`worker_main` is the body of one worker process. It never receives
work over a pipe — it *pulls* leases from the shared
:class:`~repro.fabric.queue.WorkQueue`, so a dead worker costs nothing
but its in-flight lease (which the reaper requeues) and a new worker
needs nothing but the queue path to be useful.

The loop per unit::

    claim -> [heartbeat thread renews the lease] -> execute -> commit

* Heartbeats run on a side thread at ``lease_seconds / 3`` so a healthy
  worker's lease never expires mid-unit, while a killed worker's lease
  expires within one ``lease_seconds``.
* Execution goes through the same
  :func:`~repro.parallel.work.execute_unit` path as every other
  executor (via :class:`~repro.fabric.units.EnvelopeRunner`), so unit
  results are bit-identical regardless of which worker ran them.
* Commits are idempotent (first-writer-wins in the queue); a worker
  whose lease was reaped mid-execution still commits — if a retry beat
  it to the result, the late commit is a counted no-op.
* Failures call ``fail()`` (bounded retry with backoff in the queue);
  the worker itself survives poison units and moves on.

Fault injection (:mod:`repro.fabric.chaos`) hooks the loop at claim,
before-commit, and after-commit; without a plan in the environment the
hooks are no-ops.
"""

from __future__ import annotations

import os
import threading
import time
import traceback

from repro.fabric.chaos import (
    EXIT_AFTER_COMMIT,
    EXIT_BEFORE_COMMIT,
    EXIT_KILLED,
    ChaosMonkey,
)
from repro.fabric.queue import WorkQueue
from repro.fabric.units import EnvelopeRunner
from repro.obs import runtime as _obs
from repro.obs.fleet import write_worker_snapshot


class _Heartbeat:
    """Renews one lease on a schedule until stopped (or the lease dies)."""

    def __init__(
        self, queue: WorkQueue, unit_id: str, worker_id: str,
        lease_seconds: float,
    ) -> None:
        self.queue = queue
        self.unit_id = unit_id
        self.worker_id = worker_id
        self.lease_seconds = lease_seconds
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        interval = max(self.lease_seconds / 3.0, 0.01)
        while not self._stop.wait(interval):
            try:
                renewed = self.queue.heartbeat(
                    self.unit_id, self.worker_id, self.lease_seconds
                )
            except Exception:  # noqa: BLE001 - a busy DB must not kill us
                continue
            if not renewed:
                # Reaped (or TTL-expired): someone else owns the unit
                # now. Keep executing — our commit is an idempotent
                # no-op if a retry lands first.
                self.lost.set()
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def worker_main(
    queue_path: str,
    worker_id: str,
    lease_seconds: float = 10.0,
    poll_interval: float = 0.05,
    unit_ttl: float = 900.0,
    max_units: int | None = None,
    idle_exit_seconds: float | None = None,
    chaos_path: str | None = None,
) -> None:
    """Run one fabric worker until told to stop (process entry point).

    ``max_units``/``idle_exit_seconds`` exist for tests and bounded CI
    runs; the supervisor normally stops workers by terminating them.
    ``chaos_path`` (or the ``XPLAIN_CHAOS`` environment variable) arms
    the fault-injection hooks.
    """
    queue = WorkQueue(queue_path, unit_ttl=unit_ttl)
    queue.register_worker(worker_id, pid=os.getpid())
    if chaos_path:
        from repro.fabric.chaos import ChaosPlan

        monkey = ChaosMonkey(ChaosPlan.load(chaos_path), worker_id)
    else:
        monkey = ChaosMonkey.from_env(worker_id)
    runner = EnvelopeRunner()
    # With a metrics spill directory in the environment (the service or
    # fabric supervisor exports XPLAIN_METRICS_DIR), this worker gets an
    # in-process registry and persists a cumulative snapshot of it after
    # every unit; the service merges all worker snapshots at scrape
    # time. No directory -> no registry -> every hook stays a no-op.
    metrics_dir = os.environ.get(_obs.METRICS_DIR_ENV)
    metrics = _obs.install() if metrics_dir else None

    def spill_metrics() -> None:
        if metrics is None:
            return
        try:
            write_worker_snapshot(metrics_dir, worker_id, metrics)
        except OSError:
            pass  # a full disk must not kill the worker

    def count(name: str, help_text: str) -> None:
        if metrics is not None:
            metrics.counter_inc(name, 1, help=help_text, worker=worker_id)

    claims = 0
    done = 0
    idle_since = time.monotonic()
    while True:
        claimed = queue.claim(worker_id, lease_seconds)
        if claimed is None:
            if (
                idle_exit_seconds is not None
                and time.monotonic() - idle_since > idle_exit_seconds
            ):
                break
            try:
                queue.worker_beat(worker_id)
            except Exception:  # noqa: BLE001
                pass
            time.sleep(poll_interval)
            continue
        idle_since = time.monotonic()
        claims += 1
        count("xplain_fabric_worker_claims_total", "units claimed by worker")
        unit_id = claimed["unit_id"]
        rule = monkey.rule_for(claims)
        if rule is not None and rule.action == "kill":
            os._exit(EXIT_KILLED)
        heartbeat = None
        if rule is None or rule.action != "drop_heartbeat":
            heartbeat = _Heartbeat(
                queue, unit_id, worker_id, lease_seconds
            ).start()
        # Stall *after* arming the heartbeat: a "stall" fault models a
        # wedged-but-heartbeating worker (only the unit TTL unsticks
        # it), while "drop_heartbeat" stalls silently so the plain
        # lease timeout fires.
        if rule is not None and rule.stall_seconds > 0:
            time.sleep(rule.stall_seconds)
        try:
            result = runner.run(claimed["payload"])
        except Exception as exc:  # noqa: BLE001 - poison units must not kill us
            if heartbeat is not None:
                heartbeat.stop()
            queue.fail(
                unit_id,
                worker_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
            count(
                "xplain_fabric_worker_failures_total",
                "unit executions that raised on this worker",
            )
            spill_metrics()
            continue
        if heartbeat is not None:
            heartbeat.stop()
        if rule is not None and rule.action == "crash_before_commit":
            os._exit(EXIT_BEFORE_COMMIT)
        queue.commit(unit_id, worker_id, result)
        count("xplain_fabric_worker_commits_total", "units committed by worker")
        spill_metrics()
        if rule is not None and rule.action == "crash_after_commit":
            os._exit(EXIT_AFTER_COMMIT)
        done += 1
        if max_units is not None and done >= max_units:
            break
    spill_metrics()
    if metrics is not None:
        _obs.uninstall()
    queue.mark_worker(worker_id, "stopped")
