"""Spawns, watches, and restarts the fabric's worker fleet.

:class:`FabricSupervisor` owns N worker *slots*. Each slot runs one
:func:`~repro.fabric.worker.worker_main` process; when a slot's process
dies (crash, ``kill -9``, chaos), ``poll()`` marks the old worker dead
in the queue and — within the slot's restart budget — spawns a
replacement with a bumped generation (``w0.g0`` -> ``w0.g1``), so chaos
rules and log lines pinned to one incarnation never bleed into the next.

``poll()`` also runs the queue's lease reaper, so anywhere the
supervisor is being polled (the executor's wait loop, the optional
monitor thread, a status endpoint), dead workers' leases are being
recovered too. The supervisor is deliberately poll-driven rather than
thread-first: a driver waiting on results is already polling, and the
monitor thread exists only for fleets that must self-heal while idle
(``repro fabric serve``).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from pathlib import Path

from repro.exceptions import FabricError
from repro.fabric.queue import WorkQueue
from repro.fabric.worker import worker_main


class FabricSupervisor:
    """Keeps ``workers`` fabric worker processes alive against a queue."""

    def __init__(
        self,
        queue_path: str | Path,
        workers: int = 2,
        lease_seconds: float = 10.0,
        poll_interval: float = 0.05,
        unit_ttl: float = 900.0,
        max_restarts_per_slot: int = 5,
        chaos_path: str | Path | None = None,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise FabricError(f"fabric needs >= 1 worker, got {workers}")
        self.queue_path = str(queue_path)
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.unit_ttl = unit_ttl
        self.max_restarts_per_slot = max_restarts_per_slot
        self.chaos_path = str(chaos_path) if chaos_path else None
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self.queue = WorkQueue(queue_path, unit_ttl=unit_ttl)
        #: slot -> (generation, Process); populated by start()
        self._slots: dict[int, tuple[int, object]] = {}
        self._restarts = 0
        self._lock = threading.Lock()
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    def worker_id(self, slot: int, generation: int) -> str:
        return f"w{slot}.g{generation}"

    def _spawn(self, slot: int, generation: int):
        process = self._context.Process(
            target=worker_main,
            kwargs={
                "queue_path": self.queue_path,
                "worker_id": self.worker_id(slot, generation),
                "lease_seconds": self.lease_seconds,
                "poll_interval": self.poll_interval,
                "unit_ttl": self.unit_ttl,
                "chaos_path": self.chaos_path,
            },
            name=f"xplain-fabric-{self.worker_id(slot, generation)}",
            daemon=True,
        )
        process.start()
        return process

    def start(self, monitor_interval: float | None = None) -> "FabricSupervisor":
        """Spawn the fleet; optionally self-heal on a monitor thread."""
        with self._lock:
            if self._started:
                return self
            for slot in range(self.workers):
                self._slots[slot] = (0, self._spawn(slot, 0))
            self._started = True
        if monitor_interval is not None:
            self._monitor_stop.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                args=(monitor_interval,),
                name="xplain-fabric-monitor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def _monitor_loop(self, interval: float) -> None:
        while not self._monitor_stop.wait(interval):
            try:
                self.poll()
            except Exception:  # noqa: BLE001 - the monitor must survive
                pass

    # ------------------------------------------------------------------
    def poll(self) -> list[str]:
        """One supervision pass: reap leases, restart dead workers.

        Returns the worker IDs restarted this pass. Dead slots past
        their restart budget stay down (``alive_workers`` then reports
        the shrunken fleet; an executor with inline fallback keeps the
        campaign converging regardless).
        """
        self.queue.reap()
        restarted: list[str] = []
        with self._lock:
            if not self._started:
                return restarted
            for slot, (generation, process) in list(self._slots.items()):
                if process.is_alive():
                    continue
                self.queue.mark_worker(self.worker_id(slot, generation), "dead")
                if self._restarts >= self.max_restarts_per_slot * self.workers:
                    continue
                self._restarts += 1
                new_generation = generation + 1
                self._slots[slot] = (
                    new_generation,
                    self._spawn(slot, new_generation),
                )
                restarted.append(self.worker_id(slot, new_generation))
        return restarted

    def alive_workers(self) -> int:
        with self._lock:
            return sum(
                1 for _, process in self._slots.values() if process.is_alive()
            )

    @property
    def restarts(self) -> int:
        return self._restarts

    def status(self) -> dict:
        with self._lock:
            slots = {
                f"w{slot}": {
                    "generation": generation,
                    "alive": process.is_alive(),
                    "pid": process.pid,
                }
                for slot, (generation, process) in sorted(self._slots.items())
            }
        return {
            "workers": self.workers,
            "alive": sum(1 for s in slots.values() if s["alive"]),
            "restarts": self._restarts,
            "slots": slots,
        }

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Terminate the fleet (and the monitor thread, if running)."""
        if self._monitor is not None:
            self._monitor_stop.set()
            self._monitor.join(timeout=timeout)
            self._monitor = None
        with self._lock:
            processes = [process for _, process in self._slots.values()]
            self._slots.clear()
            self._started = False
        deadline = time.monotonic() + timeout
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)
