"""The SQLite-backed lease queue at the heart of the analysis fabric.

:class:`WorkQueue` is a broker without a broker process: one WAL-mode
SQLite file (``fabric.sqlite`` inside a store directory) that any number
of driver threads and worker processes open concurrently. Work units
are content-addressed envelopes (DESIGN.md §13) moving through a small
state machine::

    pending --claim--> leased --commit--> done
       ^                  |
       |                  +--fail/lease-expiry--> pending (backoff)
       |                  |
       +--revive--        +-- after max_attempts --> quarantined

* **Claiming is atomic.** ``claim()`` runs a ``BEGIN IMMEDIATE``
  transaction, so two workers can never lease the same unit.
* **Leases expire.** A claim carries a deadline; ``heartbeat()``
  renews it (bounded by the unit TTL, so a wedged worker that keeps
  heartbeating still loses the lease eventually) and ``reap()``
  requeues anything past its deadline with exponential backoff.
* **Commits are idempotent and first-writer-wins.** The first
  ``commit()`` for a unit records the result exactly once; any later
  commit — a reaped worker finishing late — is counted as a
  ``late_commit`` and changes nothing. Unit results are deterministic
  functions of their payloads, so whichever commit lands first is the
  same answer.
* **Poison units quarantine.** A unit that fails (or times out)
  ``max_attempts`` times moves to ``quarantined`` instead of retrying
  forever; re-enqueueing it later (a fresh submission) revives it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exceptions import FabricError
from repro.store.db import open_database

#: database file name inside a store directory
FABRIC_DB_NAME = "fabric.sqlite"

#: unit lifecycle states
UNIT_STATUSES = ("pending", "leased", "done", "quarantined")

#: monotonic event counters surfaced by :meth:`WorkQueue.status`
COUNTER_KEYS = (
    "enqueued",
    "claims",
    "commits",
    "late_commits",
    "retries",
    "lease_expiries",
    "quarantines",
    "revived",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS fabric_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS units (
    unit_id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    group_id TEXT,
    payload_json TEXT NOT NULL,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    not_before REAL NOT NULL DEFAULT 0,
    lease_owner TEXT,
    lease_started REAL,
    lease_deadline REAL,
    result_json TEXT,
    committed_by TEXT,
    commit_count INTEGER NOT NULL DEFAULT 0,
    late_commits INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_units_claimable
    ON units (status, not_before, created_at);
CREATE TABLE IF NOT EXISTS workers (
    worker_id TEXT PRIMARY KEY,
    pid INTEGER,
    state TEXT NOT NULL,
    started_at REAL NOT NULL,
    last_heartbeat REAL NOT NULL,
    current_unit TEXT,
    units_done INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS counters (
    key TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
"""

#: bump on any table change; the queue refuses newer-schema databases
FABRIC_SCHEMA_VERSION = 1


def fabric_db_path(path: str | Path) -> Path:
    """The fabric database file for a store path (dir or ``.sqlite``)."""
    path = Path(path)
    if path.suffix == ".sqlite":
        return path
    return path / FABRIC_DB_NAME


def _backoff_delay(attempts: int, base: float, cap: float) -> float:
    """Exponential backoff: ``base * 2**(attempts-1)`` capped at ``cap``."""
    return min(base * (2.0 ** max(attempts - 1, 0)), cap)


class WorkQueue:
    """Lease-based work queue over one SQLite file.

    Every public method opens its own short-lived connection (the same
    discipline as :class:`~repro.store.runstore.RunStore`), so one value
    can be shared across service threads and named by path from worker
    processes. ``now`` parameters exist so tests can drive the clock;
    production callers omit them.
    """

    def __init__(
        self,
        path: str | Path,
        default_max_attempts: int = 3,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
        unit_ttl: float = 900.0,
    ) -> None:
        if default_max_attempts < 1:
            raise FabricError(
                f"max_attempts must be >= 1, got {default_max_attempts}"
            )
        if unit_ttl <= 0:
            raise FabricError(f"unit_ttl must be > 0, got {unit_ttl}")
        self.path = Path(path)
        self.default_max_attempts = default_max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: hard per-claim execution budget: heartbeats never extend a
        #: lease past ``lease_started + unit_ttl``, so even a worker
        #: that is wedged *and* heartbeating loses the unit eventually
        self.unit_ttl = unit_ttl
        conn = self._connect()
        try:
            with conn:
                conn.executescript(_SCHEMA)
                row = conn.execute(
                    "SELECT value FROM fabric_meta WHERE key = 'schema_version'"
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO fabric_meta (key, value) "
                        "VALUES ('schema_version', ?)",
                        (str(FABRIC_SCHEMA_VERSION),),
                    )
                elif int(row["value"]) > FABRIC_SCHEMA_VERSION:
                    raise FabricError(
                        f"fabric database schema v{row['value']} is newer "
                        f"than this code (v{FABRIC_SCHEMA_VERSION})"
                    )
        finally:
            conn.close()

    @property
    def db_path(self) -> Path:
        return fabric_db_path(self.path)

    def _connect(self):
        return open_database(self.db_path)

    @staticmethod
    def _now(now: float | None) -> float:
        return time.time() if now is None else now

    @staticmethod
    def _bump(conn, key: str, by: int = 1) -> None:
        conn.execute(
            "INSERT INTO counters (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = value + ?",
            (key, by, by),
        )

    # -- enqueue ------------------------------------------------------------
    def enqueue(
        self,
        unit_id: str,
        kind: str,
        payload: dict,
        group_id: str | None = None,
        max_attempts: int | None = None,
        now: float | None = None,
    ) -> str:
        """Insert one unit, idempotently; returns its current status.

        A unit that is already ``pending``/``leased``/``done`` is left
        untouched (content addressing guarantees the payload matches).
        A ``quarantined`` unit is *revived* — a fresh submission is a
        fresh intent, so its attempt budget resets.
        """
        now = self._now(now)
        max_attempts = max_attempts or self.default_max_attempts
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT status FROM units WHERE unit_id = ?", (unit_id,)
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO units (unit_id, kind, group_id, payload_json,"
                    " status, max_attempts, created_at, updated_at) "
                    "VALUES (?, ?, ?, ?, 'pending', ?, ?, ?)",
                    (
                        unit_id,
                        kind,
                        group_id,
                        json.dumps(payload, sort_keys=True),
                        max_attempts,
                        now,
                        now,
                    ),
                )
                self._bump(conn, "enqueued")
                status = "pending"
            elif row["status"] == "quarantined":
                conn.execute(
                    "UPDATE units SET status = 'pending', attempts = 0, "
                    "not_before = 0, error = NULL, lease_owner = NULL, "
                    "lease_started = NULL, lease_deadline = NULL, "
                    "max_attempts = ?, updated_at = ? WHERE unit_id = ?",
                    (max_attempts, now, unit_id),
                )
                self._bump(conn, "revived")
                status = "pending"
            else:
                status = row["status"]
            conn.execute("COMMIT")
            return status
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        finally:
            conn.close()

    # -- claim / heartbeat / commit / fail ------------------------------------
    def claim(
        self,
        worker_id: str,
        lease_seconds: float,
        now: float | None = None,
    ) -> dict | None:
        """Atomically lease the oldest claimable unit, or return None.

        The returned dict carries ``unit_id``/``kind``/``payload``/
        ``attempts`` (attempts *including* this claim). ``not_before``
        gates units that are backing off after a failure.
        """
        now = self._now(now)
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT unit_id, kind, payload_json, attempts FROM units "
                "WHERE status = 'pending' AND not_before <= ? "
                "ORDER BY created_at, unit_id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            conn.execute(
                "UPDATE units SET status = 'leased', lease_owner = ?, "
                "lease_started = ?, lease_deadline = ?, "
                "attempts = attempts + 1, updated_at = ? WHERE unit_id = ?",
                (worker_id, now, now + lease_seconds, now, row["unit_id"]),
            )
            conn.execute(
                "UPDATE workers SET current_unit = ?, last_heartbeat = ? "
                "WHERE worker_id = ?",
                (row["unit_id"], now, worker_id),
            )
            self._bump(conn, "claims")
            conn.execute("COMMIT")
            return {
                "unit_id": row["unit_id"],
                "kind": row["kind"],
                "payload": json.loads(row["payload_json"]),
                "attempts": row["attempts"] + 1,
            }
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        finally:
            conn.close()

    def heartbeat(
        self,
        unit_id: str,
        worker_id: str,
        lease_seconds: float,
        now: float | None = None,
    ) -> bool:
        """Renew a lease (and the worker's liveness stamp).

        Returns False when the lease is gone — expired and reaped, the
        unit committed by someone else, or past its TTL. The worker
        should finish its in-flight attempt anyway; its commit is
        idempotent.
        """
        now = self._now(now)
        conn = self._connect()
        try:
            with conn:
                conn.execute(
                    "UPDATE workers SET last_heartbeat = ? WHERE worker_id = ?",
                    (now, worker_id),
                )
                renewed = conn.execute(
                    "UPDATE units SET lease_deadline = "
                    " MIN(?, lease_started + ?), updated_at = ? "
                    "WHERE unit_id = ? AND lease_owner = ? "
                    " AND status = 'leased' AND lease_started + ? > ?",
                    (
                        now + lease_seconds,
                        self.unit_ttl,
                        now,
                        unit_id,
                        worker_id,
                        self.unit_ttl,
                        now,
                    ),
                ).rowcount
            return renewed == 1
        finally:
            conn.close()

    def commit(
        self,
        unit_id: str,
        worker_id: str,
        result: dict,
        now: float | None = None,
    ) -> bool:
        """Record a unit's result, first-writer-wins.

        Returns True when this call committed the result; False for a
        late duplicate (the unit was already ``done``), which is counted
        but changes nothing — that is what makes worker-side
        crash/retry loops safe.
        """
        now = self._now(now)
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT status FROM units WHERE unit_id = ?", (unit_id,)
            ).fetchone()
            if row is None:
                # nothing written yet; the except clause rolls back
                raise FabricError(f"commit for unknown unit {unit_id!r}")
            if row["status"] == "done":
                conn.execute(
                    "UPDATE units SET late_commits = late_commits + 1, "
                    "updated_at = ? WHERE unit_id = ?",
                    (now, unit_id),
                )
                self._bump(conn, "late_commits")
                conn.execute("COMMIT")
                return False
            conn.execute(
                "UPDATE units SET status = 'done', result_json = ?, "
                "committed_by = ?, commit_count = commit_count + 1, "
                "lease_owner = NULL, lease_deadline = NULL, error = NULL, "
                "updated_at = ? WHERE unit_id = ?",
                (json.dumps(result, sort_keys=True), worker_id, now, unit_id),
            )
            conn.execute(
                "UPDATE workers SET units_done = units_done + 1, "
                "current_unit = NULL, last_heartbeat = ? WHERE worker_id = ?",
                (now, worker_id),
            )
            self._bump(conn, "commits")
            conn.execute("COMMIT")
            return True
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        finally:
            conn.close()

    def fail(
        self,
        unit_id: str,
        worker_id: str,
        error: str,
        now: float | None = None,
    ) -> str:
        """Report a failed attempt: requeue with backoff or quarantine.

        Returns the unit's new status (``pending`` or ``quarantined``).
        A unit whose lease was already reaped (or that someone else
        committed) is left alone — this attempt no longer owns it.
        """
        now = self._now(now)
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT status, attempts, max_attempts FROM units "
                "WHERE unit_id = ? AND lease_owner = ? AND status = 'leased'",
                (unit_id, worker_id),
            ).fetchone()
            if row is None:
                current = conn.execute(
                    "SELECT status FROM units WHERE unit_id = ?", (unit_id,)
                ).fetchone()
                conn.execute("COMMIT")
                return current["status"] if current else "unknown"
            status = self._requeue_or_quarantine(
                conn, unit_id, row["attempts"], row["max_attempts"], error, now
            )
            conn.execute(
                "UPDATE workers SET current_unit = NULL, last_heartbeat = ? "
                "WHERE worker_id = ?",
                (now, worker_id),
            )
            conn.execute("COMMIT")
            return status
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        finally:
            conn.close()

    def _requeue_or_quarantine(
        self, conn, unit_id: str, attempts: int, max_attempts: int,
        error: str, now: float,
    ) -> str:
        """Shared tail of ``fail`` and ``reap`` (caller holds the txn)."""
        if attempts >= max_attempts:
            conn.execute(
                "UPDATE units SET status = 'quarantined', error = ?, "
                "lease_owner = NULL, lease_deadline = NULL, updated_at = ? "
                "WHERE unit_id = ?",
                (error, now, unit_id),
            )
            self._bump(conn, "quarantines")
            return "quarantined"
        delay = _backoff_delay(attempts, self.backoff_base, self.backoff_cap)
        conn.execute(
            "UPDATE units SET status = 'pending', error = ?, "
            "lease_owner = NULL, lease_deadline = NULL, not_before = ?, "
            "updated_at = ? WHERE unit_id = ?",
            (error, now + delay, now, unit_id),
        )
        self._bump(conn, "retries")
        return "pending"

    # -- the reaper -----------------------------------------------------------
    def reap(self, now: float | None = None) -> list[str]:
        """Requeue (or quarantine) every unit whose lease expired.

        Safe to call from anywhere, any number of times: the driver's
        result-poll loop, the supervisor's monitor, a CLI. Returns the
        reaped unit IDs.
        """
        now = self._now(now)
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT unit_id, attempts, max_attempts, lease_owner "
                "FROM units WHERE status = 'leased' AND lease_deadline < ?",
                (now,),
            ).fetchall()
            reaped = []
            for row in rows:
                self._bump(conn, "lease_expiries")
                self._requeue_or_quarantine(
                    conn,
                    row["unit_id"],
                    row["attempts"],
                    row["max_attempts"],
                    f"lease expired (held by {row['lease_owner']})",
                    now,
                )
                reaped.append(row["unit_id"])
            conn.execute("COMMIT")
            return reaped
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        finally:
            conn.close()

    # -- results --------------------------------------------------------------
    def unit(self, unit_id: str) -> dict | None:
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT * FROM units WHERE unit_id = ?", (unit_id,)
            ).fetchone()
        finally:
            conn.close()
        if row is None:
            return None
        return {
            "unit_id": row["unit_id"],
            "kind": row["kind"],
            "group_id": row["group_id"],
            "status": row["status"],
            "attempts": row["attempts"],
            "max_attempts": row["max_attempts"],
            "lease_owner": row["lease_owner"],
            "lease_deadline": row["lease_deadline"],
            "commit_count": row["commit_count"],
            "late_commits": row["late_commits"],
            "committed_by": row["committed_by"],
            "error": row["error"],
            "payload": json.loads(row["payload_json"]),
            "result": (
                json.loads(row["result_json"]) if row["result_json"] else None
            ),
        }

    def result(self, unit_id: str) -> dict | None:
        """A ``done`` unit's result dict, else None."""
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT result_json FROM units "
                "WHERE unit_id = ? AND status = 'done'",
                (unit_id,),
            ).fetchone()
        finally:
            conn.close()
        return json.loads(row["result_json"]) if row else None

    # -- workers --------------------------------------------------------------
    def register_worker(
        self, worker_id: str, pid: int | None = None, now: float | None = None
    ) -> None:
        now = self._now(now)
        conn = self._connect()
        try:
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO workers "
                    "(worker_id, pid, state, started_at, last_heartbeat, "
                    " units_done) VALUES (?, ?, 'alive', ?, ?, "
                    " COALESCE((SELECT units_done FROM workers "
                    "           WHERE worker_id = ?), 0))",
                    (worker_id, pid, now, now, worker_id),
                )
        finally:
            conn.close()

    def worker_beat(self, worker_id: str, now: float | None = None) -> None:
        """Refresh a worker's liveness stamp (idle workers, no lease)."""
        now = self._now(now)
        conn = self._connect()
        try:
            with conn:
                conn.execute(
                    "UPDATE workers SET last_heartbeat = ? WHERE worker_id = ?",
                    (now, worker_id),
                )
        finally:
            conn.close()

    def mark_worker(
        self, worker_id: str, state: str, now: float | None = None
    ) -> None:
        """Record a worker's state — an upsert, so a worker that died
        before it ever registered still shows up (as dead)."""
        now = self._now(now)
        conn = self._connect()
        try:
            with conn:
                conn.execute(
                    "INSERT INTO workers "
                    "(worker_id, state, started_at, last_heartbeat) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(worker_id) DO UPDATE SET state = excluded.state",
                    (worker_id, state, now, now),
                )
        finally:
            conn.close()

    def workers(self) -> list[dict]:
        conn = self._connect()
        try:
            rows = conn.execute(
                "SELECT * FROM workers ORDER BY started_at, worker_id"
            ).fetchall()
        finally:
            conn.close()
        return [dict(r) for r in rows]

    # -- status ---------------------------------------------------------------
    def status(self, now: float | None = None) -> dict:
        """The fabric's observable state (the ``/fabric`` endpoint body)."""
        now = self._now(now)
        conn = self._connect()
        try:
            by_status = {s: 0 for s in UNIT_STATUSES}
            for row in conn.execute(
                "SELECT status, COUNT(*) AS n FROM units GROUP BY status"
            ):
                by_status[row["status"]] = row["n"]
            counters = {k: 0 for k in COUNTER_KEYS}
            for row in conn.execute("SELECT key, value FROM counters"):
                counters[row["key"]] = row["value"]
            leases = [
                {
                    "unit_id": r["unit_id"],
                    "owner": r["lease_owner"],
                    "deadline_in": round(r["lease_deadline"] - now, 3),
                    "attempts": r["attempts"],
                }
                for r in conn.execute(
                    "SELECT unit_id, lease_owner, lease_deadline, attempts "
                    "FROM units WHERE status = 'leased' ORDER BY unit_id"
                )
            ]
            quarantined = [
                {
                    "unit_id": r["unit_id"],
                    "attempts": r["attempts"],
                    "error": r["error"],
                }
                for r in conn.execute(
                    "SELECT unit_id, attempts, error FROM units "
                    "WHERE status = 'quarantined' ORDER BY unit_id"
                )
            ]
            workers = [
                dict(r)
                for r in conn.execute(
                    "SELECT * FROM workers ORDER BY started_at, worker_id"
                )
            ]
        finally:
            conn.close()
        return {
            "units": by_status,
            "counters": counters,
            "leases": leases,
            "quarantined": quarantined,
            "workers": workers,
        }
