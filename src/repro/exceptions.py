"""Exception hierarchy for the XPlain reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SolverError(ReproError):
    """Base class for errors raised by the LP/MILP solver substrate."""


class InfeasibleError(SolverError):
    """The model has no feasible solution.

    Raised only by APIs documented to raise on infeasibility; the solver's
    ``solve`` entry points normally report infeasibility through the solution
    status instead.
    """


class UnboundedError(SolverError):
    """The model's objective is unbounded in the optimization direction."""


class ModelError(SolverError):
    """The model is malformed (e.g. a variable from another model was used)."""


class DslError(ReproError):
    """Base class for errors in the network-flow DSL."""


class GraphValidationError(DslError):
    """A flow graph violates a structural rule of its node behaviors."""


class CompilerError(ReproError):
    """The DSL-to-optimization compiler could not lower a construct."""


class AnalyzerError(ReproError):
    """The heuristic analyzer could not encode or solve an analysis."""


class SubspaceError(ReproError):
    """The adversarial subspace generator was configured inconsistently."""


class SearchError(ReproError):
    """The adaptive gap-search subsystem was misconfigured or overdrawn."""


class FabricError(ReproError):
    """The fault-tolerant analysis fabric hit an unrecoverable condition
    (a unit quarantined after exhausting its retries, a misconfigured
    queue, a dead fleet with inline fallback disabled)."""


class CampaignInterrupted(ReproError):
    """A campaign was stopped cooperatively at a unit boundary.

    Raised by :func:`repro.parallel.campaign.run_campaign` when its
    ``should_stop`` callback fires: every completed unit has already
    been persisted and the campaign's store row is back to ``pending``,
    so a later run (or a restarted service) resumes exactly where this
    one stopped.
    """

    def __init__(self, campaign_id: str, completed: int, total: int) -> None:
        self.campaign_id = campaign_id
        self.completed = completed
        self.total = total
        super().__init__(
            f"campaign {campaign_id!r} interrupted after "
            f"{completed}/{total} units (completed work is persisted)"
        )


class ServiceBusy(ReproError):
    """The analysis service's submission queue is at capacity.

    The HTTP layer maps this to ``429 Too Many Requests`` — the
    backpressure face of a bounded submit queue.
    """


class ExplainError(ReproError):
    """The explainer could not score or render a subspace."""


class GeneralizeError(ReproError):
    """The generalizer or instance generator hit an unusable configuration."""
