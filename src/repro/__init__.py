"""Reproduction of "Towards Safer Heuristics With XPlain" (HotNets 2024).

The public API is organized the way Fig. 3 of the paper draws the system:

* :mod:`repro.dsl` — the network-flow domain-specific language (§5.1);
* :mod:`repro.compiler` — DSL -> optimization lowering, redundancy
  elimination, and the Appendix-A MILP -> DSL encoder;
* :mod:`repro.analyzer` — the MetaOpt-style heuristic analyzer substrate;
* :mod:`repro.subspace` — the adversarial subspace generator and
  significance checker (§5.2);
* :mod:`repro.explain` — the Type-2 explainer (§5.3);
* :mod:`repro.generalize` — the Type-3 generalizer and instance generator
  (§5.4);
* :mod:`repro.domains` — the paper's running examples (demand pinning,
  vector bin packing) plus the scheduling extension;
* :mod:`repro.core` — the end-to-end XPlain pipeline;
* :mod:`repro.solver` — the LP/MILP substrate everything compiles to.

Quickstart::

    from repro import XPlain
    from repro.domains.binpack import first_fit_problem

    report = XPlain(first_fit_problem(num_balls=4, num_bins=3)).run()
    print(report.summary())
"""

from __future__ import annotations

#: the single source of the package version: the CLI's ``--version``,
#: the service's ``GET /version``, and packaging all read this value
__version__ = "1.1.0"

_LAZY_EXPORTS = {
    "XPlain": "repro.core.pipeline",
    "XPlainConfig": "repro.core.config",
    "XPlainReport": "repro.core.results",
    "CampaignSpec": "repro.parallel.campaign",
    "load_campaign_spec": "repro.parallel.campaign",
    "run_campaign": "repro.parallel.campaign",
    "RunStore": "repro.store",
    "AnalysisService": "repro.service",
}

__all__ = [
    "AnalysisService",
    "CampaignSpec",
    "RunStore",
    "XPlain",
    "XPlainConfig",
    "XPlainReport",
    "__version__",
    "load_campaign_spec",
    "run_campaign",
]


def __getattr__(name: str):
    """Lazily import the top-level pipeline objects.

    Keeps ``import repro.solver`` usable without pulling in the whole
    pipeline (and its heavier dependencies) at import time.
    """
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
