"""Edge heatmaps: aggregated Type-2 explanations (§5.3, Fig. 4 colors).

"Such a heatmap of the differences between the benchmark and the heuristic
shows how inputs in the subspace interfere with the heuristic." Mean edge
scores near -1 are the figure's intense red (heuristic-only edges), near +1
intense blue (benchmark-only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analyzer.interface import AnalyzedProblem
from repro.exceptions import ExplainError
from repro.explain.scoring import EdgeKey, score_sample
from repro.subspace.region import Box, Region


@dataclass
class EdgeScore:
    """Aggregated statistics of one edge across samples."""

    edge: EdgeKey
    mean_score: float
    heuristic_use_rate: float
    benchmark_use_rate: float
    mean_heuristic_flow: float
    mean_benchmark_flow: float
    samples: int

    @property
    def flow_delta(self) -> float:
        """Mean benchmark-minus-heuristic flow on this edge.

        §5.3 open question: "The heuristic and benchmark also differ in how
        much flow they route on each edge." The three-way score only sees
        *whether* an edge is used; this delta carries the volumes, so an
        edge both sides use but load differently still surfaces.
        """
        return self.mean_benchmark_flow - self.mean_heuristic_flow

    @property
    def color(self) -> str:
        """Fig. 4 color bucket: red = heuristic-only, blue = benchmark-only."""
        if self.mean_score <= -0.6:
            return "strong-red"
        if self.mean_score <= -0.2:
            return "red"
        if self.mean_score >= 0.6:
            return "strong-blue"
        if self.mean_score >= 0.2:
            return "blue"
        return "neutral"

    def describe(self) -> str:
        return (
            f"{self.edge[0]} -> {self.edge[1]}: score {self.mean_score:+.2f} "
            f"({self.color}), H-use {self.heuristic_use_rate:.0%}, "
            f"B-use {self.benchmark_use_rate:.0%}"
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "edge": [str(self.edge[0]), str(self.edge[1])],
            "mean_score": float(self.mean_score),
            "heuristic_use_rate": float(self.heuristic_use_rate),
            "benchmark_use_rate": float(self.benchmark_use_rate),
            "mean_heuristic_flow": float(self.mean_heuristic_flow),
            "mean_benchmark_flow": float(self.mean_benchmark_flow),
            "samples": int(self.samples),
        }

    @staticmethod
    def from_dict(data: dict) -> "EdgeScore":
        return EdgeScore(
            edge=(data["edge"][0], data["edge"][1]),
            mean_score=float(data["mean_score"]),
            heuristic_use_rate=float(data["heuristic_use_rate"]),
            benchmark_use_rate=float(data["benchmark_use_rate"]),
            mean_heuristic_flow=float(data["mean_heuristic_flow"]),
            mean_benchmark_flow=float(data["mean_benchmark_flow"]),
            samples=int(data["samples"]),
        )


@dataclass
class Heatmap:
    """The full Type-2 explanation of one subspace."""

    scores: dict[EdgeKey, EdgeScore]
    num_samples: int
    region_description: str = ""

    def score(self, src: str, dst: str) -> EdgeScore:
        return self.scores[(src, dst)]

    def heuristic_only_edges(self, cutoff: float = 0.2) -> list[EdgeScore]:
        """Edges the heuristic uses and the benchmark avoids (red)."""
        out = [s for s in self.scores.values() if s.mean_score <= -cutoff]
        return sorted(out, key=lambda s: s.mean_score)

    def benchmark_only_edges(self, cutoff: float = 0.2) -> list[EdgeScore]:
        """Edges the benchmark uses and the heuristic avoids (blue)."""
        out = [s for s in self.scores.values() if s.mean_score >= cutoff]
        return sorted(out, key=lambda s: -s.mean_score)

    def used_edges(self) -> list[EdgeScore]:
        return [
            s
            for s in self.scores.values()
            if s.heuristic_use_rate > 0 or s.benchmark_use_rate > 0
        ]

    def flow_deltas(self, min_delta: float = 0.0) -> list[EdgeScore]:
        """Edges ranked by |benchmark - heuristic| mean flow (§5.3 open q.).

        Catches volume divergence that the -1/0/+1 score misses: an edge
        both algorithms *use* (score 0) but load very differently.
        """
        out = [
            s
            for s in self.scores.values()
            if abs(s.flow_delta) > min_delta
        ]
        return sorted(out, key=lambda s: -abs(s.flow_delta))

    def render_flow_deltas(self, max_rows: int = 20) -> str:
        """Volume-divergence table complementing :meth:`render`."""
        rows = self.flow_deltas(min_delta=1e-9)
        lines = [
            f"flow deltas over {self.num_samples} samples "
            "(+ = benchmark routes more on the edge)",
        ]
        if not rows:
            lines.append("  (no volume divergence)")
            return "\n".join(lines)
        widest = max(abs(r.flow_delta) for r in rows)
        for score in rows[:max_rows]:
            bar_len = int(round(abs(score.flow_delta) / widest * 10))
            side = "B" if score.flow_delta > 0 else "H"
            bar = (">" if side == "B" else "<") * bar_len
            lines.append(
                f"  {score.edge[0]:>24} -> {score.edge[1]:<24} "
                f"{score.flow_delta:+10.4g} {side}{bar} "
                f"(H {score.mean_heuristic_flow:.4g} vs "
                f"B {score.mean_benchmark_flow:.4g})"
            )
        return "\n".join(lines)

    def render(self, max_rows: int = 40) -> str:
        """ASCII heatmap: one row per divergent edge, ## bars for intensity."""
        rows = sorted(
            self.used_edges(), key=lambda s: s.mean_score
        )
        interesting = [r for r in rows if abs(r.mean_score) >= 0.05]
        if not interesting:
            interesting = rows
        lines = [
            f"edge heatmap over {self.num_samples} samples "
            f"(score -1 = heuristic-only/red, +1 = benchmark-only/blue)",
        ]
        if self.region_description:
            lines.append(f"subspace: {self.region_description}")
        for score in interesting[:max_rows]:
            bar_len = int(round(abs(score.mean_score) * 10))
            side = "H" if score.mean_score < 0 else "B"
            bar = ("<" if side == "H" else ">") * bar_len
            lines.append(
                f"  {score.edge[0]:>24} -> {score.edge[1]:<24} "
                f"{score.mean_score:+.2f} {side}{bar}"
            )
        hidden = len(interesting) - max_rows
        if hidden > 0:
            lines.append(f"  ... {hidden} more edges")
        return "\n".join(lines)


def build_heatmap(
    problem: AnalyzedProblem,
    where: Box | Region | np.ndarray,
    num_samples: int,
    rng: np.random.Generator,
) -> Heatmap:
    """Sample a subspace and aggregate edge scores (the Fig. 4 pipeline).

    ``where`` is a region/box to sample, or an explicit (n, dim) array of
    input points.
    """
    if problem.heuristic_flows is None or problem.benchmark_flows is None:
        raise ExplainError(
            f"problem {problem.name!r} does not expose edge flows"
        )
    if isinstance(where, np.ndarray):
        points = np.atleast_2d(where)
    else:
        points = where.sample(rng, num_samples)
    if len(points) == 0:
        raise ExplainError("no sample points for the heatmap")

    totals: dict[EdgeKey, dict[str, float]] = {}
    for x in points:
        heuristic = problem.heuristic_flows(x)
        benchmark = problem.benchmark_flows(x)
        for key, sample in score_sample(heuristic, benchmark).items():
            bucket = totals.setdefault(
                key,
                {
                    "score": 0.0,
                    "h_use": 0.0,
                    "b_use": 0.0,
                    "h_flow": 0.0,
                    "b_flow": 0.0,
                },
            )
            bucket["score"] += sample.score
            bucket["h_use"] += 1.0 if sample.heuristic_uses else 0.0
            bucket["b_use"] += 1.0 if sample.benchmark_uses else 0.0
            bucket["h_flow"] += sample.heuristic_flow
            bucket["b_flow"] += sample.benchmark_flow

    n = float(len(points))
    scores = {
        key: EdgeScore(
            edge=key,
            mean_score=bucket["score"] / n,
            heuristic_use_rate=bucket["h_use"] / n,
            benchmark_use_rate=bucket["b_use"] / n,
            mean_heuristic_flow=bucket["h_flow"] / n,
            mean_benchmark_flow=bucket["b_flow"] / n,
            samples=int(n),
        )
        for key, bucket in totals.items()
    }
    return Heatmap(scores=scores, num_samples=int(n))
