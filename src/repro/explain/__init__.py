"""The Type-2 explainer (§5.3): edge scoring, heatmaps, narratives."""

from repro.explain.heatmap import EdgeScore, Heatmap, build_heatmap
from repro.explain.report import (
    Divergence,
    ExplanationReport,
    explain_heatmap,
)
from repro.explain.scoring import FLOW_TOL, EdgeSample, score_sample
from repro.explain.summarize import (
    GroupSummary,
    compression_ratio,
    default_group_key,
    summarize_heatmap,
)

__all__ = [
    "Divergence",
    "EdgeSample",
    "EdgeScore",
    "ExplanationReport",
    "FLOW_TOL",
    "GroupSummary",
    "Heatmap",
    "build_heatmap",
    "compression_ratio",
    "default_group_key",
    "explain_heatmap",
    "score_sample",
    "summarize_heatmap",
]
