"""Heatmap summarization for large instances (§5.3 open question).

"As the instance size grows, the above heatmap may become harder to
interpret. We need mechanisms that allow us to summarize the information in
this heatmap in a way that the user can interpret." This module provides
the grouping mechanism: edges are bucketed by a user key (defaulting to the
metadata roles/groups the DSL carries) and each bucket reports aggregate
scores. The T2SCALE benchmark measures the compression this buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dsl.graph import FlowGraph
from repro.explain.heatmap import EdgeScore, Heatmap


@dataclass
class GroupSummary:
    """Aggregate of one edge bucket."""

    key: str
    mean_score: float
    total_edges: int
    divergent_edges: int
    strongest: EdgeScore

    def describe(self) -> str:
        return (
            f"{self.key}: mean score {self.mean_score:+.2f} over "
            f"{self.total_edges} edges ({self.divergent_edges} divergent); "
            f"strongest: {self.strongest.edge[0]} -> {self.strongest.edge[1]} "
            f"({self.strongest.mean_score:+.2f})"
        )


def default_group_key(graph: FlowGraph) -> Callable[[EdgeScore], str]:
    """Bucket edges by (src group/role) -> (dst group/role)."""

    def key(score: EdgeScore) -> str:
        src, dst = score.edge
        def label(name: str) -> str:
            if not graph.has_node(name):
                return name
            node = graph.node(name)
            return node.group() or node.role() or name

        return f"{label(src)} -> {label(dst)}"

    return key


def summarize_heatmap(
    heatmap: Heatmap,
    graph: FlowGraph,
    key: Callable[[EdgeScore], str] | None = None,
    cutoff: float = 0.2,
) -> list[GroupSummary]:
    """Group edge scores and rank groups by divergence."""
    key = key or default_group_key(graph)
    buckets: dict[str, list[EdgeScore]] = {}
    for score in heatmap.used_edges():
        buckets.setdefault(key(score), []).append(score)
    summaries = []
    for bucket_key, scores in buckets.items():
        mean = float(np.mean([s.mean_score for s in scores]))
        divergent = sum(1 for s in scores if abs(s.mean_score) >= cutoff)
        strongest = max(scores, key=lambda s: abs(s.mean_score))
        summaries.append(
            GroupSummary(
                key=bucket_key,
                mean_score=mean,
                total_edges=len(scores),
                divergent_edges=divergent,
                strongest=strongest,
            )
        )
    summaries.sort(key=lambda s: -abs(s.mean_score))
    return summaries


def compression_ratio(heatmap: Heatmap, summaries: list[GroupSummary]) -> float:
    """How much smaller the summary is than the raw heatmap (T2SCALE)."""
    raw = max(1, len(heatmap.used_edges()))
    return len(summaries) / raw
