"""Narrative Type-2 explanations.

Turns a heatmap plus the DSL graph's metadata into sentences of the kind
the paper's Fig. 4 captions give: "DP uses the shortest path for the demand
between 1~>3 and the optimal does not" / "FF places a large ball (B0) in
the first bin, causing it to have to place the last ball differently, too."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.graph import FlowGraph
from repro.explain.heatmap import EdgeScore, Heatmap


@dataclass
class Divergence:
    """One heuristic-vs-benchmark disagreement, with graph context."""

    edge_score: EdgeScore
    src_role: str
    dst_role: str
    sentence: str

    def to_dict(self) -> dict:
        return {
            "edge_score": self.edge_score.to_dict(),
            "src_role": self.src_role,
            "dst_role": self.dst_role,
            "sentence": self.sentence,
        }

    @staticmethod
    def from_dict(data: dict) -> "Divergence":
        return Divergence(
            edge_score=EdgeScore.from_dict(data["edge_score"]),
            src_role=str(data["src_role"]),
            dst_role=str(data["dst_role"]),
            sentence=str(data["sentence"]),
        )


@dataclass
class ExplanationReport:
    """A ranked, human-readable account of one subspace's heatmap."""

    heuristic_side: list[Divergence] = field(default_factory=list)
    benchmark_side: list[Divergence] = field(default_factory=list)
    headline: str = ""

    def render(self, max_items: int = 6) -> str:
        lines = []
        if self.headline:
            lines.append(self.headline)
        if self.heuristic_side:
            lines.append("the heuristic (and not the benchmark):")
            for d in self.heuristic_side[:max_items]:
                lines.append(f"  - {d.sentence}")
        if self.benchmark_side:
            lines.append("the benchmark (and not the heuristic):")
            for d in self.benchmark_side[:max_items]:
                lines.append(f"  - {d.sentence}")
        if not self.heuristic_side and not self.benchmark_side:
            lines.append(
                "no systematic decision divergence in this subspace "
                "(the gap comes from flow volumes, not edge choices)"
            )
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; round-trips exactly through :meth:`from_dict`.

        Campaign reports and the persistent run store keep explanation
        reports in this form, so a stored run renders the same narrative
        as the live pipeline did.
        """
        return {
            "headline": self.headline,
            "heuristic_side": [d.to_dict() for d in self.heuristic_side],
            "benchmark_side": [d.to_dict() for d in self.benchmark_side],
        }

    @staticmethod
    def from_dict(data: dict) -> "ExplanationReport":
        return ExplanationReport(
            heuristic_side=[
                Divergence.from_dict(d) for d in data.get("heuristic_side", [])
            ],
            benchmark_side=[
                Divergence.from_dict(d) for d in data.get("benchmark_side", [])
            ],
            headline=str(data.get("headline", "")),
        )


def explain_heatmap(
    heatmap: Heatmap,
    graph: FlowGraph,
    cutoff: float = 0.2,
) -> ExplanationReport:
    """Build the narrative report for one subspace's heatmap."""
    report = ExplanationReport()
    for side, edges in (
        ("heuristic", heatmap.heuristic_only_edges(cutoff)),
        ("benchmark", heatmap.benchmark_only_edges(cutoff)),
    ):
        for score in edges:
            src, dst = score.edge
            if not (graph.has_node(src) and graph.has_node(dst)):
                continue
            src_node, dst_node = graph.node(src), graph.node(dst)
            sentence = _sentence(side, score, src_node, dst_node)
            divergence = Divergence(
                edge_score=score,
                src_role=src_node.role(),
                dst_role=dst_node.role(),
                sentence=sentence,
            )
            if side == "heuristic":
                report.heuristic_side.append(divergence)
            else:
                report.benchmark_side.append(divergence)
    report.headline = _headline(report)
    return report


def _sentence(side: str, score: EdgeScore, src_node, dst_node) -> str:
    """One domain-aware sentence for a divergent edge."""
    who = "the heuristic" if side == "heuristic" else "the benchmark"
    rate = (
        score.heuristic_use_rate
        if side == "heuristic"
        else score.benchmark_use_rate
    )
    src_role = src_node.role()
    dst_role = dst_node.role()
    if src_role == "demand" and dst_role == "path":
        flavor = (
            "its shortest path"
            if src_node.metadata.get("shortest_path")
            == dst_node.name.strip("p[]")
            else f"path {dst_node.name}"
        )
        return (
            f"{who} routes demand {src_node.metadata.get('src')}~>"
            f"{src_node.metadata.get('dst')} over {flavor} "
            f"in {rate:.0%} of samples (score {score.mean_score:+.2f})"
        )
    if src_role == "ball" and dst_role == "bin":
        return (
            f"{who} places ball {src_node.metadata.get('index')} into bin "
            f"{dst_node.metadata.get('index')} in {rate:.0%} of samples "
            f"(score {score.mean_score:+.2f})"
        )
    if src_role == "demand" and dst_node.role() == "unmet":
        return (
            f"{who} leaves demand {src_node.metadata.get('src')}~>"
            f"{src_node.metadata.get('dst')} (partially) unmet in "
            f"{rate:.0%} of samples (score {score.mean_score:+.2f})"
        )
    return (
        f"{who} sends flow on {score.edge[0]} -> {score.edge[1]} in "
        f"{rate:.0%} of samples (score {score.mean_score:+.2f})"
    )


def _headline(report: ExplanationReport) -> str:
    n_h = len(report.heuristic_side)
    n_b = len(report.benchmark_side)
    if n_h == 0 and n_b == 0:
        return "heuristic and benchmark make the same structural decisions here"
    return (
        f"in this subspace the heuristic and benchmark diverge on "
        f"{n_h + n_b} edges ({n_h} heuristic-only, {n_b} benchmark-only):"
    )
