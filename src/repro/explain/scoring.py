"""Per-edge scoring of heuristic-vs-benchmark decisions (§5.3).

"We run samples from within each contiguous subspace through the DSL and
score edges based on if: (1) both the benchmark and the heuristic send flow
on that edge (score = 0); (2) only the benchmark sends flow (score = 1);
or (3) only the heuristic sends flow (score = -1)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzer.interface import EdgeFlows

#: Flows below this are "no flow" for scoring purposes.
FLOW_TOL = 1e-6

EdgeKey = tuple[str, str]


@dataclass
class EdgeSample:
    """One sample's usage of one edge."""

    heuristic_flow: float
    benchmark_flow: float

    @property
    def heuristic_uses(self) -> bool:
        return self.heuristic_flow > FLOW_TOL

    @property
    def benchmark_uses(self) -> bool:
        return self.benchmark_flow > FLOW_TOL

    @property
    def score(self) -> int:
        """The paper's three-way score: 0 both / +1 benchmark-only / -1
        heuristic-only (and 0 when neither uses the edge)."""
        if self.heuristic_uses and self.benchmark_uses:
            return 0
        if self.benchmark_uses:
            return 1
        if self.heuristic_uses:
            return -1
        return 0

    @property
    def either_uses(self) -> bool:
        return self.heuristic_uses or self.benchmark_uses


def score_sample(
    heuristic: EdgeFlows, benchmark: EdgeFlows
) -> dict[EdgeKey, EdgeSample]:
    """Score every edge that appears in either flow assignment.

    Keys are sorted: set order depends on the per-process string hash
    seed, and it leaks into heatmap/explanation ordering wherever two
    edges tie on score — reports must be process-independent (the CI
    search-ablation job diffs them across invocations).
    """
    keys = sorted(set(heuristic) | set(benchmark))
    return {
        key: EdgeSample(
            heuristic_flow=heuristic.get(key, 0.0),
            benchmark_flow=benchmark.get(key, 0.0),
        )
        for key in keys
    }
