"""Persistent, content-addressed storage for XPlain runs.

The store makes XPlain longitudinal: campaign results persist, dedupe,
and stay queryable across CLI invocations and service restarts instead
of vanishing with each process (DESIGN.md §10).

* :class:`~repro.store.runstore.RunStore` — SQLite-backed campaign/run
  storage with crash-safe resume and typed round-trips of
  ``OracleStats``, generator regions, and explanation reports;
* :class:`~repro.store.gapstore.GapSpill` — the on-disk second level of
  the gap-oracle memo cache, so memoization survives across processes
  and campaigns;
* :mod:`~repro.store.ids` — the content-addressing scheme (``run-…``,
  ``camp-…`` IDs) everything is keyed by.
"""

from repro.store.gapstore import GapSpill, problem_cache_key
from repro.store.ids import campaign_id_for, canonical_json, run_id_for
from repro.store.runstore import RunStore

__all__ = [
    "GapSpill",
    "RunStore",
    "campaign_id_for",
    "canonical_json",
    "problem_cache_key",
    "run_id_for",
]
