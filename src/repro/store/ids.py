"""Content-addressed identifiers for the run store.

A run ID is a stable hash of everything that determines a campaign
unit's *deterministic* output: the problem spec, the merged config
overrides, the derived seed, and the report schema version. Two
campaigns that contain the same unit therefore share one stored run —
that is the store's dedupe — and resubmitting a spec reuses completed
work instead of re-solving it.

Environmental knobs that cannot change a unit's output (where the store
lives, in-memory cache caps) are stripped before hashing, so moving a
store or retuning a cache never orphans completed runs.
"""

from __future__ import annotations

import hashlib
import json

#: bump when the per-unit report schema changes shape: old stored runs
#: then stop resolving (they describe a different report) instead of
#: being replayed with missing/renamed fields
#: (2: reports gained the "search" block + oracle_calls counter)
REPORT_SCHEMA_VERSION = 2

#: config keys that cannot affect a unit's deterministic output:
#: store_path is forced to None and executor/workers to serial/1 inside
#: campaign units (execute_job: jobs parallelize across the pool, not
#: within it), and store_retention only drives gc. cache_max_entries
#: stays semantic — LRU eviction changes the report's hit/miss counters.
_NON_SEMANTIC_CONFIG = ("store_path", "store_retention", "executor", "workers")


def canonical_json(data) -> str:
    """The one serialization content addresses are computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_digest(prefix: str, data) -> str:
    payload = canonical_json(data).encode()
    return f"{prefix}-{hashlib.sha256(payload).hexdigest()[:16]}"


def semantic_unit_payload(payload: dict) -> dict:
    """A unit payload reduced to its output-determining fields."""
    config = {
        k: v
        for k, v in payload.get("config", {}).items()
        if k not in _NON_SEMANTIC_CONFIG
    }
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "name": payload["name"],
        "problem": payload["problem"],
        "config": config,
        "seed": payload["seed"],
    }


def run_id_for(payload: dict) -> str:
    """The content-addressed run ID of one campaign-unit payload."""
    return content_digest("run", semantic_unit_payload(payload))


def campaign_id_for(name: str, seed: int, unit_payloads: list[dict]) -> str:
    """The content-addressed campaign ID of a fully planned campaign.

    Addressing the *planned units* (not the raw spec text) means two
    spellings of the same campaign — reordered keys, explicit seeds that
    match the derived ones — collapse to the same ID.
    """
    return content_digest(
        "camp",
        {
            "schema": REPORT_SCHEMA_VERSION,
            "name": name,
            "seed": seed,
            "units": [semantic_unit_payload(p) for p in unit_payloads],
        },
    )
