"""The persistent, content-addressed run store.

:class:`RunStore` persists campaign specs, per-unit reports (including
merged :class:`~repro.oracle.stats.OracleStats` counters, generator
regions, and explanation reports), and campaign aggregates in one SQLite
database, keyed by the content-addressed IDs of :mod:`repro.store.ids`:

* ``runs`` rows are immutable facts — "this unit payload produces this
  report" — shared by every campaign that plans the same unit;
* ``campaigns`` rows track one submitted spec's lifecycle
  (``pending -> running -> done | failed``) plus its aggregate report;
* ``campaign_runs`` maps a campaign's unit positions onto run IDs.

A campaign interrupted at any point resumes by skipping the run IDs that
already have ``done`` rows; PR 2's determinism guarantee (derived
per-unit seeds, placement-free units) makes the resumed output
bit-identical to an uninterrupted run.

Every public method opens its own short-lived connection, so one
:class:`RunStore` value can be shared freely across service threads and
handed to campaign code in other processes.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import AnalyzerError
from repro.store.db import connect, store_db_path

#: campaign lifecycle states
CAMPAIGN_STATUSES = ("pending", "running", "done", "failed")


def _maybe_json(text: str | None):
    return json.loads(text) if text else None


class RunStore:
    """SQLite-backed storage for campaigns and their unit runs."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        # Eager open: create the schema (and surface unwritable paths /
        # newer-schema databases) at construction, not mid-campaign.
        connect(self.path).close()

    @property
    def db_path(self) -> Path:
        return store_db_path(self.path)

    @contextmanager
    def _conn(self):
        """One per-operation connection: commit on success, always close.

        ``__init__`` already created and version-checked the schema, so
        per-operation connections skip that work.
        """
        conn = connect(self.path, init=False)
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    # -- campaigns ----------------------------------------------------------
    def register_campaign(
        self,
        campaign_id: str,
        name: str,
        seed: int,
        spec_data: dict,
        planned: list[tuple[str, str]],
    ) -> None:
        """Insert a campaign and its (run_id, job_name) plan, idempotently.

        Re-registering an existing campaign refreshes nothing but is
        harmless — content addressing guarantees the plan is identical.
        """
        now = time.time()
        with self._conn() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(campaign_id, name, seed, spec_json, status, "
                " created_at, updated_at) VALUES (?, ?, ?, ?, 'pending', ?, ?)",
                (campaign_id, name, seed, json.dumps(spec_data), now, now),
            )
            conn.executemany(
                "INSERT OR REPLACE INTO campaign_runs "
                "(campaign_id, position, run_id, job_name) VALUES (?, ?, ?, ?)",
                [
                    (campaign_id, position, run_id, job_name)
                    for position, (run_id, job_name) in enumerate(planned)
                ],
            )

    def set_campaign_status(
        self,
        campaign_id: str,
        status: str,
        error: str | None = None,
        report: dict | None = None,
    ) -> None:
        if status not in CAMPAIGN_STATUSES:
            raise AnalyzerError(
                f"unknown campaign status {status!r}; "
                f"expected one of {CAMPAIGN_STATUSES}"
            )
        with self._conn() as conn:
            updated = conn.execute(
                "UPDATE campaigns SET status = ?, error = ?, "
                "report_json = COALESCE(?, report_json), updated_at = ? "
                "WHERE campaign_id = ?",
                (
                    status,
                    error,
                    json.dumps(report) if report is not None else None,
                    time.time(),
                    campaign_id,
                ),
            ).rowcount
        if updated == 0:
            raise AnalyzerError(f"unknown campaign {campaign_id!r}")

    def campaign(self, campaign_id: str) -> dict | None:
        """One campaign's row plus its per-position run statuses."""
        with self._conn() as conn:
            row = conn.execute(
                "SELECT * FROM campaigns WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
            if row is None:
                return None
            runs = conn.execute(
                "SELECT cr.position, cr.run_id, cr.job_name, "
                "       COALESCE(r.status, 'pending') AS status "
                "FROM campaign_runs cr LEFT JOIN runs r USING (run_id) "
                "WHERE cr.campaign_id = ? ORDER BY cr.position",
                (campaign_id,),
            ).fetchall()
        return {
            "campaign_id": row["campaign_id"],
            "name": row["name"],
            "seed": row["seed"],
            "status": row["status"],
            "error": row["error"],
            "spec": json.loads(row["spec_json"]),
            "report": _maybe_json(row["report_json"]),
            "created_at": row["created_at"],
            "updated_at": row["updated_at"],
            "runs": [
                {
                    "position": r["position"],
                    "run_id": r["run_id"],
                    "job_name": r["job_name"],
                    "status": r["status"],
                }
                for r in runs
            ],
        }

    def list_campaigns(self) -> list[dict]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT campaign_id, name, seed, status, created_at, "
                "updated_at, (SELECT COUNT(*) FROM campaign_runs cr "
                " WHERE cr.campaign_id = campaigns.campaign_id) AS num_runs, "
                "(SELECT COUNT(*) FROM campaign_runs cr "
                " JOIN runs r USING (run_id) "
                " WHERE cr.campaign_id = campaigns.campaign_id "
                " AND r.status = 'done') AS num_done "
                "FROM campaigns ORDER BY created_at"
            ).fetchall()
        return [dict(r) for r in rows]

    # -- runs ---------------------------------------------------------------
    def record_run(
        self,
        run_id: str,
        payload: dict,
        report: dict | None,
        status: str = "done",
        error: str | None = None,
    ) -> None:
        """Persist one unit's outcome (timing split out of the report)."""
        deterministic = None
        timing = None
        if report is not None:
            deterministic = {k: v for k, v in report.items() if k != "timing"}
            timing = report.get("timing", {})
        now = time.time()
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO runs "
                "(run_id, payload_json, status, report_json, timing_json, "
                " error, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, "
                " COALESCE((SELECT created_at FROM runs WHERE run_id = ?), ?),"
                " ?)",
                (
                    run_id,
                    json.dumps(payload),
                    status,
                    json.dumps(deterministic) if deterministic else None,
                    json.dumps(timing) if timing is not None else None,
                    error,
                    run_id,
                    now,
                    now,
                ),
            )

    def run(self, run_id: str) -> dict | None:
        with self._conn() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        return {
            "run_id": row["run_id"],
            "status": row["status"],
            "error": row["error"],
            "payload": json.loads(row["payload_json"]),
            "report": _maybe_json(row["report_json"]),
            "timing": _maybe_json(row["timing_json"]) or {},
            "created_at": row["created_at"],
            "updated_at": row["updated_at"],
        }

    def completed_report(self, run_id: str) -> dict | None:
        """The full report of a ``done`` run (timing re-merged), else None."""
        run = self.run(run_id)
        if run is None or run["status"] != "done" or run["report"] is None:
            return None
        report = dict(run["report"])
        report["timing"] = dict(run["timing"])
        return report

    def list_runs(self) -> list[dict]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT run_id, status, created_at, updated_at "
                "FROM runs ORDER BY created_at"
            ).fetchall()
        return [dict(r) for r in rows]

    # -- typed round-trips --------------------------------------------------
    def run_stats(self, run_id: str):
        """The stored run's oracle counters as an `OracleStats`."""
        from repro.oracle.stats import OracleStats

        report = self.completed_report(run_id)
        if report is None:
            raise AnalyzerError(f"no completed run {run_id!r} in store")
        timing = report.get("timing", {})
        return OracleStats.from_dict(
            {
                **report.get("oracle", {}),
                **{
                    k: timing[k]
                    for k in ("lp_seconds", "eval_seconds")
                    if k in timing
                },
            }
        )

    def run_regions(self, run_id: str) -> list:
        """The stored run's generator regions as `Region` values."""
        from repro.subspace.region import Region

        report = self.completed_report(run_id)
        if report is None:
            raise AnalyzerError(f"no completed run {run_id!r} in store")
        subspaces = report.get("subspaces", [])
        return [Region.from_dict(s["region"]) for s in subspaces]

    def run_explanations(self, run_id: str) -> list:
        """The stored run's narratives as `ExplanationReport` values."""
        from repro.explain.report import ExplanationReport

        report = self.completed_report(run_id)
        if report is None:
            raise AnalyzerError(f"no completed run {run_id!r} in store")
        return [
            ExplanationReport.from_dict(s["explanation"])
            for s in report.get("subspaces", [])
            if s.get("explanation") is not None
        ]

    def run_search_trace(self, run_id: str):
        """The stored run's search audit log as a `SearchTrace`.

        Returns None for reports persisted before the search subsystem
        existed (their ``"search"`` block is absent).
        """
        from repro.search.trace import SearchTrace

        report = self.completed_report(run_id)
        if report is None:
            raise AnalyzerError(f"no completed run {run_id!r} in store")
        trace = (report.get("search") or {}).get("trace")
        return None if trace is None else SearchTrace.from_dict(trace)

    # -- retention ----------------------------------------------------------
    def gc(self, keep: int) -> dict:
        """Drop all but the ``keep`` most recently updated *finished*
        campaigns.

        Only terminal campaigns (``done``/``failed``) are eligible —
        queued or running work is never collected out from under the
        service. Runs still referenced by a surviving campaign are kept
        (they are shared facts); everything orphaned is deleted.
        ``keep=0`` clears every finished campaign. Returns deletion
        counts.
        """
        if keep < 0:
            raise AnalyzerError(f"gc keep must be >= 0, got {keep}")
        with self._conn() as conn:
            doomed = [
                r["campaign_id"]
                for r in conn.execute(
                    "SELECT campaign_id FROM campaigns "
                    "WHERE status IN ('done', 'failed') "
                    "ORDER BY updated_at DESC LIMIT -1 OFFSET ?",
                    (keep,),
                ).fetchall()
            ]
            for campaign_id in doomed:
                conn.execute(
                    "DELETE FROM campaign_runs WHERE campaign_id = ?",
                    (campaign_id,),
                )
                conn.execute(
                    "DELETE FROM campaigns WHERE campaign_id = ?",
                    (campaign_id,),
                )
            runs_deleted = conn.execute(
                "DELETE FROM runs WHERE run_id NOT IN "
                "(SELECT run_id FROM campaign_runs)"
            ).rowcount
        return {"campaigns_deleted": len(doomed), "runs_deleted": runs_deleted}
