"""On-disk spill level for the gap-oracle memo cache.

A :class:`GapSpill` is one problem's namespace in the store's
``gap_entries`` table, shaped to plug straight into
:class:`repro.oracle.cache.GapCache` as its ``spill`` store: ``get`` is
consulted on in-memory misses, ``put`` receives every inserted entry
(write-through, buffered). Because entries are values of the oracle
function itself, sharing them across processes and campaigns can only
save recomputation, never change a result.

The namespace key hashes the problem's rebuild spec *and* the cache
resolution — a coarser grid assigns different meanings to the same cell
coordinates, so resolutions must not share entries.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.store.db import connect
from repro.store.ids import canonical_json, content_digest

#: buffered writes before an automatic flush
DEFAULT_BUFFER_SIZE = 512


def problem_cache_key(problem, resolution: float) -> str | None:
    """The stable gap-entry namespace of one problem + cache resolution.

    Returns ``None`` for problems without a picklable spec: a bare name
    is not a sound identity (two different problems can share one), and
    serving another problem's cached gap values would silently corrupt
    results — the one thing a value cache must never do. Spec-less
    problems simply run without persistence.
    """
    spec = getattr(problem, "spec", None)
    if spec is None:
        return None
    return content_digest(
        "gap", {"problem": spec.to_dict(), "resolution": resolution}
    )


class GapSpill:
    """Buffered read/write access to one problem's spilled gap entries."""

    def __init__(
        self,
        store_path: str | Path,
        problem_key: str,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
    ) -> None:
        self.store_path = Path(store_path)
        self.problem_key = problem_key
        self.buffer_size = buffer_size
        self._buffer: dict[str, tuple[float, float, int]] = {}
        self._conn: sqlite3.Connection | None = None
        #: True once the namespace is known to have no rows on disk:
        #: lets ``get`` skip the per-point SELECT on a fresh store,
        #: where every lookup is a guaranteed miss. Concurrent writers
        #: can only make this stale toward extra misses (recompute),
        #: never wrong values.
        self._known_empty: bool | None = None

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = connect(self.store_path)
        return self._conn

    @staticmethod
    def _cell(key: tuple) -> str:
        return canonical_json(list(key))

    def _disk_empty(self) -> bool:
        if self._known_empty is None:
            row = self._connection().execute(
                "SELECT 1 FROM gap_entries WHERE problem_key = ? LIMIT 1",
                (self.problem_key,),
            ).fetchone()
            self._known_empty = row is None
        return self._known_empty

    # -- SpillStore protocol ------------------------------------------------
    def get(self, key: tuple) -> tuple[float, float, bool] | None:
        cell = self._cell(key)
        buffered = self._buffer.get(cell)
        if buffered is not None:
            return (buffered[0], buffered[1], bool(buffered[2]))
        if self._disk_empty():
            return None
        row = self._connection().execute(
            "SELECT benchmark, heuristic, feasible FROM gap_entries "
            "WHERE problem_key = ? AND cell = ?",
            (self.problem_key, cell),
        ).fetchone()
        if row is None:
            return None
        return (row["benchmark"], row["heuristic"], bool(row["feasible"]))

    def put(
        self, key: tuple, benchmark: float, heuristic: float, feasible: bool
    ) -> None:
        self._buffer[self._cell(key)] = (
            float(benchmark),
            float(heuristic),
            int(feasible),
        )
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        conn = self._connection()
        with conn:
            conn.executemany(
                "INSERT OR REPLACE INTO gap_entries "
                "(problem_key, cell, benchmark, heuristic, feasible) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (self.problem_key, cell, b, h, f)
                    for cell, (b, h, f) in self._buffer.items()
                ],
            )
        self._buffer.clear()
        self._known_empty = False

    def preload(self, cache) -> int:
        """Bulk-load this namespace into a :class:`GapCache`'s memory.

        One SELECT instead of a per-point lookup for every previously
        answered cell; returns the number of loaded entries. Entries
        beyond the cache's LRU cap evict as usual.
        """
        self.flush()
        rows = self._connection().execute(
            "SELECT cell, benchmark, heuristic, feasible FROM gap_entries "
            "WHERE problem_key = ?",
            (self.problem_key,),
        ).fetchall()
        self._known_empty = len(rows) == 0
        cache.load_entries(
            (
                tuple(json.loads(row["cell"])),
                (row["benchmark"], row["heuristic"], bool(row["feasible"])),
            )
            for row in rows
        )
        return len(rows)

    def close(self) -> None:
        self.flush()
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __len__(self) -> int:
        self.flush()
        row = self._connection().execute(
            "SELECT COUNT(*) AS n FROM gap_entries WHERE problem_key = ?",
            (self.problem_key,),
        ).fetchone()
        return int(row["n"])
