"""SQLite plumbing shared by the run store and the gap spill store.

One database file (``xplain.sqlite`` inside the store directory) holds
every table. WAL journaling plus a busy timeout make the single file safe
for the access pattern the system actually has — the service's worker
thread writing runs, HTTP reader threads, and campaign worker processes
spilling gap-cache entries — without a server process.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

#: database file name inside a store directory
DB_NAME = "xplain.sqlite"

#: bump on any table change; the store refuses newer-schema databases
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    seed INTEGER NOT NULL,
    spec_json TEXT NOT NULL,
    status TEXT NOT NULL,
    error TEXT,
    report_json TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    payload_json TEXT NOT NULL,
    status TEXT NOT NULL,
    report_json TEXT,
    timing_json TEXT,
    error TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_runs (
    campaign_id TEXT NOT NULL,
    position INTEGER NOT NULL,
    run_id TEXT NOT NULL,
    job_name TEXT NOT NULL,
    PRIMARY KEY (campaign_id, position)
);
CREATE INDEX IF NOT EXISTS idx_campaign_runs_run
    ON campaign_runs (run_id);
CREATE TABLE IF NOT EXISTS gap_entries (
    problem_key TEXT NOT NULL,
    cell TEXT NOT NULL,
    benchmark REAL NOT NULL,
    heuristic REAL NOT NULL,
    feasible INTEGER NOT NULL,
    PRIMARY KEY (problem_key, cell)
);
"""


def store_db_path(path: str | Path) -> Path:
    """The database file for a store path (directory or ``.sqlite`` file)."""
    path = Path(path)
    if path.suffix == ".sqlite":
        return path
    return path / DB_NAME


def open_database(db_path: str | Path) -> sqlite3.Connection:
    """Open one SQLite file with the store's concurrency pragmas.

    Shared plumbing for every database this package owns (the run
    store's ``xplain.sqlite``, the fabric's ``fabric.sqlite``): WAL
    journaling, relaxed-but-durable sync, and a generous busy timeout so
    concurrent writers (service threads, worker processes) queue instead
    of failing.
    """
    db_path = Path(db_path)
    db_path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(db_path, timeout=30.0)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA busy_timeout=30000")
    return conn


def connect(path: str | Path, init: bool = True) -> sqlite3.Connection:
    """Open (creating if needed) the store database at ``path``.

    ``init=False`` skips the schema DDL + version check for callers
    that already initialized this store (per-operation connections on a
    hot path); the database file must then exist.
    """
    conn = open_database(store_db_path(path))
    if init:
        _init_schema(conn)
    return conn


def _init_schema(conn: sqlite3.Connection) -> None:
    with conn:
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )
        elif int(row["value"]) > STORE_SCHEMA_VERSION:
            raise RuntimeError(
                f"store database schema v{row['value']} is newer than this "
                f"code (v{STORE_SCHEMA_VERSION}); upgrade the package"
            )
