"""The batched gap-oracle subsystem.

Everything between the pipeline's "evaluate these points" and the domain's
actual benchmark/heuristic computation:

* :mod:`repro.oracle.engine` — the per-problem front-end (batch dispatch,
  scalar fallback, cache consultation, counters);
* :mod:`repro.oracle.cache` — quantized-key gap memoization;
* :mod:`repro.oracle.stats` — the :class:`OracleStats` counter block
  surfaced on generator reports and in the CLI.

The solve substrate the LP-backed domains build their native batched
oracles on lives in :mod:`repro.solver.template`.
"""

from repro.oracle.cache import DEFAULT_RESOLUTION, GapCache
from repro.oracle.engine import OracleEngine
from repro.oracle.stats import OracleStats

__all__ = [
    "DEFAULT_RESOLUTION",
    "GapCache",
    "OracleEngine",
    "OracleStats",
]
