"""Counters for the batched gap-oracle engine.

An :class:`OracleStats` block is kept by every
:class:`~repro.oracle.engine.OracleEngine` and surfaced on
:class:`~repro.subspace.generator.GeneratorReport` (and from there in the
CLI summary), so a pipeline run reports how many oracle queries it made,
how many the memoizing cache absorbed, and how the LP templates split
between warm and cold simplex starts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class OracleStats:
    """Work counters for one engine (or a delta between two snapshots)."""

    #: total gap evaluations requested through the engine
    points: int = 0
    #: points answered straight from the memoizing cache
    cache_hits: int = 0
    #: points that had to be evaluated
    cache_misses: int = 0
    #: evaluated points served by a native batched oracle
    native_batched: int = 0
    #: evaluated points served by the scalar python-loop fallback
    scalar_fallback: int = 0
    #: points charged to the run's shared search budget ledger
    #: (:mod:`repro.search.budget`) — comparable across the black-box
    #: and DSL analyzer paths because both draw from the same ledger
    oracle_calls: int = 0
    #: LP template re-solves that warm-started from the previous basis
    warm_solves: int = 0
    #: LP template solves that fell back to the cold two-phase simplex
    cold_solves: int = 0
    #: simplex pivots across all template solves
    lp_iterations: int = 0
    #: wall-clock seconds inside template LP solves
    lp_seconds: float = 0.0
    #: wall-clock seconds inside the engine (cache + dispatch + evaluation)
    eval_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.points == 0 else self.cache_hits / self.points

    @property
    def warm_rate(self) -> float:
        total = self.warm_solves + self.cold_solves
        return 0.0 if total == 0 else self.warm_solves / total

    def copy(self) -> "OracleStats":
        return OracleStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """All counters as a JSON-safe dict (field order, plain scalars)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: dict) -> "OracleStats":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored.

        Tolerating extras lets stored counter blocks from other schema
        revisions load instead of crashing the reader.
        """
        known = {f.name for f in fields(OracleStats)}
        return OracleStats(
            **{k: v for k, v in data.items() if k in known}
        )

    def __sub__(self, other: "OracleStats") -> "OracleStats":
        """Delta between two snapshots (``after - before``)."""
        return OracleStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "OracleStats") -> "OracleStats":
        """Merge two counter blocks (e.g. across campaign workers)."""
        return OracleStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def merge_counters(self, counters: dict) -> None:
        """Fold a worker-reported counter delta into this block in place."""
        for name, value in counters.items():
            if hasattr(self, name):
                current = getattr(self, name)
                setattr(self, name, current + type(current)(value))

    def describe(self) -> str:
        lines = [
            f"oracle: {self.points} points "
            f"({self.cache_hits} cached, {self.native_batched} batched, "
            f"{self.scalar_fallback} scalar) in {self.eval_seconds:.2f}s",
        ]
        if self.warm_solves or self.cold_solves:
            lines.append(
                f"  lp templates: {self.warm_solves} warm / "
                f"{self.cold_solves} cold solves, "
                f"{self.lp_iterations} pivots, {self.lp_seconds:.2f}s"
            )
        return "\n".join(lines)
