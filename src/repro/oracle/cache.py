"""Quantized-key memoization for the gap oracle.

The §5.2 loop re-samples heavily overlapping areas — the recenter cube,
the rough box, the tree-sample sweep and the significance shell all cover
the same neighborhood — and the analyzer's seed point itself is
re-evaluated several times (validation, recentering, tree anchoring). The
cache keys each input vector by quantizing every coordinate to a fixed
grid; two queries that land on the same grid cell share one oracle
evaluation.

The default resolution is *fine* (1e-9 of each input-domain side), so in
practice only genuinely repeated points collide and cached runs are
indistinguishable from uncached ones — tests pin this down by comparing
seeded generator output with the cache on and off. Coarser resolutions
trade exactness for hit rate and can be selected per engine via
``AnalyzedProblem.configure_oracle(resolution=...)``.

Growth is bounded by an LRU policy: the cache keeps at most
``max_entries`` cells and evicts the least-recently-used one on insert,
so a long-running analysis service cannot leak memory through its
engines. An optional *spill* second level (see
:class:`repro.store.gapstore.GapSpill`) receives every inserted entry and
is consulted on in-memory misses, which is how oracle memoization
survives across processes and campaigns. Cached entries are values of the
oracle function itself, so neither eviction nor spilling can change any
result — only how often points are recomputed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Protocol

import numpy as np

from repro.subspace.region import Box

#: Default grid size as a fraction of each input-domain side: fine enough
#: that distinct sample points essentially never collide.
DEFAULT_RESOLUTION = 1e-9

#: Default in-memory entry cap (LRU beyond this).
DEFAULT_MAX_ENTRIES = 1_000_000

#: one cached oracle answer: (benchmark, heuristic, feasible)
Entry = tuple[float, float, bool]


class SpillStore(Protocol):
    """Second-level store a :class:`GapCache` spills through.

    ``get`` may return ``None``; ``put`` must be idempotent (the cache
    write-throughs every insert *and* re-offers entries on eviction).
    """

    def get(self, key: tuple) -> Entry | None: ...

    def put(
        self, key: tuple, benchmark: float, heuristic: float, feasible: bool
    ) -> None: ...


class GapCache:
    """Maps quantized input vectors to (benchmark, heuristic, feasible)."""

    def __init__(
        self,
        input_box: Box,
        resolution: float = DEFAULT_RESOLUTION,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        spill: SpillStore | None = None,
    ) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        widths = np.maximum(input_box.widths, 1e-12)
        self._quantum = widths * resolution
        self.resolution = resolution
        self.max_entries = max_entries
        self.spill = spill
        self._entries: OrderedDict[tuple, Entry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.spill_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, x: np.ndarray) -> tuple:
        """The grid cell of one input vector."""
        cell = np.round(np.asarray(x, dtype=float) / self._quantum)
        return tuple(int(v) for v in cell)

    def get(self, key: tuple) -> Entry | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        if self.spill is not None:
            entry = self.spill.get(key)
            if entry is not None:
                # Promote: a spilled answer is as good as a resident one.
                self.hits += 1
                self.spill_hits += 1
                self._insert(key, entry)
                return entry
        self.misses += 1
        return None

    def put(
        self, key: tuple, benchmark: float, heuristic: float, feasible: bool
    ) -> None:
        entry = (benchmark, heuristic, feasible)
        self._insert(key, entry)
        if self.spill is not None:
            self.spill.put(key, benchmark, heuristic, feasible)

    def _insert(self, key: tuple, entry: Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.enforce_limit()

    def enforce_limit(self) -> None:
        """Evict LRU entries until at most ``max_entries`` remain."""
        while len(self._entries) > self.max_entries:
            old_key, old_entry = self._entries.popitem(last=False)
            self.evictions += 1
            if self.spill is not None:
                self.spill.put(old_key, *old_entry)

    def clear(self) -> None:
        self._entries.clear()

    # -- serialization ------------------------------------------------------
    def entries(self) -> Iterator[tuple[tuple, Entry]]:
        """All resident cells, least-recently-used first."""
        return iter(self._entries.items())

    def load_entries(self, items: Iterable[tuple[tuple, Entry]]) -> None:
        """Bulk-insert previously dumped cells (no spill write-through).

        Used by the store layer to warm a cache from disk; entries beyond
        ``max_entries`` evict LRU as usual.
        """
        for key, entry in items:
            self._insert(
                tuple(key),
                (float(entry[0]), float(entry[1]), bool(entry[2])),
            )
