"""Quantized-key memoization for the gap oracle.

The §5.2 loop re-samples heavily overlapping areas — the recenter cube,
the rough box, the tree-sample sweep and the significance shell all cover
the same neighborhood — and the analyzer's seed point itself is
re-evaluated several times (validation, recentering, tree anchoring). The
cache keys each input vector by quantizing every coordinate to a fixed
grid; two queries that land on the same grid cell share one oracle
evaluation.

The default resolution is *fine* (1e-9 of each input-domain side), so in
practice only genuinely repeated points collide and cached runs are
indistinguishable from uncached ones — tests pin this down by comparing
seeded generator output with the cache on and off. Coarser resolutions
trade exactness for hit rate and can be selected per engine via
``AnalyzedProblem.configure_oracle(resolution=...)``.
"""

from __future__ import annotations

import numpy as np

from repro.subspace.region import Box

#: Default grid size as a fraction of each input-domain side: fine enough
#: that distinct sample points essentially never collide.
DEFAULT_RESOLUTION = 1e-9


class GapCache:
    """Maps quantized input vectors to (benchmark, heuristic, feasible)."""

    def __init__(
        self,
        input_box: Box,
        resolution: float = DEFAULT_RESOLUTION,
        max_entries: int = 1_000_000,
    ) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        widths = np.maximum(input_box.widths, 1e-12)
        self._quantum = widths * resolution
        self.resolution = resolution
        self.max_entries = max_entries
        self._entries: dict[tuple, tuple[float, float, bool]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, x: np.ndarray) -> tuple:
        """The grid cell of one input vector."""
        cell = np.round(np.asarray(x, dtype=float) / self._quantum)
        return tuple(int(v) for v in cell)

    def get(self, key: tuple) -> tuple[float, float, bool] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(
        self, key: tuple, benchmark: float, heuristic: float, feasible: bool
    ) -> None:
        if len(self._entries) >= self.max_entries:
            # Simple wholesale reset: the generator's working set is tiny
            # compared to the cap, so this fires only on pathological runs.
            self._entries.clear()
        self._entries[key] = (benchmark, heuristic, feasible)

    def clear(self) -> None:
        self._entries.clear()
