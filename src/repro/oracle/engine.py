"""The batched gap-oracle engine.

Every gap query in the pipeline — sampler sweeps, slice-expansion probes,
significance pools, black-box search, generalizer observations — flows
through one :class:`OracleEngine` per problem (see
``AnalyzedProblem.oracle``). The engine:

* answers repeated points from a quantized-key :class:`~repro.oracle.
  cache.GapCache`;
* forwards the remaining points to the problem's *native batched* oracle
  (``AnalyzedProblem.evaluate_batch``, e.g. the TE LP-template oracle or
  the vectorized binpack first-fit) when one exists;
* otherwise falls back to a scalar loop over ``AnalyzedProblem.evaluate``,
  so third-party problems keep working unchanged;
* keeps :class:`~repro.oracle.stats.OracleStats` counters, merging in the
  warm/cold solve counters a native oracle exposes via
  ``solver_counters()``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analyzer.interface import AnalyzedProblem, GapSample, GapSamples
from repro.obs import runtime as _obs
from repro.obs.tracing import span as _span
from repro.oracle.cache import DEFAULT_RESOLUTION, GapCache
from repro.oracle.stats import OracleStats

#: distinguishes "spill not passed" from an explicit ``spill=None`` detach
_UNSET = object()


class OracleEngine:
    """Caching, batching front-end for one problem's gap oracle."""

    def __init__(
        self,
        problem: AnalyzedProblem,
        cache: bool | GapCache | None = True,
        resolution: float = DEFAULT_RESOLUTION,
        max_entries: int | None = None,
        spill=None,
    ) -> None:
        self.problem = problem
        if cache is True:
            kwargs = {} if max_entries is None else {"max_entries": max_entries}
            self.cache: GapCache | None = GapCache(
                problem.input_box, resolution=resolution, spill=spill, **kwargs
            )
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.stats = OracleStats()
        #: sharded-dispatch backend (None = direct single-batch dispatch)
        self._executor = None
        self._unit_points = 64

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray) -> GapSample:
        """Scalar evaluation through the same cached/batched path."""
        x = np.asarray(x, dtype=float)
        return self.evaluate_many(x[None, :]).sample(0)

    def evaluate_many(self, xs: np.ndarray) -> GapSamples:
        """Evaluate a batch of points, serving repeats from the cache."""
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        n = len(xs)
        if n == 0:
            return GapSamples.from_samples([], dim=self.problem.dim)
        start = time.perf_counter()
        self.stats.points += n

        benchmark = np.empty(n)
        heuristic = np.empty(n)
        feasible = np.ones(n, dtype=bool)

        if self.cache is not None:
            keys = [self.cache.key(x) for x in xs]
            miss_indices: list[int] = []
            pending: set[tuple] = set()
            for i, key in enumerate(keys):
                entry = None if key in pending else self.cache.get(key)
                if entry is None:
                    miss_indices.append(i)
                    pending.add(key)
                else:
                    benchmark[i], heuristic[i], feasible[i] = entry
        else:
            keys = None
            miss_indices = list(range(n))
        self.stats.cache_hits += n - len(miss_indices)
        self.stats.cache_misses += len(miss_indices)

        if miss_indices:
            with _span(
                "oracle.batch", points=n, misses=len(miss_indices)
            ):
                fresh = self._dispatch(xs[miss_indices])
            for j, i in enumerate(miss_indices):
                benchmark[i] = fresh.benchmark_values[j]
                heuristic[i] = fresh.heuristic_values[j]
                feasible[i] = fresh.heuristic_feasible[j]
                if keys is not None:
                    self.cache.put(
                        keys[i],
                        float(benchmark[i]),
                        float(heuristic[i]),
                        bool(feasible[i]),
                    )

        elapsed = time.perf_counter() - start
        self.stats.eval_seconds += elapsed
        # Live batch-latency histogram (counter totals come from the
        # campaign driver's report fold, never from here — that split is
        # what makes double counting impossible). One None check per
        # *batch*; uninstrumented runs pay nothing else.
        registry = _obs.registry()
        if registry is not None:
            registry.histogram_observe(
                "xplain_oracle_batch_seconds",
                elapsed,
                help="oracle engine wall-clock per evaluate_many batch",
            )
        return GapSamples(xs, benchmark, heuristic, feasible)

    # ------------------------------------------------------------------
    def configure_cache(
        self, max_entries: int | None = None, spill=_UNSET
    ) -> None:
        """Retune the live cache (LRU cap, spill store) without clearing it.

        No-op when the cache is disabled. Cached values are oracle values,
        so retuning mid-run cannot change any result — only recompute
        rates. ``spill`` is only touched when passed explicitly — pass
        ``spill=None`` to detach an attached store, omit it to leave the
        current one (e.g. one given at construction) alone.
        """
        if self.cache is None:
            return
        if max_entries is not None:
            if max_entries < 1:
                raise RuntimeError(
                    f"cache max_entries must be >= 1, got {max_entries}"
                )
            self.cache.max_entries = max_entries
        if spill is not _UNSET:
            self.cache.spill = spill
        self.cache.enforce_limit()

    # ------------------------------------------------------------------
    def use_executor(self, executor, unit_points: int | None = None) -> None:
        """Route uncached evaluations through a work-unit executor.

        With an executor installed, every miss batch is decomposed by
        :func:`repro.parallel.shard.plan_units` into placement-free
        :class:`~repro.parallel.work.EvalUnit`\\ s — the decomposition
        depends only on the batch size, never on the worker count, which
        is what makes ``workers=1`` and ``workers=N`` bit-identical.
        Pass ``None`` to restore direct single-batch dispatch.
        """
        self._executor = executor
        if unit_points is not None:
            if unit_points < 1:
                raise RuntimeError(
                    f"unit_points must be >= 1, got {unit_points}"
                )
            self._unit_points = unit_points

    def _dispatch_sharded(self, xs: np.ndarray) -> GapSamples:
        """Evaluate a miss batch as work units on the installed executor."""
        from repro.parallel.shard import plan_units
        from repro.parallel.work import EvalUnit

        units = [
            EvalUnit(xs[start:stop])
            for start, stop in plan_units(len(xs), self._unit_points)
        ]
        results = self._executor.map_units(units)
        for unit, result in zip(units, results):
            if result["path"] == "native":
                self.stats.native_batched += len(unit.points)
            else:
                self.stats.scalar_fallback += len(unit.points)
            if not self._executor.in_process:
                # Out-of-process work never touches the driver's native
                # oracle, so its solver counters arrive with the result.
                self.stats.merge_counters(result["counters"])
        return GapSamples(
            xs,
            np.concatenate([r["benchmark"] for r in results]),
            np.concatenate([r["heuristic"] for r in results]),
            np.concatenate([r["feasible"] for r in results]),
        )

    def _dispatch(self, xs: np.ndarray) -> GapSamples:
        """Route uncached points to the native batch oracle or scalar loop."""
        if self._executor is not None:
            return self._dispatch_sharded(xs)
        native = self.problem.evaluate_batch
        if native is not None:
            self.stats.native_batched += len(xs)
            result = native(xs)
            if len(result) != len(xs):
                raise RuntimeError(
                    f"native batched oracle of {self.problem.name!r} "
                    f"returned {len(result)} samples for {len(xs)} points"
                )
            return result
        self.stats.scalar_fallback += len(xs)
        return GapSamples.from_samples(
            [self.problem.evaluate(x) for x in xs], dim=self.problem.dim
        )

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> OracleStats:
        """Current counters, merged with native solver counters if any.

        Returns a copy; snapshot deltas (``after - before``) give the cost
        of one pipeline stage.
        """
        snap = self.stats.copy()
        counters = getattr(self.problem.evaluate_batch, "solver_counters", None)
        if callable(counters):
            for name, value in counters().items():
                if hasattr(snap, name):
                    setattr(snap, name, getattr(snap, name) + value)
        return snap
