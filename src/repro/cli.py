"""Command-line interface: ``python -m repro <command>``.

Commands mirror the examples so a user can reproduce the paper artifacts
without writing Python:

* ``analyze <domain>`` — XPlain end-to-end on any registered domain
  (``repro analyze caching``, ``repro analyze te --fig4a``, ...), with
  the domain's knobs exposed as options. The pre-registry commands
  ``dp``, ``vbp``, and ``sched`` remain as top-level aliases;
* ``domains``  — list the registered domain plugins (``--json`` for the
  machine-readable form CI consumes, ``--campaign-spec <domain|all>``
  for a ready-to-run smoke campaign spec);
* ``fig1a``    — just the Fig. 1a worked-example table;
* ``encode``   — Theorem A.1 demo on a built-in knapsack;
* ``type3``    — cross-instance generalization on line topologies;
* ``campaign`` — fan a JSON/TOML spec of problems across a worker pool
  and write per-problem JSON reports (``--store`` makes it resumable);
* ``serve``    — the long-running analysis service (JSON HTTP API over a
  persistent run store; DESIGN.md §10);
* ``fabric``   — the fault-tolerant execution fabric (DESIGN.md §13):
  ``serve`` runs the service on a lease-queue worker fleet, ``status``
  dumps queue/fleet health, ``chaos-smoke`` drives the CI
  fault-injection matrix;
* ``runs``     — inspect and garbage-collect a run store
  (``list`` / ``show`` / ``gc``).

Every subcommand accepts ``--workers N``; on ``analyze`` (and its
aliases) and ``campaign``, ``N > 1`` shards work across ``N`` worker
processes with output bit-identical to ``--workers 1`` for a fixed seed
(DESIGN.md §9). The table/demo subcommands (``fig1a``, ``encode``,
``type3``) run no shardable pipeline work and say so when asked for
workers.

The domain subcommands are generated from the plugin registry
(:mod:`repro.domains.registry`, DESIGN.md §11): a new domain package
with a ``plugin.py`` shows up here — and in campaign specs, the
service, and CI — without touching this file.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded execution (1 = serial)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    from repro.search.policy import SEARCH_POLICIES

    parser.add_argument("--seed", type=int, default=1, help="pipeline seed")
    parser.add_argument(
        "--subspaces", type=int, default=1, help="max adversarial subspaces"
    )
    parser.add_argument(
        "--samples", type=int, default=200, help="explainer samples per subspace"
    )
    parser.add_argument(
        "--search",
        choices=list(SEARCH_POLICIES),
        default=None,
        help="gap-search policy: 'uniform' (legacy sampling, default), "
        "'bandit' (budget-aware UCB cell search), or 'hybrid'",
    )
    parser.add_argument(
        "--search-budget",
        type=int,
        default=None,
        metavar="N",
        help="oracle-evaluation budget enforced by adaptive search "
        "policies (uniform only tracks spending)",
    )
    parser.add_argument(
        "--search-rounds",
        type=int,
        default=None,
        metavar="N",
        help="bandit rounds per search (one sharded oracle batch each)",
    )
    _add_workers(parser)


#: knob type name -> argparse ``type=`` callable
_KNOB_TYPES = {"int": int, "float": float, "str": str}


def _add_domain_args(parser: argparse.ArgumentParser, plugin) -> None:
    """Install one domain's knobs (and the analyze extras) on a parser.

    Knob options default to ``argparse.SUPPRESS`` so an *explicitly*
    typed value is distinguishable from an untouched default — that is
    what lets ``--policy lru`` beat a ``--preset``/``--smoke`` override
    even when it equals the knob's declared default.
    """
    for knob in plugin.knobs:
        if knob.type == "flag":
            parser.add_argument(
                knob.cli_option,
                action="store_true",
                default=argparse.SUPPRESS,
                help=knob.help,
            )
        else:
            extra = {"choices": list(knob.choices)} if knob.choices else {}
            parser.add_argument(
                knob.cli_option,
                type=_KNOB_TYPES[knob.type],
                default=argparse.SUPPRESS,
                help=f"{knob.help} (default {knob.default})",
                **extra,
            )
    if plugin.presets:
        parser.add_argument(
            "--preset",
            choices=sorted(plugin.presets),
            default=None,
            help="apply a named figure preset's knob overrides",
        )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the domain's tiny smoke-sized problem with reduced "
        "pipeline settings (what CI's domain-matrix runs)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the full JSON report (campaign-unit schema) here",
    )
    _add_common(parser)
    parser.set_defaults(domain=plugin.name)


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="XPlain reproduction (HotNets '24): analyze a heuristic, "
        "map its adversarial subspaces, and explain them.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.domains.registry import registry

    analyze = sub.add_parser(
        "analyze",
        help="run XPlain end-to-end on a registered domain",
        description="Analyze one domain's heuristic: adversarial "
        "subspaces, per-subspace explanations, generalization. Domains "
        "and their knobs come from the plugin registry (`repro domains`).",
    )
    analyze_sub = analyze.add_subparsers(dest="domain", required=True)
    for plugin in registry().plugins():
        domain_parser = analyze_sub.add_parser(
            plugin.name,
            aliases=list(plugin.aliases),
            help=plugin.title,
        )
        _add_domain_args(domain_parser, plugin)
        for legacy in plugin.legacy_cli:
            legacy_parser = sub.add_parser(
                legacy, help=f"{plugin.title} (alias for 'analyze {plugin.name}')"
            )
            _add_domain_args(legacy_parser, plugin)

    domains = sub.add_parser(
        "domains", help="list the registered domain plugins"
    )
    domains.add_argument(
        "--json",
        action="store_true",
        help="machine-readable plugin descriptors (what CI's "
        "domain-matrix job enumerates)",
    )
    domains.add_argument(
        "--campaign-spec",
        default=None,
        metavar="DOMAIN",
        help="print a ready-to-run smoke campaign spec for DOMAIN "
        "('all' = one job per registered domain)",
    )

    fig1a = sub.add_parser("fig1a", help="print the Fig. 1a worked-example table")
    _add_workers(fig1a)

    encode = sub.add_parser(
        "encode", help="Theorem A.1 demo (knapsack as flow graph)"
    )
    _add_workers(encode)

    type3 = sub.add_parser(
        "type3", help="cross-instance generalization on line topologies"
    )
    type3.add_argument("--instances", type=int, default=8)
    type3.add_argument("--seed", type=int, default=0)
    _add_workers(type3)

    campaign = sub.add_parser(
        "campaign",
        help="run a batch campaign spec (JSON/TOML) across a worker pool",
    )
    campaign.add_argument("spec", help="path to the campaign spec file")
    campaign.add_argument(
        "--out-dir",
        default=None,
        help="write per-problem JSON reports plus campaign.json here",
    )
    campaign.add_argument(
        "--store",
        default=None,
        help="persistent run store directory: completed units are "
        "recorded there and an interrupted campaign resumes from it",
    )
    _add_workers(campaign)

    serve = sub.add_parser(
        "serve",
        help="run the analysis service (JSON HTTP API over a run store)",
    )
    serve.add_argument(
        "--store",
        required=True,
        help="persistent run store directory backing the service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen port (default 8347; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--retention",
        type=int,
        default=0,
        help="gc the store down to this many campaigns after each run "
        "(0 keeps everything)",
    )
    serve.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="service logging threshold (requests log at info)",
    )
    _add_workers(serve)

    fabric = sub.add_parser(
        "fabric",
        help="fault-tolerant execution fabric (DESIGN.md §13): "
        "serve, status, chaos-smoke",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)
    fabric_serve = fabric_sub.add_parser(
        "serve",
        help="run the analysis service on a lease-queue worker fleet "
        "(heartbeats, retry/backoff, quarantine)",
    )
    fabric_serve.add_argument(
        "--store",
        required=True,
        help="persistent run store directory backing the service "
        "(the fabric queue lives in its fabric/ subdirectory)",
    )
    fabric_serve.add_argument("--host", default="127.0.0.1")
    fabric_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen port (default 8347; 0 picks an ephemeral port)",
    )
    fabric_serve.add_argument(
        "--retention",
        type=int,
        default=0,
        help="gc the store down to this many campaigns after each run "
        "(0 keeps everything)",
    )
    fabric_serve.add_argument(
        "--max-pending",
        type=int,
        default=0,
        help="campaign backlog bound; full backlog makes POST "
        "/campaigns answer 429 (0 = unbounded)",
    )
    fabric_serve.add_argument(
        "--lease-seconds",
        type=float,
        default=10.0,
        help="work-unit lease duration; a dead worker's unit is "
        "requeued within roughly this long",
    )
    fabric_serve.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="service logging threshold (requests log at info)",
    )
    _add_workers(fabric_serve)
    fabric_status = fabric_sub.add_parser(
        "status",
        help="print a store's fabric queue/fleet status as JSON",
    )
    fabric_status.add_argument(
        "--store", required=True, help="run store directory to inspect"
    )
    fabric_smoke = fabric_sub.add_parser(
        "chaos-smoke",
        help="CI fault-injection matrix: per-domain smoke campaigns "
        "under kill/stall/drop-heartbeat, diffed against unfaulted runs",
    )
    fabric_smoke.add_argument(
        "--out",
        required=True,
        help="working directory for the faulted runs and the report",
    )
    fabric_smoke.add_argument(
        "--domains",
        nargs="*",
        default=None,
        help="domains to exercise (default: every registered domain)",
    )
    fabric_smoke.add_argument(
        "--faults",
        nargs="*",
        default=["kill", "stall", "drop_heartbeat"],
        help="chaos actions to inject",
    )
    fabric_smoke.add_argument(
        "--workers",
        type=int,
        default=2,
        help="fleet size for each faulted run",
    )
    fabric_smoke.add_argument(
        "--seed", type=int, default=0, help="victim-selection seed"
    )
    fabric_smoke.add_argument(
        "--artifact",
        default=None,
        help="where to write the JSON report "
        "(default <out>/chaos-report.json)",
    )

    runs = sub.add_parser(
        "runs", help="inspect or garbage-collect a persistent run store"
    )
    store_arg = argparse.ArgumentParser(add_help=False)
    store_arg.add_argument(
        "--store", required=True, help="run store directory to operate on"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser(
        "list", parents=[store_arg], help="list stored campaigns and runs"
    )
    show = runs_sub.add_parser(
        "show",
        parents=[store_arg],
        help="print one stored campaign or run report",
    )
    show.add_argument("id", help="a camp-… or run-… identifier")
    gc = runs_sub.add_parser(
        "gc",
        parents=[store_arg],
        help="drop all but the most recent campaigns (and orphan runs)",
    )
    gc.add_argument(
        "--keep",
        type=int,
        required=True,
        help="campaigns to retain (0 clears the store)",
    )

    return parser


def _pipeline_config(args, overrides: dict | None = None):
    """Build the run's :class:`XPlainConfig` (plus plugin overrides).

    ``overrides`` (a plugin's ``config_defaults``) go through the
    constructor so they get the same eager validation as any other
    config — a typoed key or value fails loudly here, not deep in the
    pipeline.
    """
    import dataclasses

    from repro.core.config import XPlainConfig
    from repro.exceptions import AnalyzerError
    from repro.subspace.generator import GeneratorConfig

    workers = getattr(args, "workers", 1)
    params = dict(
        generator=GeneratorConfig(max_subspaces=args.subspaces, seed=args.seed),
        explainer_samples=args.samples,
        generalizer_samples=args.samples,
        executor="process" if workers > 1 else "serial",
        workers=workers,
        seed=args.seed,
    )
    params.update(overrides or {})
    # Search knobs the user explicitly typed beat plugin config_defaults
    # (an untouched option parses as None and leaves the default alone).
    for attr, key in (
        ("search", "search"),
        ("search_budget", "search_budget"),
        ("search_rounds", "search_rounds"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            params[key] = value
    known = {f.name for f in dataclasses.fields(XPlainConfig)}
    unknown = set(params) - known
    if unknown:
        raise AnalyzerError(
            f"unknown XPlainConfig overrides {sorted(unknown)} "
            "(check the domain plugin's config_defaults)"
        )
    return XPlainConfig(**params)


#: marks a knob the user did not type (its argparse default is SUPPRESS)
_KNOB_UNSET = object()


def _analyze_kwargs(args, plugin) -> dict:
    """Resolve factory kwargs: defaults < smoke < preset < explicit CLI.

    Knob options parse with ``argparse.SUPPRESS``, so any value the user
    actually typed is present on ``args`` and always wins — including a
    value that happens to equal the knob's declared default.
    """
    kwargs: dict = {}
    if args.smoke:
        kwargs.update(plugin.smoke_kwargs)
    preset = getattr(args, "preset", None)
    if preset is not None:
        kwargs.update(plugin.presets[preset])
    for knob in plugin.knobs:
        value = getattr(args, knob.dest, _KNOB_UNSET)
        if value is not _KNOB_UNSET:
            kwargs[knob.name] = value
        elif knob.name not in kwargs:
            kwargs[knob.name] = knob.default
    return kwargs


def cmd_analyze(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.core.pipeline import XPlain
    from repro.domains.registry import SMOKE_CAMPAIGN_DEFAULTS, registry

    plugin = registry().get(args.domain)
    config = _pipeline_config(args, dict(plugin.config_defaults))
    if args.smoke:
        # The same knobs the generated smoke campaign specs use, so
        # `analyze --smoke` and CI's one-unit campaigns stay in lockstep.
        smoke = SMOKE_CAMPAIGN_DEFAULTS
        config.explainer_samples = min(
            config.explainer_samples, smoke["explainer_samples"]
        )
        config.generalizer_samples = min(
            config.generalizer_samples, smoke["generalizer_samples"]
        )
        config.generator.tree_extra_samples = min(
            config.generator.tree_extra_samples,
            smoke["generator"]["tree_extra_samples"],
        )
        config.generator.significance_pairs = min(
            config.generator.significance_pairs,
            smoke["generator"]["significance_pairs"],
        )
    spec = plugin.problem_spec(**_analyze_kwargs(args, plugin))
    problem = spec.build()
    report = XPlain(problem, config).run()
    print(report.summary())
    if args.json_out:
        from repro.parallel.campaign import unit_report

        data = unit_report(
            plugin.name,
            problem.spec or spec,
            config.seed,
            problem,
            report,
            config=config,
        )
        Path(args.json_out).write_text(
            json_module.dumps(data, indent=2, sort_keys=True)
        )
        print(f"json report written to {args.json_out}")
    return 0


def cmd_domains(args) -> int:
    import json as json_module

    from repro.domains.registry import registry, smoke_campaign_spec

    reg = registry()
    if args.campaign_spec:
        names = None if args.campaign_spec == "all" else [args.campaign_spec]
        print(
            json_module.dumps(
                smoke_campaign_spec(names), indent=2, sort_keys=True
            )
        )
        return 0
    if args.json:
        print(
            json_module.dumps(
                [plugin.to_dict() for plugin in reg.plugins()],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"{len(reg)} registered domains:")
    for plugin in reg.plugins():
        aliases = (
            f"  (aliases: {', '.join(plugin.aliases)})"
            if plugin.aliases
            else ""
        )
        print(f"  {plugin.name:<10} {plugin.title}{aliases}")
        print(
            f"  {'':<10} factory {plugin.factory}; "
            f"capabilities: {', '.join(plugin.capabilities) or '-'}"
        )
    print("run one with: repro analyze <domain> [--smoke]")
    return 0


def _note_workers_unused(args) -> None:
    if getattr(args, "workers", 1) > 1:
        print(
            f"note: --workers {args.workers} ignored; this subcommand "
            "runs no shardable pipeline work"
        )


def cmd_fig1a(args) -> int:
    _note_workers_unused(args)
    from repro.core.visualize import render_gap_table
    from repro.domains.te import (
        build_demand_set,
        fig1a_demand_pairs,
        fig1a_topology,
        solve_demand_pinning,
        solve_optimal_te,
    )

    demand_set = build_demand_set(
        fig1a_topology(), fig1a_demand_pairs(), num_paths=2
    )
    values = {"1->3": 50.0, "1->2": 100.0, "2->3": 100.0}
    dp = solve_demand_pinning(demand_set, values, threshold=50.0)
    opt = solve_optimal_te(demand_set, values)
    print(render_gap_table([("fig1a (paper: 150 vs 250)", dp.total_flow, opt.total_flow)]))
    return 0


def cmd_encode(args) -> int:
    _note_workers_unused(args)
    from repro.compiler import encode_model
    from repro.solver import Model, quicksum

    model = Model("knapsack", sense="max")
    items = {"tent": (3.0, 10.0), "stove": (4.0, 13.0), "rope": (2.0, 7.0)}
    choices = {n: model.add_var(n, vartype="binary") for n in items}
    model.add_constraint(
        quicksum(w * choices[n] for n, (w, _) in items.items()) <= 6
    )
    model.set_objective(
        quicksum(v * choices[n] for n, (_, v) in items.items())
    )
    encoded = encode_model(model)
    value, assignment = encoded.solve()
    direct = model.solve()
    print(f"flow graph: {encoded.graph.num_nodes} nodes / {encoded.graph.num_edges} edges")
    print(f"direct optimum {direct.objective:g}, via flow graph {value:g}")
    picks = [v.name for v, x in assignment.items() if round(x) == 1]
    print(f"recovered knapsack: {picks}")
    return 0


def cmd_type3(args) -> int:
    _note_workers_unused(args)
    from repro.analyzer.bilevel import MetaOptAnalyzer
    from repro.generalize import (
        EnumerativeGeneralizer,
        generate_instances,
        line_te_instance_generator,
        observe_with_analyzer,
    )

    rng = np.random.default_rng(args.seed)
    instances = list(
        generate_instances(
            line_te_instance_generator(length_range=(3, 7)),
            args.instances,
            rng,
        )
    )
    observations = observe_with_analyzer(
        instances, lambda problem: MetaOptAnalyzer(problem, backend="scipy")
    )
    result = EnumerativeGeneralizer().search(observations)
    print(result.describe())
    return 0


def cmd_campaign(args) -> int:
    from repro.parallel.campaign import (
        describe_report,
        load_campaign_spec,
        run_campaign,
    )

    store = None
    if args.store:
        from repro.store import RunStore

        store = RunStore(args.store)
    spec = load_campaign_spec(args.spec)
    report = run_campaign(
        spec, workers=args.workers, out_dir=args.out_dir, store=store
    )
    print(describe_report(report))
    if args.out_dir:
        print(f"reports written to {args.out_dir}/")
    if args.store:
        print(f"campaign {report['campaign_id']} recorded in {args.store}")
    return 0


def cmd_serve(args) -> int:
    from repro.service import DEFAULT_PORT, serve

    serve(
        args.store,
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        workers=args.workers,
        retention=args.retention,
        log_level=args.log_level,
    )
    return 0


def cmd_fabric(args) -> int:
    import json as json_module
    from pathlib import Path

    if args.fabric_command == "serve":
        from repro.service import DEFAULT_PORT, serve

        serve(
            args.store,
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            workers=args.workers,
            retention=args.retention,
            executor="fabric",
            max_pending=args.max_pending,
            lease_seconds=args.lease_seconds,
            log_level=args.log_level,
        )
        return 0
    if args.fabric_command == "status":
        from repro.fabric import WorkQueue, fabric_db_path

        fabric_dir = Path(args.store) / "fabric"
        if not fabric_db_path(fabric_dir).exists():
            print(f"no fabric queue under {args.store} (run fabric serve?)")
            return 1
        status = WorkQueue(fabric_dir).status()
        print(json_module.dumps(status, indent=2, sort_keys=True))
        return 0
    if args.fabric_command == "chaos-smoke":
        from repro.fabric import run_chaos_matrix

        report = run_chaos_matrix(
            args.out,
            domains=args.domains or None,
            faults=tuple(args.faults),
            workers=args.workers,
            seed=args.seed,
        )
        artifact = Path(args.artifact or Path(args.out) / "chaos-report.json")
        artifact.parent.mkdir(parents=True, exist_ok=True)
        artifact.write_text(json_module.dumps(report, indent=2, sort_keys=True))
        for domain, data in report["domains"].items():
            for fault in report["faults"]:
                entry = data[fault]
                print(
                    f"  {domain}/{fault}: identical={entry['identical']} "
                    f"retries={entry['retries']} "
                    f"lease_expiries={entry['lease_expiries']} "
                    f"commits={entry['commits']}"
                )
        print(f"chaos report written to {artifact}")
        return 0
    raise AssertionError(f"unhandled fabric subcommand {args.fabric_command!r}")


def cmd_runs(args) -> int:
    import json as json_module

    from repro.store import RunStore

    store = RunStore(args.store)
    if args.runs_command == "list":
        campaigns = store.list_campaigns()
        runs = store.list_runs()
        print(f"store {store.db_path}: {len(campaigns)} campaigns, "
              f"{len(runs)} runs")
        for c in campaigns:
            print(
                f"  {c['campaign_id']}  {c['status']:<8} "
                f"{c['num_runs']:>3} runs  {c['name']}"
            )
        for r in runs:
            print(f"  {r['run_id']}  {r['status']}")
        return 0
    if args.runs_command == "show":
        if args.id.startswith("camp-"):
            data = store.campaign(args.id)
        else:
            data = store.run(args.id)
        if data is None:
            print(f"no campaign or run {args.id!r} in {args.store}")
            return 1
        print(json_module.dumps(data, indent=2, sort_keys=True))
        return 0
    if args.runs_command == "gc":
        stats = store.gc(keep=args.keep)
        print(
            f"gc: deleted {stats['campaigns_deleted']} campaigns, "
            f"{stats['runs_deleted']} runs (kept <= {args.keep})"
        )
        return 0
    raise AssertionError(f"unhandled runs subcommand {args.runs_command!r}")


COMMANDS = {
    "analyze": cmd_analyze,
    "domains": cmd_domains,
    "fig1a": cmd_fig1a,
    "encode": cmd_encode,
    "type3": cmd_type3,
    "campaign": cmd_campaign,
    "serve": cmd_serve,
    "fabric": cmd_fabric,
    "runs": cmd_runs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Legacy per-domain commands (dp/vbp/sched) are analyze aliases: any
    # parsed command outside COMMANDS carries a registry domain.
    handler = COMMANDS.get(args.command, cmd_analyze)
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
