"""stdlib-``http.server`` JSON API over the analysis service.

Endpoints (all JSON):

* ``POST /campaigns``            — body is a campaign spec; returns
  ``{"campaign_id", "status", "num_jobs"}`` (202 while queued/running,
  200 when the content-addressed campaign already completed);
  ``?workers=N`` overrides the service's executor width for this run;
* ``GET  /campaigns``            — all stored campaigns;
* ``GET  /campaigns/<id>``       — one campaign's status, per-unit run
  states, and (once done) its aggregate report;
* ``GET  /runs``                 — all stored runs;
* ``GET  /runs/<id>/report``     — one completed unit's full report;
* ``GET  /runs/<id>/search``     — that unit's search block (policy,
  budget, ledger, the per-round :class:`~repro.search.trace.SearchTrace`);
* ``GET  /domains``              — the registered domain plugins (what a
  submitted spec's ``{"domain": ...}`` problem blocks may name);
* ``GET  /fabric``               — lease-queue and worker-fleet health
  (unit states, counters, live leases, quarantined units, restarts);
  404 when the service runs in local mode;
* ``GET  /healthz``              — liveness, version, executor mode,
  uptime, and store reachability in one body;
* ``GET  /version``              — ``repro.__version__``;
* ``GET  /metrics``              — Prometheus text exposition (oracle,
  solver, search, fabric, and HTTP metrics; DESIGN.md §15). Scrapes are
  read-only: they render a merged snapshot and mutate nothing;
* ``GET  /dashboard``            — the self-contained operator dashboard
  (one HTML page polling this JSON API; no external assets).

Error discipline: every failure is a JSON body. Malformed JSON and bad
parameters are 400, unknown paths 404, unsupported methods 405 (with an
``Allow`` header), bodies over :data:`MAX_BODY_BYTES` 413, and a full
submit backlog (``max_pending``) 429 with a ``Retry-After`` hint.

The server is a ``ThreadingHTTPServer``: requests are served on their
own threads and only ever touch the store through per-operation SQLite
connections, so readers never block the worker thread executing
campaigns.
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import repro
from repro.exceptions import AnalyzerError, ServiceBusy
from repro.obs import (
    EXPOSITION_CONTENT_TYPE,
    METRICS_DIR_ENV,
    enable_env,
    install,
    render_prometheus,
)
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.service import AnalysisService

logger = logging.getLogger("repro.service")

#: default service port (a random-ish high port, not 8080, to keep out
#: of the way of whatever else a dev box is running)
DEFAULT_PORT = 8347

#: request-body cap: a campaign spec is a list of job blocks, not a data
#: upload — anything this large is a client bug, rejected with 413
#: before the JSON parser chews on it
MAX_BODY_BYTES = 2 * 1024 * 1024

#: seconds a 429 response suggests waiting before re-submitting
RETRY_AFTER_SECONDS = 5


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the :class:`AnalysisService` it was bound to."""

    service: AnalysisService  # set by make_server
    server_version = f"xplain/{repro.__version__}"

    # -- plumbing -----------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Through the stdlib logging tree, not stderr: embedders and the
        # CLI's --log-level knob decide what (if anything) is printed.
        logger.info(
            "%s - %s", self.address_string(), format % args
        )

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send_raw(status, "application/json", body)

    def _send_raw(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, message: str, headers: dict | None = None
    ) -> None:
        body = json.dumps({"error": message}, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _method_not_allowed(self) -> None:
        self._error(
            405,
            f"method {self.command} is not supported; the API is "
            "GET for queries and POST /campaigns for submission",
            headers={"Allow": "GET, POST"},
        )

    # Anything beyond GET/POST gets a JSON 405, not http.server's
    # default HTML 501 page.
    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._method_not_allowed()

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._method_not_allowed()

    def do_PATCH(self) -> None:  # noqa: N802 - http.server API
        self._method_not_allowed()

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._method_not_allowed()

    # -- request metrics ----------------------------------------------------
    def _route_template(self, parts: list[str]) -> str:
        """A low-cardinality route label (IDs collapse to ``{id}``)."""
        if not parts:
            return "/"
        head = parts[0]
        if len(parts) == 1 and head in self._KNOWN_ROUTES:
            return f"/{head}"
        if head == "campaigns" and len(parts) == 2:
            return "/campaigns/{id}"
        if head == "runs" and len(parts) == 3 and parts[2] in (
            "report",
            "search",
        ):
            return "/runs/{id}/" + parts[2]
        return "(unknown)"

    def _observe(self, method: str, parts: list[str], started: float) -> None:
        route = self._route_template(parts)
        self.service.metrics.counter_inc(
            "xplain_http_requests_total",
            1,
            help="API requests served",
            method=method,
            route=route,
        )
        self.service.metrics.histogram_observe(
            "xplain_http_request_seconds",
            time.perf_counter() - started,
            help="API request wall-clock by route",
            route=route,
        )

    # -- routes -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            self._get(parts)
        finally:
            self._observe("GET", parts, started)

    def _get(self, parts: list[str]) -> None:
        try:
            if parts == ["healthz"]:
                self._send(200, self.service.health_info())
            elif parts == ["metrics"]:
                text = render_prometheus(self.service.metrics_snapshot())
                self._send_raw(
                    200, EXPOSITION_CONTENT_TYPE, text.encode("utf-8")
                )
            elif parts == ["dashboard"]:
                self._send_raw(
                    200,
                    "text/html; charset=utf-8",
                    DASHBOARD_HTML.encode("utf-8"),
                )
            elif parts == ["version"]:
                self._send(200, {"version": repro.__version__})
            elif parts == ["domains"]:
                from repro.domains.registry import registry

                plugins = registry().plugins()
                payload = {"domains": [p.to_dict() for p in plugins]}
                self._send(200, payload)
            elif parts == ["fabric"]:
                status = self.service.fabric_status()
                if status is None:
                    self._error(
                        404,
                        "the service is running the local executor; "
                        "start it with executor='fabric' for fleet status",
                    )
                else:
                    self._send(200, status)
            elif parts == ["campaigns"]:
                campaigns = self.service.store.list_campaigns()
                self._send(200, {"campaigns": campaigns})
            elif len(parts) == 2 and parts[0] == "campaigns":
                campaign = self.service.campaign_status(parts[1])
                if campaign is None:
                    self._error(404, f"no campaign {parts[1]!r}")
                else:
                    self._send(200, campaign)
            elif parts == ["runs"]:
                self._send(200, {"runs": self.service.store.list_runs()})
            elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "report":
                report = self.service.run_report(parts[1])
                if report is None:
                    self._error(404, f"no completed run {parts[1]!r}")
                else:
                    self._send(200, report)
            elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "search":
                search = self.service.run_search(parts[1])
                if search is None:
                    self._error(404, f"no completed run {parts[1]!r}")
                else:
                    self._send(200, {"run_id": parts[1], "search": search})
            else:
                self._error(404, f"unknown path {self.path!r}")
        except Exception as exc:  # noqa: BLE001 - one request, one error
            self._error(500, f"{type(exc).__name__}: {exc}")

    #: routes that only answer GET (a POST to them is a 405, not a 404)
    _GET_ONLY = (
        "healthz",
        "version",
        "domains",
        "fabric",
        "runs",
        "metrics",
        "dashboard",
    )

    #: every top-level route, for the metrics route label
    _KNOWN_ROUTES = _GET_ONLY + ("campaigns",)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            self._post(parts)
        finally:
            self._observe("POST", parts, started)

    def _post(self, parts: list[str]) -> None:
        url = urlparse(self.path)
        if parts and parts[0] in self._GET_ONLY:
            self._error(
                405,
                f"{url.path} only supports GET; submission is "
                "POST /campaigns",
                headers={"Allow": "GET"},
            )
            return
        if parts != ["campaigns"]:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._error(400, "Content-Length must be an integer")
                return
            if length > MAX_BODY_BYTES:
                # Drain what the client is still sending (bounded), so
                # the 413 arrives on an intact connection instead of a
                # reset mid-upload; past the drain cap we just close.
                remaining = min(length, 8 * MAX_BODY_BYTES)
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        break
                    remaining -= len(chunk)
                self.close_connection = True
                self._error(
                    413,
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte campaign-spec limit",
                )
                return
            raw = self.rfile.read(length)
            try:
                spec_data = json.loads(raw)
            except json.JSONDecodeError as exc:
                self._error(400, f"request body is not valid JSON: {exc}")
                return
            if not isinstance(spec_data, dict):
                self._error(400, "campaign spec must be a JSON object")
                return
            workers = None
            query = parse_qs(url.query)
            if "workers" in query:
                try:
                    workers = int(query["workers"][0])
                except ValueError:
                    self._error(400, "workers must be an integer")
                    return
                if workers < 1:
                    self._error(400, "workers must be >= 1")
                    return
            try:
                submitted = self.service.submit(spec_data, workers=workers)
            except ServiceBusy as exc:
                self._error(
                    429,
                    str(exc),
                    headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
                )
                return
            except AnalyzerError as exc:
                self._error(400, str(exc))
                return
            status = 200 if submitted["status"] == "done" else 202
            self._send(status, submitted)
        except Exception as exc:  # noqa: BLE001 - one request, one error
            self._error(500, f"{type(exc).__name__}: {exc}")


def make_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to the service (``port=0`` = ephemeral)."""

    class _BoundHandler(ServiceHandler):
        pass

    _BoundHandler.service = service
    return ThreadingHTTPServer((host, port), _BoundHandler)


def serve(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 1,
    retention: int = 0,
    executor: str = "local",
    max_pending: int = 0,
    lease_seconds: float = 10.0,
    log_level: str = "warning",
) -> None:
    """Run the service until interrupted (``repro serve`` / ``repro
    fabric serve`` entry point)."""
    import os

    level = getattr(logging, log_level.upper(), None)
    if not isinstance(level, int):
        raise AnalyzerError(
            f"unknown log level {log_level!r}; expected one of "
            "debug, info, warning, error"
        )
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    logging.getLogger("repro").setLevel(level)
    service = AnalysisService(
        store_path,
        workers=workers,
        retention=retention,
        executor=executor,
        max_pending=max_pending,
        lease_seconds=lease_seconds,
    )
    # The serve process is where observability goes global: the
    # service's registry becomes the process registry (pipeline hooks
    # feed it), tracing turns on for this process and its children, and
    # fabric workers learn where to spill their metric snapshots —
    # everything via the environment, nothing via unit payloads.
    install(service.metrics)
    enable_env()
    os.environ[METRICS_DIR_ENV] = str(service.metrics_dir)
    service.start()
    server = make_server(service, host=host, port=port)
    actual_host, actual_port = server.server_address[:2]
    print(
        f"xplain analysis service v{repro.__version__} on "
        f"http://{actual_host}:{actual_port} (store: {service.store.db_path}, "
        f"executor: {executor})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.stop()
