"""The operator dashboard: one self-contained HTML page.

``GET /dashboard`` serves :data:`DASHBOARD_HTML` — a single page with
inline CSS and JS and **zero external assets** (no CDN fonts, no
frameworks), so it works on an air-gapped box exactly like the rest of
the stdlib-only service. Everything it shows comes from polling the
existing JSON API:

* ``/healthz``             — the header strip (version, executor, uptime);
* ``/campaigns``           — the campaign table;
* ``/campaigns/<id>``      — live per-unit progress for the selected one;
* ``/runs/<id>/report``    — the per-domain gap heatmap (subspace region
  boxes over the first two input dimensions, colored by mean gap);
* ``/runs/<id>/search``    — search-trace playback (a round slider over
  the recorded :class:`~repro.search.trace.SearchTrace`: frontier /
  refined / pruned cell counts and ledger spend per round);
* ``/fabric``              — the fleet panel (404 in local mode renders
  as a note instead of an error).

The page is pure observation: it only ever issues GETs.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>xplain operator dashboard</title>
<style>
  :root { --bg:#0f1419; --panel:#171c24; --line:#2a3240; --fg:#d7dde5;
          --dim:#8a94a3; --accent:#4ea1ff; --ok:#3fb950; --bad:#f85149;
          --warn:#d29922; }
  * { box-sizing: border-box; }
  body { margin:0; background:var(--bg); color:var(--fg);
         font:13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace; }
  header { display:flex; gap:1.5em; align-items:baseline;
           padding:10px 16px; border-bottom:1px solid var(--line); }
  header h1 { font-size:15px; margin:0; color:var(--accent); }
  header .kv span { color:var(--dim); }
  main { display:grid; grid-template-columns: 1fr 1fr;
         gap:12px; padding:12px 16px; }
  section { background:var(--panel); border:1px solid var(--line);
            border-radius:6px; padding:10px 12px; min-height:120px; }
  section h2 { margin:0 0 8px; font-size:12px; text-transform:uppercase;
               letter-spacing:.08em; color:var(--dim); }
  table { width:100%; border-collapse:collapse; }
  th, td { text-align:left; padding:2px 8px 2px 0; white-space:nowrap; }
  th { color:var(--dim); font-weight:normal; }
  tr.sel td { color:var(--accent); }
  tr.click { cursor:pointer; }
  .bar { display:inline-block; width:120px; height:8px;
         background:var(--line); border-radius:4px; overflow:hidden;
         vertical-align:middle; }
  .bar i { display:block; height:100%; background:var(--ok); }
  .status-done { color:var(--ok); }  .status-failed { color:var(--bad); }
  .status-running, .status-pending { color:var(--warn); }
  canvas { background:#0a0e13; border:1px solid var(--line);
           border-radius:4px; width:100%; }
  input[type=range] { width:100%; }
  .note { color:var(--dim); }
  .legend span { margin-right:1em; }
  .swatch { display:inline-block; width:10px; height:10px;
            border-radius:2px; margin-right:4px; vertical-align:middle; }
</style>
</head>
<body>
<header>
  <h1>xplain</h1>
  <div class="kv" id="health">loading&hellip;</div>
  <a href="/metrics" style="margin-left:auto;color:var(--dim)">/metrics</a>
</header>
<main>
  <section style="grid-column: span 2">
    <h2>Campaigns</h2>
    <div id="campaigns" class="note">loading&hellip;</div>
  </section>
  <section>
    <h2>Units <span id="unit-campaign" class="note"></span></h2>
    <div id="units" class="note">select a campaign</div>
  </section>
  <section>
    <h2>Fleet</h2>
    <div id="fleet" class="note">loading&hellip;</div>
  </section>
  <section>
    <h2>Gap heatmap <span id="heatmap-run" class="note"></span></h2>
    <canvas id="heatmap" width="520" height="280"></canvas>
    <div id="heatmap-info" class="note">select a unit</div>
  </section>
  <section>
    <h2>Search playback <span id="trace-run" class="note"></span></h2>
    <input type="range" id="round" min="0" max="0" value="0" disabled>
    <div id="round-info" class="note">select a unit</div>
    <canvas id="cells" width="520" height="120"></canvas>
    <div class="legend note">
      <span><i class="swatch" style="background:#4ea1ff"></i>frontier</span>
      <span><i class="swatch" style="background:#444c5a"></i>pruned</span>
      <span><i class="swatch" style="background:#3fb950"></i>refined</span>
    </div>
  </section>
</main>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const state = { campaign: null, run: null, trace: null, report: null };

async function fetchJSON(path) {
  const res = await fetch(path);
  if (!res.ok) throw Object.assign(new Error(path), { status: res.status });
  return res.json();
}
const esc = (s) => String(s).replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

// ---- header ---------------------------------------------------------------
async function refreshHealth() {
  try {
    const h = await fetchJSON("/healthz");
    $("health").innerHTML =
      `<span>v</span>${esc(h.version)} &nbsp; ` +
      `<span>executor</span> ${esc(h.executor)} &nbsp; ` +
      `<span>uptime</span> ${Math.round(h.uptime_seconds)}s &nbsp; ` +
      `<span>store</span> ${esc(h.store)} &nbsp; ` +
      `<span>worker</span> ${h.worker_alive ? "alive" : "down"}`;
  } catch (e) { $("health").textContent = "healthz unreachable"; }
}

// ---- campaigns ------------------------------------------------------------
async function refreshCampaigns() {
  try {
    const data = await fetchJSON("/campaigns");
    if (!data.campaigns.length) {
      $("campaigns").textContent = "no campaigns yet"; return;
    }
    const rows = data.campaigns.map((c) => {
      const sel = c.campaign_id === state.campaign ? " sel" : "";
      return `<tr class="click${sel}" data-id="${esc(c.campaign_id)}">` +
        `<td>${esc(c.name)}</td>` +
        `<td class="status-${esc(c.status)}">${esc(c.status)}</td>` +
        `<td>${c.num_runs} units</td>` +
        `<td class="note">${esc(c.campaign_id)}</td></tr>`;
    }).join("");
    $("campaigns").innerHTML =
      `<table><tr><th>name</th><th>status</th><th>units</th>` +
      `<th>id</th></tr>${rows}</table>`;
    for (const tr of $("campaigns").querySelectorAll("tr.click")) {
      tr.onclick = () => { state.campaign = tr.dataset.id; refreshUnits(); };
    }
    if (!state.campaign && data.campaigns.length) {
      state.campaign = data.campaigns[data.campaigns.length - 1].campaign_id;
      refreshUnits();
    }
  } catch (e) { $("campaigns").textContent = "campaigns unreachable"; }
}

// ---- per-unit progress ----------------------------------------------------
async function refreshUnits() {
  if (!state.campaign) return;
  try {
    const c = await fetchJSON(`/campaigns/${state.campaign}`);
    $("unit-campaign").textContent = c.name;
    const pct = Math.round((c.progress || 0) * 100);
    const rows = c.runs.map((r) => {
      const sel = r.run_id === state.run ? " sel" : "";
      return `<tr class="click${sel}" data-id="${esc(r.run_id)}">` +
        `<td>${esc(r.job_name)}</td>` +
        `<td class="status-${esc(r.status)}">${esc(r.status)}</td>` +
        `<td class="note">${esc(r.run_id.slice(0, 12))}</td></tr>`;
    }).join("");
    $("units").innerHTML =
      `<div>${c.units_done}/${c.units_total} done ` +
      `<span class="bar"><i style="width:${pct}%"></i></span> ${pct}%</div>` +
      `<table>${rows}</table>`;
    for (const tr of $("units").querySelectorAll("tr.click")) {
      tr.onclick = () => { selectRun(tr.dataset.id); };
    }
  } catch (e) { $("units").textContent = "campaign unreachable"; }
}

async function selectRun(runId) {
  state.run = runId;
  refreshUnits();
  $("heatmap-run").textContent = runId.slice(0, 12);
  $("trace-run").textContent = runId.slice(0, 12);
  try {
    state.report = await fetchJSON(`/runs/${runId}/report`);
    drawHeatmap(state.report);
  } catch (e) {
    state.report = null;
    $("heatmap-info").textContent = "no completed report yet";
  }
  try {
    const s = await fetchJSON(`/runs/${runId}/search`);
    state.trace = s.search && s.search.trace;
    initPlayback();
  } catch (e) { state.trace = null; initPlayback(); }
}

// ---- gap heatmap ----------------------------------------------------------
function drawHeatmap(report) {
  const canvas = $("heatmap"), ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const subspaces = report.subspaces || [];
  const names = report.input_names || [];
  if (!subspaces.length) {
    $("heatmap-info").textContent =
      `no significant subspaces (worst gap ${report.worst_gap.toFixed(4)})`;
    return;
  }
  // Bounds: the union of region boxes on the first two dims, padded.
  let x0 = Infinity, x1 = -Infinity, y0 = Infinity, y1 = -Infinity;
  const boxes = subspaces.map((s) => s.region.box);
  const dim = boxes[0].lo.length;
  for (const b of boxes) {
    x0 = Math.min(x0, b.lo[0]); x1 = Math.max(x1, b.hi[0]);
    y0 = Math.min(y0, dim > 1 ? b.lo[1] : 0);
    y1 = Math.max(y1, dim > 1 ? b.hi[1] : 1);
  }
  const padX = (x1 - x0 || 1) * 0.08, padY = (y1 - y0 || 1) * 0.08;
  x0 -= padX; x1 += padX; y0 -= padY; y1 += padY;
  const sx = (v) => (v - x0) / (x1 - x0) * canvas.width;
  const sy = (v) => canvas.height - (v - y0) / (y1 - y0) * canvas.height;
  const maxGap = Math.max(...subspaces.map((s) => s.mean_gap_inside), 1e-12);
  subspaces.forEach((s, i) => {
    const b = s.region.box;
    const heat = s.mean_gap_inside / maxGap;     // 0..1
    const hue = 210 - 170 * heat;                // blue -> red
    ctx.fillStyle = `hsla(${hue}, 85%, 55%, 0.45)`;
    ctx.strokeStyle = `hsl(${hue}, 85%, 65%)`;
    const px = sx(b.lo[0]), py = sy(dim > 1 ? b.hi[1] : 1);
    const w = Math.max(sx(b.hi[0]) - px, 2);
    const h = Math.max(sy(dim > 1 ? b.lo[1] : 0) - py, 2);
    ctx.fillRect(px, py, w, h);
    ctx.strokeRect(px, py, w, h);
    ctx.fillStyle = "#d7dde5";
    ctx.fillText(`#${i} ${s.mean_gap_inside.toFixed(3)}`, px + 3, py + 12);
  });
  const axes = dim > 1 ? `${names[0] || "x0"} × ${names[1] || "x1"}`
                       : (names[0] || "x0");
  $("heatmap-info").textContent =
    `${subspaces.length} subspace(s) over ${axes}; ` +
    `worst gap ${report.worst_gap.toFixed(4)}`;
}

// ---- search-trace playback ------------------------------------------------
function initPlayback() {
  const slider = $("round");
  if (!state.trace || !(state.trace.rounds || []).length) {
    slider.disabled = true; slider.max = 0;
    $("round-info").textContent = state.trace === null
      ? "no search block for this unit"
      : "no recorded rounds (uniform policy traces have none)";
    const ctx = $("cells").getContext("2d");
    ctx.clearRect(0, 0, $("cells").width, $("cells").height);
    return;
  }
  slider.disabled = false;
  slider.max = state.trace.rounds.length - 1;
  slider.value = slider.max;
  slider.oninput = () => drawRound(Number(slider.value));
  drawRound(Number(slider.value));
}

function drawRound(i) {
  const trace = state.trace, round = trace.rounds[i];
  const scores = round.scores || [];
  const by = { frontier: 0, pruned: 0, split: 0 };
  for (const s of scores) by[s.status] = (by[s.status] || 0) + 1;
  const refined = by.split || 0;
  const budget = trace.budget || round.spent_after || 1;
  $("round-info").innerHTML =
    `round ${round.index} (${esc(round.stage)}) &mdash; ` +
    `${by.frontier || 0} frontier, ${refined} refined, ` +
    `${by.pruned || 0} pruned &mdash; best gap ` +
    `${round.best_gap.toFixed(4)} &mdash; ledger ${round.spent_after}` +
    `/${budget}` +
    (round.scores_truncated ? " (cell list truncated)" : "");
  const canvas = $("cells"), ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const n = scores.length || 1;
  const w = Math.max(Math.floor(canvas.width / n) - 2, 3);
  const maxScore = Math.max(...scores.map((s) =>
    Math.min(s.score, 1e6)), 1e-12);
  scores.forEach((s, j) => {
    const hgt = Math.max(
      (Math.min(s.score, 1e6) / maxScore) * (canvas.height - 14), 2);
    ctx.fillStyle = s.status === "pruned" ? "#444c5a"
      : s.status === "split" ? "#3fb950" : "#4ea1ff";
    ctx.fillRect(j * (w + 2), canvas.height - hgt, w, hgt);
  });
}

// ---- fleet ----------------------------------------------------------------
async function refreshFleet() {
  try {
    const f = await fetchJSON("/fabric");
    const units = Object.entries(f.units || {})
      .map(([k, v]) => `${k}: ${v}`).join(", ");
    const fleet = f.fleet || {};
    $("fleet").innerHTML =
      `<div>units &mdash; ${esc(units)}</div>` +
      `<div>leases ${(f.leases || []).length}, ` +
      `quarantined ${(f.quarantined || []).length}, ` +
      `backlog ${f.backlog}</div>` +
      `<div>fleet &mdash; ${fleet.alive || 0}/${fleet.workers || 0} alive, ` +
      `${fleet.restarts || 0} restarts</div>` +
      `<div class="note">lease expiries ${f.counters.lease_expiries}, ` +
      `retries ${f.counters.retries}, ` +
      `late commits ${f.counters.late_commits}</div>`;
  } catch (e) {
    $("fleet").textContent = e.status === 404
      ? "local executor (no fabric fleet) — campaigns run in-process"
      : "fabric status unreachable";
  }
}

// ---- poll loop ------------------------------------------------------------
function tick() {
  refreshHealth(); refreshCampaigns(); refreshFleet();
  if (state.campaign) refreshUnits();
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
