"""The XPlain analysis service: a serving front end over the run store.

X-SYS argues explanation systems need an interactive service layer
around the core analyzer; this package is that layer for XPlain
(DESIGN.md §10). :class:`~repro.service.service.AnalysisService` queues
submitted campaign specs onto the store-backed campaign runner (so work
persists, dedupes, and resumes), and :mod:`repro.service.http` exposes
it as a stdlib JSON HTTP API — ``repro serve`` from the CLI.
"""

from repro.service.http import (
    DEFAULT_PORT,
    MAX_BODY_BYTES,
    make_server,
    serve,
)
from repro.service.service import SERVICE_EXECUTORS, AnalysisService

__all__ = [
    "AnalysisService",
    "DEFAULT_PORT",
    "MAX_BODY_BYTES",
    "SERVICE_EXECUTORS",
    "make_server",
    "serve",
]
