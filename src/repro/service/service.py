"""The long-running analysis service around the campaign runner.

:class:`AnalysisService` is the X-SYS-style interactive layer: submitted
campaign specs are validated, content-addressed, registered in the
:class:`~repro.store.runstore.RunStore`, and queued onto a single worker
thread that drives :func:`repro.parallel.campaign.run_campaign` — with
the store attached, so every unit persists as it completes and a crashed
or restarted service resumes campaigns instead of re-solving them.

Submission is idempotent by construction: the campaign ID is a content
address of the planned units, so re-submitting a spec whose campaign is
``done`` returns the stored result immediately, and re-submitting a
``failed`` or interrupted one re-queues it (completed units load from
the store and are skipped).

Two execution modes (DESIGN.md §13): ``executor="local"`` runs each
campaign's units through the classic serial/process pool, while
``executor="fabric"`` stands up a lease queue + supervised worker fleet
next to the store and pushes every campaign through a
:class:`~repro.fabric.executor.FabricExecutor` — heartbeats, retry with
backoff, poison-unit quarantine, and graceful degradation to in-driver
execution when the whole fleet is down. ``stop()`` drains rather than
abandons: the campaign checkpoint after the in-flight unit persists,
the campaign flips back to ``"pending"``, and the next ``start()``
requeues it to resume from the store.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from pathlib import Path

from repro.exceptions import AnalyzerError, CampaignInterrupted, ServiceBusy
from repro.obs import MetricsRegistry, merged_snapshot
from repro.parallel.campaign import (
    CampaignSpec,
    plan_campaign,
    run_campaign,
)
from repro.store import RunStore, campaign_id_for, run_id_for

#: legal execution modes for the service
SERVICE_EXECUTORS = ("local", "fabric")


class AnalysisService:
    """Queue + store + worker thread behind the JSON API and the CLI."""

    def __init__(
        self,
        store: RunStore | str | Path,
        workers: int = 1,
        retention: int = 0,
        executor: str = "local",
        max_pending: int = 0,
        lease_seconds: float = 10.0,
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise AnalyzerError(
                f"service workers must be an integer >= 1, got {workers!r}"
            )
        if not isinstance(retention, int) or retention < 0:
            raise AnalyzerError(
                f"service retention must be an integer >= 0, got {retention!r}"
            )
        if executor not in SERVICE_EXECUTORS:
            raise AnalyzerError(
                f"unknown service executor {executor!r}; "
                f"expected one of {SERVICE_EXECUTORS}"
            )
        if not isinstance(max_pending, int) or max_pending < 0:
            raise AnalyzerError(
                f"service max_pending must be an integer >= 0 "
                f"(0 = unbounded), got {max_pending!r}"
            )
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.workers = workers
        self.retention = retention
        self.executor = executor
        self.max_pending = max_pending
        self.lease_seconds = lease_seconds
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: campaign IDs queued or executing right now (submit dedupe)
        self._active: set[str] = set()
        self._lock = threading.Lock()
        #: fabric infrastructure (executor="fabric" only), built on start()
        self._fabric_queue = None
        self._fabric_supervisor = None
        #: the service's own metrics registry — deliberately *not* the
        #: process-global one, so embedding a service (tests, notebooks)
        #: never turns instrumentation on for unrelated code in the same
        #: process. The CLI ``serve`` path installs it globally too.
        self.metrics = MetricsRegistry()
        #: where fabric workers spill per-worker metric snapshots (the
        #: CLI exports this as XPLAIN_METRICS_DIR before the fleet forks)
        self.metrics_dir = self.store.path / "fabric" / "metrics"
        self.started_at = time.time()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "AnalysisService":
        if self._thread is not None:
            if self._thread.is_alive():
                return self
            # A stop() that timed out, whose worker has since exited.
            self._thread = None
        self._stop.clear()
        if self.executor == "fabric":
            self._start_fabric()
        self._thread = threading.Thread(
            target=self._worker, name="xplain-service-worker", daemon=True
        )
        self._thread.start()
        self._requeue_incomplete()
        return self

    def _start_fabric(self) -> None:
        """Bring up (or re-wake) the shared lease queue and worker fleet."""
        from repro.fabric.queue import WorkQueue
        from repro.fabric.supervisor import FabricSupervisor

        fabric_dir = self.store.path / "fabric"
        if self._fabric_queue is None:
            self._fabric_queue = WorkQueue(fabric_dir)
        if self._fabric_supervisor is None:
            self._fabric_supervisor = FabricSupervisor(
                fabric_dir,
                workers=self.workers,
                lease_seconds=self.lease_seconds,
            )
        self._fabric_supervisor.start()

    def _requeue_incomplete(self) -> None:
        """Re-enqueue campaigns a previous process left unfinished.

        A service killed mid-campaign leaves ``pending``/``running``
        rows behind; their specs are in the store, so a restart picks
        them up instead of waiting for a client to re-submit.
        Completed units load from the store as usual.
        """
        for row in self.store.list_campaigns():
            if row["status"] in ("done", "failed"):
                continue
            with self._lock:
                queued = row["campaign_id"] in self._active
                if not queued:
                    self._active.add(row["campaign_id"])
            if not queued:
                self._queue.put((row["campaign_id"], self.workers))

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain the worker and wait up to ``timeout`` for it to exit.

        A mid-campaign worker stops at the next unit boundary: the unit
        it was executing has already been persisted to the store, the
        campaign flips back to ``"pending"``, and the next ``start()``
        requeues it — so a stop/start cycle resumes exactly where it
        left off instead of recomputing (or abandoning) work.

        Returns False when the worker is still mid-unit at the deadline
        — the service then stays in the stopping state (a later
        ``start()`` will not spawn a second worker over it); call
        ``stop()`` again to finish the join.
        """
        if self._thread is None:
            self._stop_fabric(timeout)
            return True
        self._stop.set()
        self._queue.put(None)  # wake the worker
        self._thread.join(timeout)
        if self._thread.is_alive():
            return False
        self._thread = None
        self._stop_fabric(timeout)
        return True

    def _stop_fabric(self, timeout: float) -> None:
        if self._fabric_supervisor is not None:
            self._fabric_supervisor.stop(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- submission ---------------------------------------------------------
    def submit(self, spec_data: dict, workers: int | None = None) -> dict:
        """Validate, register, and queue one campaign spec.

        Returns ``{"campaign_id", "status", "num_jobs"}``. Raises
        :class:`~repro.exceptions.AnalyzerError` on an invalid spec (the
        HTTP layer maps that to 400) and
        :class:`~repro.exceptions.ServiceBusy` when ``max_pending``
        campaigns are already queued or running (mapped to 429) —
        backpressure applies before validation side effects register
        anything, so a rejected submit leaves no store row behind.
        """
        if self.max_pending:
            with self._lock:
                backlog = len(self._active)
            if backlog >= self.max_pending:
                raise ServiceBusy(
                    f"service backlog is full ({backlog} campaigns queued "
                    f"or running, max_pending={self.max_pending}); "
                    "retry after the backlog drains"
                )
        spec = CampaignSpec.from_dict(spec_data)
        payloads = plan_campaign(spec)
        campaign_id = campaign_id_for(spec.name, spec.seed, payloads)
        self.store.register_campaign(
            campaign_id,
            spec.name,
            spec.seed,
            spec.to_dict(),
            [
                (run_id_for(payload), job.name)
                for payload, job in zip(payloads, spec.jobs)
            ],
        )
        status = self.store.campaign(campaign_id)["status"]
        if status != "done":
            with self._lock:
                queued = campaign_id in self._active
                # A failed campaign is requeued even if its ID is still
                # in _active (the worker that just failed it may not
                # have released it yet); at worst the worker pops the
                # duplicate later and _execute skips a done campaign.
                requeue = not queued or status == "failed"
                if requeue:
                    self._active.add(campaign_id)
            if requeue:
                # A re-submitted failed campaign is pending again — a
                # poller must not read the queued work as terminal.
                if status == "failed":
                    self.store.set_campaign_status(campaign_id, "pending")
                    status = "pending"
                self._queue.put((campaign_id, workers or self.workers))
        return {
            "campaign_id": campaign_id,
            "status": status,
            "num_jobs": len(payloads),
        }

    # -- queries ------------------------------------------------------------
    def campaign_status(self, campaign_id: str) -> dict | None:
        """The stored campaign row plus a live progress fraction."""
        row = self.store.campaign(campaign_id)
        if row is None:
            return None
        runs = row.get("runs") or []
        done = sum(1 for r in runs if r["status"] == "done")
        row["units_total"] = len(runs)
        row["units_done"] = done
        row["progress"] = round(done / len(runs), 6) if runs else 0.0
        return row

    def run_report(self, run_id: str) -> dict | None:
        return self.store.completed_report(run_id)

    def run_search(self, run_id: str) -> dict | None:
        """One completed run's ``"search"`` block (policy, budget, trace).

        None when the run is missing/incomplete; reports persisted
        before the search subsystem existed serve an explicit
        ``{"policy": None, ...}`` placeholder rather than a 404, so
        pollers can distinguish "no such run" from "pre-search run".
        """
        report = self.store.completed_report(run_id)
        if report is None:
            return None
        return report.get("search") or {
            "policy": None,
            "budget": None,
            "rounds": None,
            "oracle_calls": 0,
            "evals_to_first_region": None,
            "trace": None,
        }

    def fabric_status(self) -> dict | None:
        """Queue + fleet health for ``GET /fabric``; None in local mode."""
        if self.executor != "fabric" or self._fabric_queue is None:
            return None
        status = self._fabric_queue.status()
        if self._fabric_supervisor is not None:
            status["fleet"] = self._fabric_supervisor.status()
        status["executor"] = "fabric"
        with self._lock:
            status["backlog"] = len(self._active)
        status["max_pending"] = self.max_pending
        return status

    def health_info(self) -> dict:
        """The ``GET /healthz`` body: liveness plus deploy identity.

        One round trip tells an operator what is running (version,
        executor mode), for how long, and whether the store behind it
        answers queries.
        """
        import repro

        try:
            self.store.list_campaigns()
            store_status = "ok"
        except Exception as exc:  # noqa: BLE001 - health must not raise
            store_status = f"error: {type(exc).__name__}: {exc}"
        with self._lock:
            backlog = len(self._active)
        return {
            "status": "ok" if self.running and store_status == "ok" else "degraded",
            "worker_alive": self.running,
            "version": repro.__version__,
            "executor": self.executor,
            "workers": self.workers,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "store": store_status,
            "backlog": backlog,
        }

    # -- metrics ------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Everything ``GET /metrics`` exposes, as one merged snapshot.

        The merge happens into a throwaway registry every scrape —
        worker spill files are *cumulative*, so folding them into the
        service's own accumulating registry would double-count. Scrapes
        are therefore read-only: two back-to-back scrapes with no work
        in between render identical exposition text.
        """
        gauges = MetricsRegistry()
        gauges.gauge_set(
            "xplain_service_uptime_seconds",
            time.time() - self.started_at,
            help="seconds since this service process started",
        )
        with self._lock:
            backlog = len(self._active)
        gauges.gauge_set(
            "xplain_service_backlog",
            backlog,
            help="campaigns queued or running right now",
        )
        gauges.gauge_set(
            "xplain_service_worker_alive",
            1.0 if self.running else 0.0,
            help="1 when the campaign worker thread is alive",
        )
        if self.executor == "fabric" and self._fabric_queue is not None:
            self._fabric_gauges(gauges)
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        merged.merge(gauges.snapshot())
        return merged_snapshot(
            merged, self.metrics_dir if self.metrics_dir.is_dir() else None
        )

    def _fabric_gauges(self, gauges: MetricsRegistry) -> None:
        """Fabric queue/fleet state, synthesized fresh per scrape."""
        try:
            status = self._fabric_queue.status()
        except Exception:  # noqa: BLE001 - a scrape must not 500
            return
        for unit_status, count in status.get("units", {}).items():
            gauges.gauge_set(
                "xplain_fabric_units",
                count,
                help="fabric queue units by status",
                status=unit_status,
            )
        for event, value in status.get("counters", {}).items():
            gauges.gauge_set(
                "xplain_fabric_events",
                value,
                help="cumulative fabric queue events (queue counters table)",
                event=event,
            )
        gauges.gauge_set(
            "xplain_fabric_leases",
            len(status.get("leases", [])),
            help="units currently leased to workers",
        )
        gauges.gauge_set(
            "xplain_fabric_quarantined",
            len(status.get("quarantined", [])),
            help="poison units quarantined after bounded retries",
        )
        if self._fabric_supervisor is not None:
            fleet = self._fabric_supervisor.status()
            gauges.gauge_set(
                "xplain_fabric_fleet_alive",
                fleet.get("alive", 0),
                help="fabric worker processes currently alive",
            )
            gauges.gauge_set(
                "xplain_fabric_fleet_restarts",
                fleet.get("restarts", 0),
                help="fabric worker processes restarted by the supervisor",
            )

    # -- the worker ---------------------------------------------------------
    def _worker(self) -> None:
        while not self._stop.is_set():
            item = self._queue.get()
            if item is None:
                continue
            campaign_id, workers = item
            try:
                self._execute(campaign_id, workers)
            except CampaignInterrupted:
                # stop() drained us mid-campaign: run_campaign already
                # persisted every finished unit and reset the campaign
                # to "pending", so the next start() resumes it.
                pass
            except Exception as exc:  # noqa: BLE001 - service must survive
                # run_campaign already marked the campaign failed; any
                # other error (store corruption, bad spec row) must not
                # kill the worker thread.
                try:
                    self.store.set_campaign_status(
                        campaign_id, "failed", error=str(exc)
                    )
                except Exception:  # noqa: BLE001
                    traceback.print_exc()
            finally:
                with self._lock:
                    self._active.discard(campaign_id)
                self._queue.task_done()

    def _execute(self, campaign_id: str, workers: int) -> None:
        row = self.store.campaign(campaign_id)
        if row is None:
            raise AnalyzerError(f"queued campaign {campaign_id!r} not in store")
        if row["status"] == "done":
            return
        spec = CampaignSpec.from_dict(row["spec"])
        executor = self._make_campaign_executor(campaign_id)
        try:
            run_campaign(
                spec,
                workers=workers,
                store=self.store,
                executor=executor,
                should_stop=self._stop.is_set,
                metrics=self.metrics,
            )
        finally:
            if executor is not None:
                executor.close()
        if self.retention > 0:
            try:
                self.store.gc(keep=self.retention)
            except Exception:  # noqa: BLE001
                # Retention is housekeeping: a gc hiccup (e.g. a lock
                # timeout against a concurrent CLI) must not flip the
                # just-completed campaign to failed.
                traceback.print_exc()

    def _make_campaign_executor(self, campaign_id: str):
        """A FabricExecutor over the shared queue, or None for local mode."""
        if self.executor != "fabric" or self._fabric_queue is None:
            return None
        from repro.fabric.executor import FabricExecutor

        return FabricExecutor(
            self._fabric_queue,
            supervisor=self._fabric_supervisor,
            group_id=campaign_id,
            lease_seconds=self.lease_seconds,
        )
