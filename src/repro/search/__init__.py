"""Budget-aware adaptive gap search (DESIGN.md §12).

The planning layer between the samplers and the gap oracle: a
:class:`~repro.search.policy.SearchPolicy` decides *where* the
pipeline's oracle budget is spent. ``uniform`` reproduces the legacy
blind sampling bit for bit; ``bandit`` hunts high-gap regions with a
UCB bandit over a refinable, prunable cell tree; ``hybrid`` mixes the
two. Every policy charges one shared
:class:`~repro.search.budget.BudgetLedger` and logs onto a
:class:`~repro.search.trace.SearchTrace` that rides in run reports,
persists in the run store, and is served at ``GET /runs/<id>/search``.
"""

from repro.search.budget import (
    STAGE_ANALYZER,
    STAGE_RECENTER,
    STAGE_TREE,
    BudgetLedger,
)
from repro.search.cells import Cell
from repro.search.engine import AdaptiveSearchEngine, SearchResult
from repro.search.measure import evals_to_target, local_bad_density
from repro.search.policy import (
    SEARCH_POLICIES,
    BanditPolicy,
    HybridPolicy,
    SearchPolicy,
    UniformPolicy,
    make_policy,
)
from repro.search.trace import CellScore, SearchRound, SearchTrace

__all__ = [
    "AdaptiveSearchEngine",
    "BanditPolicy",
    "BudgetLedger",
    "Cell",
    "CellScore",
    "HybridPolicy",
    "SEARCH_POLICIES",
    "STAGE_ANALYZER",
    "STAGE_RECENTER",
    "STAGE_TREE",
    "SearchPolicy",
    "SearchResult",
    "SearchRound",
    "SearchTrace",
    "UniformPolicy",
    "evals_to_target",
    "local_bad_density",
    "make_policy",
]
