"""The shared oracle-call budget ledger.

Every search-routed gap evaluation — the black-box analyzer's seed
search, the subspace generator's tree-sample draws, the bandit engine's
cell batches — is charged against one :class:`BudgetLedger` per pipeline
run, tagged with the stage that spent it. That gives two things the old
per-component counters could not:

* **comparable accounting** — the black-box and DSL (MetaOpt) analyzer
  paths report their search spending through the same ledger, so
  ``oracle_calls`` in :class:`~repro.oracle.stats.OracleStats` means the
  same thing on both;
* **a real budget** — adaptive policies (:mod:`repro.search.policy`)
  treat ``limit`` as a hard cap and stop drawing when the ledger is
  exhausted. The ``uniform`` policy never clips (it must reproduce the
  legacy pipeline bit for bit) and uses the ledger as a tracker only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SearchError

#: ledger stage names the pipeline charges (kept here, the leaf module
#: of the search package, so the analyzers can import them without
#: pulling the whole policy/engine stack into their import graph)
STAGE_ANALYZER = "analyzer"  #: black-box adversarial seed search
STAGE_RECENTER = "recenter"  #: seed re-centering probe
STAGE_TREE = "tree"  #: regression-tree training samples


@dataclass
class BudgetLedger:
    """Per-stage spending record with an optional hard limit.

    ``limit=None`` means unlimited (track only). Charges are integral
    point counts; the ledger never goes negative and ``take`` never
    grants more than what remains.
    """

    limit: int | None = None
    stages: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise SearchError(
                f"budget limit must be a positive integer or None, "
                f"got {self.limit!r}"
            )

    # ------------------------------------------------------------------
    @property
    def spent(self) -> int:
        """Total points charged across all stages."""
        return sum(self.stages.values())

    def stage_spent(self, stage: str) -> int:
        return self.stages.get(stage, 0)

    def remaining(self) -> int | None:
        """Points left under the limit, or None when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit

    # ------------------------------------------------------------------
    def charge(self, points: int, stage: str) -> int:
        """Record ``points`` oracle evaluations against ``stage``.

        Charging is unconditional — the caller already evaluated the
        points — so an overdraw is recorded faithfully rather than
        silently clipped; use :meth:`take` *before* evaluating to stay
        within the limit.
        """
        if points < 0:
            raise SearchError(f"cannot charge {points} points")
        if points:
            self.stages[stage] = self.stages.get(stage, 0) + int(points)
        return int(points)

    def take(self, want: int, stage: str) -> int:
        """Reserve up to ``want`` points for ``stage`` and charge them.

        Returns how many were granted: ``want`` when unlimited,
        otherwise ``min(want, remaining)``. Adaptive policies size their
        next oracle batch with this, so they can never overdraw.
        """
        if want <= 0:
            return 0
        granted = want
        remaining = self.remaining()
        if remaining is not None:
            granted = min(want, remaining)
        return self.charge(granted, stage)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; round-trips through :meth:`from_dict`."""
        return {
            "limit": self.limit,
            "spent": self.spent,
            "stages": {k: int(v) for k, v in sorted(self.stages.items())},
        }

    @staticmethod
    def from_dict(data: dict) -> "BudgetLedger":
        ledger = BudgetLedger(limit=data.get("limit"))
        for stage, points in (data.get("stages") or {}).items():
            ledger.charge(int(points), str(stage))
        return ledger
