"""Ablation measurements: how many oracle calls until a policy scores.

These helpers are the shared substrate of
``benchmarks/test_bench_adaptive_search.py`` and the CI
``search-ablation`` job's ``BENCH_search.json`` distillation: for one
problem and one policy, count oracle evaluations until the first point
with ``gap >= target_gap`` is seen (the "evals to first region"
metric). Counting is identical across policies — points submitted to
``evaluate_many``, in submission order — so the ratios are fair.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SearchError
from repro.parallel.shard import STAGE_SEARCH, derive_seed
from repro.search.budget import BudgetLedger
from repro.search.engine import AdaptiveSearchEngine
from repro.search.policy import SEARCH_POLICIES

#: points per uniform sweep batch (also the bandit engine's effective
#: granularity through its round allocation)
MEASURE_BATCH = 64


def _uniform_evals_to_target(
    problem, target_gap: float, seed: int, budget: int, hits: int
) -> int | None:
    rng = np.random.default_rng(derive_seed(seed, STAGE_SEARCH, 0))
    spent = 0
    seen = 0
    while spent < budget:
        n = min(MEASURE_BATCH, budget - spent)
        points = problem.input_box.sample(rng, n)
        gaps = problem.evaluate_many(points).gaps
        positions = np.flatnonzero(gaps >= target_gap)
        if len(positions) >= hits - seen:
            return spent + int(positions[hits - seen - 1]) + 1
        seen += len(positions)
        spent += n
    return None


def _bandit_evals_to_target(
    problem, target_gap: float, seed: int, budget: int, rounds: int | None, hits: int
) -> int | None:
    if rounds is None:
        # Small per-round batches give the bandit room to adapt: ~16
        # points per round, capped so tiny budgets still run in one go.
        rounds = max(1, budget // 16)
    ledger = BudgetLedger(limit=budget)
    engine = AdaptiveSearchEngine(
        problem,
        problem.input_box,
        threshold=0.0,
        ledger=ledger,
        budget=budget,
        rounds=rounds,
        seed=seed,
        stage="measure",
        target_gap=target_gap,
        target_hits=hits,
    )
    return engine.run().evals_to_target


def evals_to_target(
    problem,
    policy: str,
    target_gap: float,
    seed: int = 0,
    budget: int = 20_000,
    rounds: int | None = None,
    hits: int = 1,
) -> int | None:
    """Oracle evaluations until ``hits`` points with ``gap >= target_gap``.

    ``hits=1`` measures time-to-first-adversarial-point; a larger count
    measures time-to-*region* — the policy has to accumulate that many
    above-target points, which rewards concentrating on dense bad areas
    rather than getting lucky once. Returns None when the policy
    exhausts ``budget`` first. Deterministic for a fixed
    ``(problem, policy, seed)``.
    """
    if policy not in SEARCH_POLICIES:
        raise SearchError(
            f"unknown search policy {policy!r}; "
            f"expected one of {SEARCH_POLICIES}"
        )
    if policy == "uniform":
        return _uniform_evals_to_target(problem, target_gap, seed, budget, hits)
    if policy == "bandit":
        return _bandit_evals_to_target(problem, target_gap, seed, budget, rounds, hits)
    # hybrid: a uniform coverage sweep first, then the bandit engine.
    # (The sweep and the engine count hits independently, which only
    # *understates* the hybrid's speed — acceptable for an ablation.)
    sweep = budget // 2
    found = _uniform_evals_to_target(problem, target_gap, seed, sweep, hits)
    if found is not None:
        return found
    # The engine's root cell would otherwise derive the very stream the
    # sweep just drained (both start from (seed, STAGE_SEARCH, 0)) and
    # open by re-evaluating known-bad points — derive a fresh branch.
    refined = _bandit_evals_to_target(
        problem,
        target_gap,
        derive_seed(seed, STAGE_SEARCH, 1),
        budget - sweep,
        rounds,
        hits,
    )
    return None if refined is None else sweep + refined


def local_bad_density(
    problem,
    x: np.ndarray,
    target_gap: float,
    seed: int = 0,
    samples: int = 200,
    radius_fraction: float = 0.05,
) -> float:
    """Fraction of a small box around ``x`` with ``gap >= target_gap``.

    The benchmark's "region of equal gap density" check: a policy must
    not win the evals race by landing on an isolated spike — the
    neighborhood it found has to carry comparable bad mass.
    """
    from repro.subspace.region import Box

    box = Box.around(
        np.asarray(x, dtype=float),
        problem.input_box.widths * radius_fraction,
        bounds=problem.input_box,
    )
    rng = np.random.default_rng(derive_seed(seed, STAGE_SEARCH, 1))
    points = box.sample(rng, samples)
    gaps = problem.evaluate_many(points).gaps
    return float(np.mean(gaps >= target_gap))
