"""Search policies: how the pipeline spends its gap-oracle budget.

A :class:`SearchPolicy` sits between the samplers and the oracle. The
subspace generator asks it for tree-training samples inside a box
(:meth:`~SearchPolicy.sample_region`) and the black-box analyzer asks
it for an adversarial seed point (:meth:`~SearchPolicy.seed_search`);
both charge the policy's shared :class:`~repro.search.budget.
BudgetLedger` and log onto its :class:`~repro.search.trace.SearchTrace`.

Three policies are registered:

* ``uniform`` — the exact legacy behavior, bit for bit: every draw goes
  through :func:`repro.subspace.sampler.sample_in_box` with the caller's
  own random stream, and the ledger only *tracks* (it never clips), so
  a ``search="uniform"`` run reproduces the pre-search pipeline
  identically. This is the default.
* ``bandit`` — every draw runs the UCB cell-tree engine
  (:class:`~repro.search.engine.AdaptiveSearchEngine`); the ledger's
  ``search_budget`` limit is a hard cap.
* ``hybrid`` — half of each allowance is spent uniformly (coverage),
  the rest through the bandit engine (exploitation).
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import SearchError
from repro.parallel.shard import STAGE_SEARCH, derive_seed
from repro.search.budget import STAGE_ANALYZER, BudgetLedger
from repro.search.engine import AdaptiveSearchEngine
from repro.search.trace import SearchTrace
from repro.subspace.region import Box
from repro.subspace.sampler import SampleSet, sample_in_box

#: legal values of the ``search`` config knob / ``--search`` CLI option
SEARCH_POLICIES = ("uniform", "bandit", "hybrid")


@runtime_checkable
class SearchPolicy(Protocol):
    """What the generator and the analyzers need from a policy."""

    name: str
    #: adaptive policies enforce the budget and replace uniform draws;
    #: the uniform policy is pass-through and never clips
    adaptive: bool
    ledger: BudgetLedger
    trace: SearchTrace

    def sample_region(
        self,
        problem,
        box: Box,
        count: int,
        threshold: float,
        rng: np.random.Generator,
        stage: str,
    ) -> SampleSet:
        """Draw (up to) ``count`` evaluated samples inside ``box``."""
        ...

    def seed_search(
        self,
        problem,
        min_gap: float,
        excluded: list[Box],
        budget: int,
    ) -> tuple[np.ndarray | None, float]:
        """Hunt the input box for the highest-gap admissible point."""
        ...


class UniformPolicy:
    """The legacy behavior: uniform draws, tracking-only ledger."""

    adaptive = False

    def __init__(self, seed: int = 0) -> None:
        # No budget: uniform must reproduce the pre-search pipeline bit
        # for bit, so its ledger has no limit and its trace records no
        # enforceable budget (reports carry the *configured* value in
        # their "search" block, sourced from the config).
        self.name = "uniform"
        self.seed = seed
        self.ledger = BudgetLedger(limit=None)
        self.trace = SearchTrace(policy=self.name, budget=None, ledger=self.ledger)

    def sample_region(self, problem, box, count, threshold, rng, stage) -> SampleSet:
        samples = sample_in_box(problem, box, count, threshold, rng)
        self.ledger.charge(samples.size, stage)
        if samples.size:
            self.trace.best_gap = max(self.trace.best_gap, float(samples.gaps.max()))
        return samples

    def seed_search(self, problem, min_gap, excluded, budget):
        raise SearchError(
            "the uniform policy has no adaptive seed search; the "
            "black-box analyzer keeps its own strategies under "
            "search='uniform'"
        )


class BanditPolicy:
    """UCB cell-tree search against a hard budget."""

    adaptive = True
    name = "bandit"

    def __init__(
        self,
        budget: int,
        rounds: int,
        seed: int = 0,
        explore: float = 0.5,
    ) -> None:
        self.seed = seed
        self.rounds = max(1, int(rounds))
        self.explore = explore
        self.ledger = BudgetLedger(limit=int(budget))
        self.trace = SearchTrace(
            policy=self.name,
            budget=int(budget),
            rounds_planned=self.rounds,
            ledger=self.ledger,
        )
        #: per-call counter: every engine launch owns a derived stream
        self._calls = 0

    # ------------------------------------------------------------------
    def _next_seed(self) -> int:
        seed = derive_seed(self.seed, STAGE_SEARCH, self._calls)
        self._calls += 1
        return seed

    def _engine(
        self,
        problem,
        box: Box,
        threshold: float,
        budget: int,
        rounds: int,
        stage: str,
        excluded: list[Box] | None = None,
        target_gap: float | None = None,
    ) -> AdaptiveSearchEngine:
        return AdaptiveSearchEngine(
            problem,
            box,
            threshold=threshold,
            ledger=self.ledger,
            budget=budget,
            rounds=rounds,
            seed=self._next_seed(),
            stage=stage,
            excluded=excluded,
            explore=self.explore,
            trace=self.trace,
            target_gap=target_gap,
        )

    # ------------------------------------------------------------------
    def sample_region(self, problem, box, count, threshold, rng, stage) -> SampleSet:
        if count <= 0 or self.ledger.exhausted:
            return SampleSet(np.zeros((0, box.dim)), np.zeros(0), threshold)
        # Short bursts get few rounds so every round still carries a
        # meaningful batch; long hunts get the configured round count.
        rounds = max(1, min(self.rounds, count // 16))
        engine = self._engine(
            problem, box, threshold, budget=count, rounds=rounds, stage=stage
        )
        return engine.run().samples

    def seed_search(self, problem, min_gap, excluded, budget):
        if self.ledger.exhausted:
            return None, -math.inf
        engine = self._engine(
            problem,
            problem.input_box,
            threshold=min_gap,
            budget=budget,
            rounds=self.rounds,
            stage=STAGE_ANALYZER,
            excluded=excluded,
        )
        result = engine.run()
        return result.best_x, result.best_gap


class HybridPolicy(BanditPolicy):
    """Half uniform coverage, half bandit refinement."""

    name = "hybrid"

    def sample_region(self, problem, box, count, threshold, rng, stage) -> SampleSet:
        if count <= 0 or self.ledger.exhausted:
            return SampleSet(np.zeros((0, box.dim)), np.zeros(0), threshold)
        uniform_want = self.ledger.take(count // 2, stage)
        coverage = sample_in_box(
            problem,
            box,
            uniform_want,
            threshold,
            np.random.default_rng(self._next_seed()),
        )
        if coverage.size:
            self.trace.best_gap = max(self.trace.best_gap, float(coverage.gaps.max()))
        refined = BanditPolicy.sample_region(
            self, problem, box, count - uniform_want, threshold, rng, stage
        )
        return coverage.merged_with(refined)

    def seed_search(self, problem, min_gap, excluded, budget):
        sweep_want = budget // 2
        remaining = self.ledger.remaining()
        if remaining is not None:
            sweep_want = min(sweep_want, remaining)
        best_x: np.ndarray | None = None
        best_gap = -math.inf
        charged = 0
        if sweep_want > 0:
            rng = np.random.default_rng(self._next_seed())
            points = problem.input_box.sample(rng, sweep_want)
            admissible = np.ones(len(points), dtype=bool)
            for exclusion in excluded:
                admissible &= ~exclusion.contains_many(points)
            points = points[admissible]
            # Charge only what actually reaches the oracle: discarded
            # (excluded) draws cost nothing, so the ledger's
            # oracle_calls stays an honest evaluation count and the
            # bandit phase is not clipped by phantom spending.
            charged = self.ledger.take(len(points), STAGE_ANALYZER)
            points = points[:charged]
            if len(points):
                gaps = problem.evaluate_many(points).gaps
                index = int(np.argmax(gaps))
                best_x, best_gap = points[index].copy(), float(gaps[index])
                self.trace.best_gap = max(self.trace.best_gap, max(best_gap, 0.0))
        bandit_x, bandit_gap = BanditPolicy.seed_search(
            self, problem, min_gap, excluded, budget - charged
        )
        if bandit_x is not None and bandit_gap > best_gap:
            return bandit_x, bandit_gap
        return best_x, best_gap


def make_policy(
    name: str,
    budget: int,
    rounds: int,
    seed: int = 0,
    explore: float = 0.5,
) -> SearchPolicy:
    """Build the policy a run's configuration asks for."""
    if name == "uniform":
        return UniformPolicy(seed=seed)
    if name == "bandit":
        return BanditPolicy(budget=budget, rounds=rounds, seed=seed, explore=explore)
    if name == "hybrid":
        return HybridPolicy(budget=budget, rounds=rounds, seed=seed, explore=explore)
    raise SearchError(
        f"unknown search policy {name!r}; expected one of {SEARCH_POLICIES}"
    )
