"""The search trace: what the adaptive engine did with its budget.

A :class:`SearchTrace` is the deterministic audit log of one pipeline
run's search activity: per-round frontier-cell scores and allocations,
the budget ledger's per-stage spending, how much input volume was pruned
as hopeless, and how many oracle evaluations it took to reach the first
confirmed adversarial region. It rides inside the campaign unit report
(``unit_report["search"]``), round-trips through the run store, and is
served by ``GET /runs/<id>/search``.

Everything here is JSON-safe and a pure function of the unit payload —
the same determinism contract the rest of the report obeys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.search.budget import BudgetLedger

#: frontier-cell score rows kept per round in the trace (the engine may
#: track many more cells; the trace keeps the top scorers so reports stay
#: small — `scores_truncated` records when that happened)
MAX_TRACED_CELLS = 16


@dataclass
class CellScore:
    """One frontier cell's score snapshot at round-selection time."""

    cell: str  #: path-style cell id ("0", "0.L", "0.L.R", ...)
    evals: int
    mean_gap: float
    max_gap: float
    score: float
    status: str  #: "frontier" | "split" | "pruned"

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "evals": int(self.evals),
            "mean_gap": float(self.mean_gap),
            "max_gap": float(self.max_gap),
            "score": float(self.score),
            "status": self.status,
        }

    @staticmethod
    def from_dict(data: dict) -> "CellScore":
        return CellScore(
            cell=str(data["cell"]),
            evals=int(data["evals"]),
            mean_gap=float(data["mean_gap"]),
            max_gap=float(data["max_gap"]),
            score=float(data["score"]),
            status=str(data["status"]),
        )


@dataclass
class SearchRound:
    """One bandit round: who scored what, who got the oracle batch."""

    index: int
    stage: str  #: ledger stage this round charged ("analyzer", "tree", ...)
    allocated: dict[str, int]  #: cell id -> points granted this round
    scores: list[CellScore] = field(default_factory=list)
    scores_truncated: bool = False
    best_gap: float = 0.0
    spent_after: int = 0  #: ledger total after this round's batch

    def to_dict(self) -> dict:
        return {
            "index": int(self.index),
            "stage": self.stage,
            "allocated": {k: int(v) for k, v in sorted(self.allocated.items())},
            "scores": [s.to_dict() for s in self.scores],
            "scores_truncated": bool(self.scores_truncated),
            "best_gap": float(self.best_gap),
            "spent_after": int(self.spent_after),
        }

    @staticmethod
    def from_dict(data: dict) -> "SearchRound":
        return SearchRound(
            index=int(data["index"]),
            stage=str(data["stage"]),
            allocated={str(k): int(v) for k, v in data["allocated"].items()},
            scores=[CellScore.from_dict(s) for s in data.get("scores", [])],
            scores_truncated=bool(data.get("scores_truncated", False)),
            best_gap=float(data.get("best_gap", 0.0)),
            spent_after=int(data.get("spent_after", 0)),
        )


@dataclass
class SearchTrace:
    """The full audit log of one run's search subsystem."""

    policy: str
    budget: int | None = None
    rounds_planned: int = 0
    rounds: list[SearchRound] = field(default_factory=list)
    ledger: BudgetLedger = field(default_factory=BudgetLedger)
    pruned_volume: float = 0.0
    domain_volume: float = 0.0
    best_gap: float = 0.0
    #: ledger total the moment the generator confirmed its first
    #: significant region (None = no region was ever confirmed)
    evals_to_first_region: int | None = None

    @property
    def total_spent(self) -> int:
        return self.ledger.spent

    @property
    def pruned_fraction(self) -> float:
        if self.domain_volume <= 0:
            return 0.0
        return min(1.0, self.pruned_volume / self.domain_volume)

    def note_region_found(self) -> None:
        """Record the spend-to-first-region marker (first call wins)."""
        if self.evals_to_first_region is None:
            self.evals_to_first_region = self.ledger.spent

    def describe(self) -> str:
        parts = [
            f"search policy {self.policy!r}: {self.total_spent} oracle "
            f"calls"
            + (f" of {self.budget} budgeted" if self.budget else ""),
        ]
        if self.rounds:
            parts.append(
                f"  {len(self.rounds)} bandit rounds, best gap "
                f"{self.best_gap:.4g}, pruned "
                f"{100.0 * self.pruned_fraction:.1f}% of the input volume"
            )
        if self.evals_to_first_region is not None:
            parts.append(
                f"  first region confirmed after "
                f"{self.evals_to_first_region} search evaluations"
            )
        return "\n".join(parts)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; round-trips through :meth:`from_dict`."""
        return {
            "policy": self.policy,
            "budget": self.budget,
            "rounds_planned": int(self.rounds_planned),
            "rounds": [r.to_dict() for r in self.rounds],
            "ledger": self.ledger.to_dict(),
            "pruned_volume": float(self.pruned_volume),
            "domain_volume": float(self.domain_volume),
            "best_gap": float(self.best_gap),
            "evals_to_first_region": self.evals_to_first_region,
        }

    @staticmethod
    def from_dict(data: dict) -> "SearchTrace":
        return SearchTrace(
            policy=str(data["policy"]),
            budget=data.get("budget"),
            rounds_planned=int(data.get("rounds_planned", 0)),
            rounds=[SearchRound.from_dict(r) for r in data.get("rounds", [])],
            ledger=BudgetLedger.from_dict(data.get("ledger", {})),
            pruned_volume=float(data.get("pruned_volume", 0.0)),
            domain_volume=float(data.get("domain_volume", 0.0)),
            best_gap=float(data.get("best_gap", 0.0)),
            evals_to_first_region=data.get("evals_to_first_region"),
        )
