"""The budget-aware adaptive search engine (UCB bandit over a cell tree).

Uniform sampling spends most of its oracle calls on near-zero-gap
points when the bad region is a thin sliver. The engine instead treats
the input box as a tree of cells (:mod:`repro.search.cells`) and plays
a multi-armed bandit over the frontier:

* each round, every frontier cell gets a UCB-style score — observed
  max/mean gap plus an exploration bonus that decays with the cell's
  own evaluation count;
* the round's oracle batch (taken from the shared
  :class:`~repro.search.budget.BudgetLedger`) is allocated across the
  top-scoring cells and evaluated as ONE ``evaluate_many`` batch, which
  the oracle engine cuts into placement-free work units and shards
  across executor workers — the same machinery (and therefore the same
  workers=1 vs workers=N bit-identity) every other pipeline stage uses;
* promising cells are *refined* (split at the best CART cut of their own
  samples), hopeless cells are *pruned* (their volume is retired from
  the search, the "eliminating the impossible" move), and the loop ends
  when the ledger runs dry.

Everything the engine does is recorded on a
:class:`~repro.search.trace.SearchTrace` round by round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as _obs
from repro.obs.tracing import span as _span
from repro.search.budget import BudgetLedger
from repro.search.cells import Cell, covered_by_any
from repro.search.trace import MAX_TRACED_CELLS, CellScore, SearchRound, SearchTrace
from repro.subspace.region import Box
from repro.subspace.sampler import SampleSet

#: optimistic score for a cell that has never been evaluated: it always
#: wins a batch before any visited cell is revisited
UNVISITED_SCORE = 1e18


@dataclass
class SearchResult:
    """What one engine run found and what it cost."""

    samples: SampleSet
    best_x: np.ndarray | None
    best_gap: float
    spent: int
    #: cumulative evaluations when the ``target_hits``-th point with
    #: ``gap >= target_gap`` was seen (None: no target, or never reached)
    evals_to_target: int | None = None


class AdaptiveSearchEngine:
    """One bandit-guided hunt inside one box, against one ledger."""

    def __init__(
        self,
        problem,
        box: Box,
        threshold: float,
        ledger: BudgetLedger,
        budget: int,
        rounds: int,
        seed: int,
        stage: str = "search",
        excluded: list[Box] | None = None,
        explore: float = 0.25,
        top_cells: int = 3,
        splits_per_round: int = 6,
        split_evals: int = 8,
        prune_evals: int = 12,
        prune_fraction: float = 0.5,
        max_depth: int = 24,
        target_gap: float | None = None,
        target_hits: int = 1,
        trace: SearchTrace | None = None,
    ) -> None:
        self.problem = problem
        self.box = box
        self.threshold = threshold
        self.ledger = ledger
        self.budget = max(1, int(budget))
        self.rounds = max(1, int(rounds))
        self.seed = seed
        self.stage = stage
        self.excluded = list(excluded or [])
        self.explore = explore
        self.top_cells = max(1, int(top_cells))
        self.splits_per_round = max(0, int(splits_per_round))
        self.split_evals = split_evals
        self.prune_evals = prune_evals
        self.prune_fraction = prune_fraction
        self.max_depth = max_depth
        self.target_gap = target_gap
        self.target_hits = max(1, int(target_hits))
        self.trace = trace

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        cells: list[Cell] = [
            Cell(cell_id="0", index=0, box=self.box, depth=0, seed=self.seed)
        ]
        pruned_volume = 0.0
        collected_points: list[np.ndarray] = []
        collected_gaps: list[np.ndarray] = []
        best_x: np.ndarray | None = None
        best_gap = -math.inf
        spent = 0
        hits_seen = 0
        evals_to_target: int | None = None
        per_round = max(1, self.budget // self.rounds)

        for round_index in range(self.rounds):
            frontier = [c for c in cells if c.status == "frontier"]
            # Retire cells the analyzer has fully excluded.
            for cell in frontier:
                if covered_by_any(cell.box, self.excluded):
                    cell.status = "pruned"
                    pruned_volume += cell.volume()
            frontier = [c for c in cells if c.status == "frontier"]
            if not frontier:
                break

            want = per_round
            if round_index == self.rounds - 1:
                want = max(per_round, self.budget - spent)
            want = min(want, self.budget - spent)
            if want <= 0:
                break

            scores = {c.index: self._score(c, spent, best_gap) for c in frontier}
            ranked = sorted(frontier, key=lambda c: (-scores[c.index], c.index))
            chosen = ranked[: self.top_cells]
            allocation = self._allocate(want, len(chosen))

            # Draw per-cell proposals from each cell's own derived
            # stream, drop points inside exclusion boxes, then reserve
            # exactly what survives from the ledger.
            batches: list[tuple[Cell, np.ndarray]] = []
            for cell, alloc in zip(chosen, allocation):
                if alloc <= 0:
                    continue
                proposals = cell.draw(alloc)
                admissible = np.ones(len(proposals), dtype=bool)
                for exclusion in self.excluded:
                    admissible &= ~exclusion.contains_many(proposals)
                proposals = proposals[admissible]
                if len(proposals):
                    batches.append((cell, proposals))
            n_proposed = sum(len(p) for _, p in batches)
            if n_proposed == 0:
                # Every proposal this round fell inside an exclusion
                # box. The round cost nothing — draw fresh proposals
                # next round (cell streams have advanced) instead of
                # abandoning a hunt that still has budget and
                # admissible space.
                continue
            granted = self.ledger.take(n_proposed, self.stage)
            if granted == 0:
                break  # the shared ledger is exhausted
            if granted < n_proposed:
                batches = self._truncate(batches, granted)

            stacked = np.vstack([p for _, p in batches])
            with _span(
                "search.round",
                stage=self.stage,
                index=round_index,
                granted=granted,
            ):
                gaps = self.problem.evaluate_many(stacked).gaps
            if self.target_gap is not None and evals_to_target is None:
                hit_positions = np.flatnonzero(gaps >= self.target_gap)
                need = self.target_hits - hits_seen
                if len(hit_positions) >= need:
                    evals_to_target = spent + int(hit_positions[need - 1]) + 1
                hits_seen += len(hit_positions)
            collected_points.append(stacked)
            collected_gaps.append(gaps)
            offset = 0
            for cell, proposals in batches:
                cell_gaps = gaps[offset : offset + len(proposals)]
                cell.absorb(proposals, cell_gaps)
                offset += len(proposals)
            spent += granted
            batch_best = int(np.argmax(gaps))
            if gaps[batch_best] > best_gap:
                best_gap = float(gaps[batch_best])
                best_x = stacked[batch_best].copy()

            frontier_before = sum(1 for c in cells if c.status == "frontier")
            pruned_volume += self._prune(cells, best_gap)
            pruned_now = frontier_before - sum(
                1 for c in cells if c.status == "frontier"
            )
            cells_before = len(cells)
            self._refine(cells, chosen, best_gap)
            refined_now = (len(cells) - cells_before) // 2
            registry = _obs.registry()
            if registry is not None:
                registry.counter_inc(
                    "xplain_search_rounds_total",
                    1,
                    help="bandit search rounds executed",
                    stage=self.stage,
                )
                if pruned_now:
                    registry.counter_inc(
                        "xplain_search_cells_pruned_total",
                        pruned_now,
                        help="frontier cells retired as provably boring",
                    )
                if refined_now:
                    registry.counter_inc(
                        "xplain_search_cells_refined_total",
                        refined_now,
                        help="frontier cells split at their best CART cut",
                    )
            self._record_round(
                round_index,
                cells,
                scores,
                {c.cell_id: len(p) for c, p in batches},
                best_gap,
            )
            if evals_to_target is not None:
                break  # measurement target reached; the hunt is over
            if self.ledger.exhausted or spent >= self.budget:
                break

        if self.trace is not None:
            self.trace.pruned_volume += pruned_volume
            self.trace.best_gap = max(self.trace.best_gap, max(best_gap, 0.0))
        samples = (
            SampleSet(
                np.vstack(collected_points),
                np.concatenate(collected_gaps),
                self.threshold,
            )
            if collected_points
            else SampleSet(
                np.zeros((0, self.box.dim)), np.zeros(0), self.threshold
            )
        )
        return SearchResult(
            samples=samples,
            best_x=best_x,
            best_gap=best_gap if best_x is not None else -math.inf,
            spent=spent,
            evals_to_target=evals_to_target,
        )

    # ------------------------------------------------------------------
    def _score(self, cell: Cell, total_evals: int, best_gap: float) -> float:
        """UCB: normalized observed gap plus an exploration bonus."""
        if cell.evals == 0:
            return UNVISITED_SCORE
        scale = max(abs(best_gap), abs(cell.max_gap), 1e-9)
        exploit = (0.75 * cell.max_gap + 0.25 * cell.mean_gap) / scale
        bonus = self.explore * math.sqrt(math.log(total_evals + math.e) / cell.evals)
        return exploit + bonus

    @staticmethod
    def _allocate(want: int, k: int) -> list[int]:
        """Split a round's batch across k chosen cells, best cells first."""
        base = want // k
        remainder = want - base * k
        return [base + (1 if i < remainder else 0) for i in range(k)]

    @staticmethod
    def _truncate(
        batches: list[tuple[Cell, np.ndarray]], granted: int
    ) -> list[tuple[Cell, np.ndarray]]:
        """Keep only the first ``granted`` proposals, in batch order."""
        kept: list[tuple[Cell, np.ndarray]] = []
        left = granted
        for cell, proposals in batches:
            if left <= 0:
                break
            take = min(left, len(proposals))
            kept.append((cell, proposals[:take]))
            left -= take
        return kept

    def _prune(self, cells: list[Cell], best_gap: float) -> float:
        """Retire provably-boring cells; returns the volume retired."""
        if best_gap <= 0:
            return 0.0
        frontier = [c for c in cells if c.status == "frontier"]
        retired = 0.0
        alive = len(frontier)
        for cell in frontier:
            if alive <= 1:
                break  # never prune the last frontier cell
            if (
                cell.evals >= self.prune_evals
                and cell.max_gap < self.prune_fraction * best_gap
            ):
                cell.status = "pruned"
                retired += cell.volume()
                alive -= 1
        return retired

    def _refine(self, cells: list[Cell], chosen: list[Cell], best_gap: float) -> None:
        """Split the most promising just-sampled cells."""
        eligible = [
            c
            for c in chosen
            if c.status == "frontier"
            and c.evals >= self.split_evals
            and c.depth < self.max_depth
            and (best_gap <= 0 or c.max_gap >= 0.5 * best_gap)
        ]
        eligible.sort(key=lambda c: (-c.max_gap, c.index))
        for cell in eligible[: self.splits_per_round]:
            left, right = cell.split(next_index=len(cells))
            cells.extend([left, right])

    def _record_round(
        self,
        round_index: int,
        cells: list[Cell],
        scores: dict[int, float],
        allocated: dict[str, int],
        best_gap: float,
    ) -> None:
        if self.trace is None:
            return
        rows = [
            CellScore(
                cell=c.cell_id,
                evals=c.evals,
                mean_gap=c.mean_gap,
                max_gap=c.max_gap,
                score=min(scores.get(c.index, 0.0), UNVISITED_SCORE),
                status=c.status,
            )
            for c in cells
            if c.index in scores
        ]
        rows.sort(key=lambda r: (-r.score, r.cell))
        truncated = len(rows) > MAX_TRACED_CELLS
        self.trace.rounds.append(
            SearchRound(
                index=round_index,
                stage=self.stage,
                allocated=allocated,
                scores=rows[:MAX_TRACED_CELLS],
                scores_truncated=truncated,
                best_gap=max(best_gap, 0.0),
                spent_after=self.ledger.spent,
            )
        )
