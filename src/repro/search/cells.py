"""The cell tree the bandit engine searches over.

A :class:`Cell` is one axis-aligned sub-box of the search domain plus
the gap statistics of every oracle point drawn inside it. Cells form a
binary tree: the root is the whole search box; refining a promising
cell cuts it in two — at the best variance-reduction split of the
cell's *own* samples (:meth:`repro.subspace.tree.RegressionTree.
root_split`, the same CART machinery that refines subspaces in §5.2),
falling back to a midpoint cut of the widest side when the samples
carry no split signal. Children inherit the parent's samples, so no
oracle evaluation is ever re-bought.

Determinism: cells are numbered in creation order and each owns a
random stream derived from ``(seed, STAGE_SEARCH, index)`` via the
repo's :func:`~repro.parallel.shard.derive_seed` machinery — which cell
draws how many points is decided by the engine's (deterministic) bandit
loop, and the draws themselves are order-free across cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.shard import STAGE_SEARCH, derive_seed
from repro.subspace.region import Box
from repro.subspace.tree import RegressionTree

#: a cell needs at least this many samples before a CART cut is trusted
MIN_SPLIT_SAMPLES = 8


@dataclass
class Cell:
    """One search cell: a sub-box plus its observed gap statistics."""

    cell_id: str  #: path-style id ("0", "0.L", "0.R.L", ...)
    index: int  #: creation order (the derived-seed shard coordinate)
    box: Box
    depth: int
    seed: int
    points: np.ndarray = field(default=None)  # type: ignore[assignment]
    gaps: np.ndarray = field(default=None)  # type: ignore[assignment]
    status: str = "frontier"  #: "frontier" | "split" | "pruned"
    _rng: np.random.Generator = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.points is None:
            self.points = np.zeros((0, self.box.dim))
        if self.gaps is None:
            self.gaps = np.zeros(0)

    # ------------------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """The cell's own derived random stream (created lazily)."""
        if self._rng is None:
            self._rng = np.random.default_rng(
                derive_seed(self.seed, STAGE_SEARCH, self.index)
            )
        return self._rng

    @property
    def evals(self) -> int:
        return len(self.gaps)

    @property
    def mean_gap(self) -> float:
        return float(self.gaps.mean()) if self.evals else 0.0

    @property
    def max_gap(self) -> float:
        return float(self.gaps.max()) if self.evals else 0.0

    def volume(self) -> float:
        return self.box.volume()

    # ------------------------------------------------------------------
    def draw(self, count: int) -> np.ndarray:
        """Uniform proposals inside the cell from its own stream."""
        return self.box.sample(self.rng, count)

    def absorb(self, points: np.ndarray, gaps: np.ndarray) -> None:
        """Record freshly evaluated points."""
        if len(points) == 0:
            return
        self.points = np.vstack([self.points, points])
        self.gaps = np.concatenate([self.gaps, gaps])

    # ------------------------------------------------------------------
    def split_plan(self) -> tuple[int, float]:
        """Where to cut this cell: ``(dimension, threshold)``.

        Prefers the CART root split of the cell's own samples (restricted
        to raw input axes — cell geometry must stay a box); falls back to
        the midpoint of the widest side. The threshold is clamped away
        from the cell faces so neither child is degenerate.
        """
        dim, threshold = self._widest_midpoint()
        if self.evals >= MIN_SPLIT_SAMPLES and np.ptp(self.gaps) > 1e-12:
            tree = RegressionTree(
                max_depth=1,
                min_samples_leaf=max(2, self.evals // 4),
                max_candidate_splits=16,
            )
            tree.fit(self.points, self.gaps)
            split = tree.root_split()
            if split is not None:
                dim, threshold = split
        lo, hi = self.box.lo[dim], self.box.hi[dim]
        margin = 0.05 * (hi - lo)
        threshold = float(np.clip(threshold, lo + margin, hi - margin))
        return dim, threshold

    def _widest_midpoint(self) -> tuple[int, float]:
        widths = self.box.widths
        dim = int(np.argmax(widths))
        return dim, float(self.box.lo[dim] + widths[dim] / 2.0)

    def split(self, next_index: int) -> tuple["Cell", "Cell"]:
        """Cut the cell in two, handing each child its share of samples."""
        dim, threshold = self.split_plan()
        lo, hi = self.box.lo_array, self.box.hi_array
        left_hi = hi.copy()
        left_hi[dim] = threshold
        right_lo = lo.copy()
        right_lo[dim] = threshold
        left_box = Box.from_arrays(lo, left_hi)
        right_box = Box.from_arrays(right_lo, hi)
        mask = self.points[:, dim] <= threshold if self.evals else np.zeros(0, bool)
        left = Cell(
            cell_id=f"{self.cell_id}.L",
            index=next_index,
            box=left_box,
            depth=self.depth + 1,
            seed=self.seed,
            points=self.points[mask],
            gaps=self.gaps[mask],
        )
        right = Cell(
            cell_id=f"{self.cell_id}.R",
            index=next_index + 1,
            box=right_box,
            depth=self.depth + 1,
            seed=self.seed,
            points=self.points[~mask],
            gaps=self.gaps[~mask],
        )
        self.status = "split"
        return left, right


def covered_by_any(box: Box, exclusions: list[Box]) -> bool:
    """Whether ``box`` lies entirely inside one exclusion box.

    Used to retire cells the analyzer has already excluded: no point
    inside them is admissible, so spending oracle budget there is waste.
    """
    return any(
        exclusion.contains(box.lo_array) and exclusion.contains(box.hi_array)
        for exclusion in exclusions
    )
