"""A dependency-free metrics registry with Prometheus text exposition.

:class:`MetricsRegistry` holds three kinds of instruments — counters,
gauges, and histograms — each addressed by a metric name plus an
optional set of labels. The design goals, in order:

* **stdlib only.** The repo's hard constraint is no new dependencies;
  this module is plain Python with a single lock.
* **thread-safe.** The analysis service mutates metrics from its worker
  thread and every HTTP handler thread; a registry-wide
  :class:`threading.Lock` guards all map mutation, and increments are
  performed under it (they are rare relative to oracle work — one call
  per *batch* or per *unit*, never per point).
* **snapshot / merge.** :meth:`MetricsRegistry.snapshot` produces a
  JSON-safe dump and :meth:`MetricsRegistry.merge` folds one back in —
  counters and histograms add, gauges last-write-wins. This is how
  per-worker metrics from the fabric fleet (each worker process keeps
  its own registry and spills snapshots to disk,
  :mod:`repro.obs.fleet`) aggregate into the service's ``/metrics``.
* **valid exposition.** :func:`render_prometheus` emits the Prometheus
  text format (``text/plain; version=0.0.4``): ``# HELP``/``# TYPE``
  headers, escaped label values, ``_bucket``/``_sum``/``_count``
  histogram series with a cumulative ``+Inf`` bucket.

Nothing here touches the pipeline. The zero-overhead-when-disabled
contract lives in :mod:`repro.obs.runtime`: instrumentation call sites
ask for the installed registry and skip everything when there is none.
"""

from __future__ import annotations

import json
import math
import re
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "render_prometheus",
    "EXPOSITION_CONTENT_TYPE",
]

#: content type of the Prometheus text exposition format
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: default histogram bucket upper bounds (seconds-flavored, the classic
#: Prometheus ladder); ``+Inf`` is implicit and always present
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

#: instrument kinds a registry can hold
_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: dict | None) -> str:
    """A canonical, hashable JSON key for one label set (sorted items)."""
    if not labels:
        return ""
    return json.dumps(
        {str(k): str(v) for k, v in sorted(labels.items())},
        sort_keys=True,
        separators=(",", ":"),
    )


def _labels_from_key(key: str) -> dict:
    return json.loads(key) if key else {}


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (ints bare, +Inf spelled out)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


class _Family:
    """One named instrument family: kind, help text, per-label samples."""

    __slots__ = ("name", "kind", "help", "buckets", "samples")

    def __init__(
        self, name: str, kind: str, help_text: str, buckets=None
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        #: label-key -> float value (counter/gauge) or histogram state
        #: dict {"buckets": [int per bound], "sum": float, "count": int}
        self.samples: dict = {}


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with snapshot + merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- family management --------------------------------------------------
    def _family(
        self, name: str, kind: str, help_text: str, buckets=None
    ) -> _Family:
        if not _METRIC_NAME_RE.fullmatch(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets=buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"not a {kind}"
            )
        return family

    @staticmethod
    def _check_labels(labels: dict) -> None:
        for key in labels:
            if not _LABEL_NAME_RE.fullmatch(str(key)):
                raise ValueError(f"invalid label name {key!r}")

    # -- instruments --------------------------------------------------------
    def counter_inc(
        self,
        name: str,
        amount: float = 1,
        help: str = "",  # noqa: A002 - mirrors the exposition keyword
        **labels,
    ) -> None:
        """Add ``amount`` (must be >= 0) to a counter sample."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease ({amount})")
        self._check_labels(labels)
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            family.samples[key] = family.samples.get(key, 0) + amount

    def gauge_set(
        self,
        name: str,
        value: float,
        help: str = "",  # noqa: A002
        **labels,
    ) -> None:
        """Set a gauge sample to ``value``."""
        self._check_labels(labels)
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            family.samples[key] = float(value)

    def histogram_observe(
        self,
        name: str,
        value: float,
        help: str = "",  # noqa: A002
        buckets=None,
        **labels,
    ) -> None:
        """Record one observation into a histogram sample."""
        self._check_labels(labels)
        key = _label_key(labels)
        with self._lock:
            family = self._family(
                name, "histogram", help, buckets=buckets or DEFAULT_BUCKETS
            )
            state = family.samples.get(key)
            if state is None:
                state = {
                    "buckets": [0] * len(family.buckets),
                    "sum": 0.0,
                    "count": 0,
                }
                family.samples[key] = state
            # Buckets store per-bin counts (value in (prev, bound]);
            # rendering cumulates them into Prometheus `le` semantics.
            for i, bound in enumerate(family.buckets):
                if value <= bound:
                    state["buckets"][i] += 1
                    break
            state["sum"] += float(value)
            state["count"] += 1

    # -- snapshot / merge ---------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe dump of every family (deep-copied, mergeable)."""
        out: dict = {}
        with self._lock:
            for name, family in self._families.items():
                if family.kind == "histogram":
                    samples = {
                        key: {
                            "buckets": list(state["buckets"]),
                            "sum": state["sum"],
                            "count": state["count"],
                        }
                        for key, state in family.samples.items()
                    }
                else:
                    samples = dict(family.samples)
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
                if family.buckets is not None:
                    out[name]["buckets"] = list(family.buckets)
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` dump into this registry.

        Counters and histogram states add (the cross-process
        aggregation rule — every source's work counts once); gauges take
        the incoming value (fleet gauges carry a ``worker`` label, so
        distinct sources never collide).
        """
        for name, data in snapshot.items():
            kind = data.get("kind")
            if kind not in _KINDS:
                raise ValueError(f"snapshot metric {name!r} has kind {kind!r}")
            with self._lock:
                family = self._family(
                    name, kind, data.get("help", ""),
                    buckets=data.get("buckets"),
                )
                for key, value in data.get("samples", {}).items():
                    if kind == "counter":
                        family.samples[key] = family.samples.get(key, 0) + value
                    elif kind == "gauge":
                        family.samples[key] = float(value)
                    else:
                        if family.buckets is None or len(
                            value["buckets"]
                        ) != len(family.buckets):
                            raise ValueError(
                                f"histogram {name!r} bucket layout mismatch"
                            )
                        state = family.samples.get(key)
                        if state is None:
                            state = {
                                "buckets": [0] * len(family.buckets),
                                "sum": 0.0,
                                "count": 0,
                            }
                            family.samples[key] = state
                        state["buckets"] = [
                            a + b
                            for a, b in zip(state["buckets"], value["buckets"])
                        ]
                        state["sum"] += value["sum"]
                        state["count"] += value["count"]

    def render(self) -> str:
        """This registry's current state in Prometheus text format."""
        return render_prometheus(self.snapshot())


def _render_sample_line(
    name: str, labels: dict, value: float, extra: dict | None = None
) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if merged:
        inner = ",".join(
            f'{k}="{_escape_label_value(str(v))}"'
            for k, v in merged.items()
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dump as text exposition.

    Rendering is a pure function of the snapshot — scraping never
    mutates instrument state, which the ``/metrics`` read-only test
    pins.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind, help_text = family["kind"], family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(family.get("samples", {})):
            labels = _labels_from_key(key)
            value = family["samples"][key]
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(family["buckets"], value["buckets"]):
                    cumulative += count
                    lines.append(
                        _render_sample_line(
                            f"{name}_bucket",
                            labels,
                            cumulative,
                            {"le": _format_value(bound)},
                        )
                    )
                lines.append(
                    _render_sample_line(
                        f"{name}_bucket", labels, value["count"],
                        {"le": "+Inf"},
                    )
                )
                lines.append(
                    _render_sample_line(f"{name}_sum", labels, value["sum"])
                )
                lines.append(
                    _render_sample_line(
                        f"{name}_count", labels, value["count"]
                    )
                )
            else:
                lines.append(_render_sample_line(name, labels, value))
    return "\n".join(lines) + "\n"
