"""Per-worker metric snapshots: how fleet metrics reach ``/metrics``.

Fabric workers are separate processes; their in-process registries
(oracle batch latencies, slab engine mix, claim/commit counters) would
die with them. Instead each worker spills its registry's snapshot to
``<dir>/<worker_id>.json`` after every unit — an atomic
write-to-temp-then-rename, so a reader never sees a torn file — and the
service merges every snapshot in the directory into the scrape
response. Merge semantics come from
:meth:`~repro.obs.metrics.MetricsRegistry.merge`: counters and
histograms add across workers, gauges are per-worker-labelled.

A worker's file is a *cumulative* snapshot of its whole life, so the
merge must happen into a throwaway registry at scrape time (never into
the service's own accumulating registry, which would double-count every
scrape). :func:`merged_snapshot` does exactly that.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

__all__ = ["write_worker_snapshot", "merged_snapshot"]


def write_worker_snapshot(
    directory: str | Path, worker_id: str, registry: MetricsRegistry
) -> Path:
    """Atomically persist one worker's cumulative metrics snapshot."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{worker_id}.json"
    tmp = directory / f".{worker_id}.json.tmp"
    tmp.write_text(json.dumps(registry.snapshot(), sort_keys=True))
    os.replace(tmp, path)
    return path


def merged_snapshot(
    base: MetricsRegistry, directory: str | Path | None
) -> dict:
    """``base``'s snapshot plus every worker snapshot under ``directory``.

    Unreadable or torn files are skipped — a scrape must never 500
    because a worker died mid-write (the atomic rename makes that
    near-impossible anyway).
    """
    merged = MetricsRegistry()
    merged.merge(base.snapshot())
    if directory is not None:
        directory = Path(directory)
        if directory.is_dir():
            for path in sorted(directory.glob("*.json")):
                try:
                    merged.merge(json.loads(path.read_text()))
                except (OSError, ValueError):
                    continue
    return merged.snapshot()
