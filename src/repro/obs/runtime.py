"""The observability switchboard: install a registry, or pay nothing.

The pipeline's instrumentation hooks (oracle engine batches, search
rounds, slab solves, campaign units, the fabric worker loop) all route
through this module:

* :func:`registry` returns the process-wide installed
  :class:`~repro.obs.metrics.MetricsRegistry`, or ``None``. Every hook
  is guarded by that ``None`` check — **when no registry is installed
  the hook is a single module-global read**, which is the
  zero-overhead-when-disabled contract DESIGN.md §15 pins (and what
  keeps tier-1 determinism untouched: metrics only observe, and with
  no registry the observation itself vanishes).
* :func:`tracing_enabled` decides whether a unit of work should record
  spans. It is true when a registry is installed **or** when the
  :data:`OBS_ENV` environment variable is set — the environment is how
  enablement crosses process boundaries (a ``ProcessExecutor`` pool or
  the fabric's worker fleet inherit it) without touching unit payloads,
  whose content-addressed run IDs must stay spelling-independent of
  observability.

Installation is explicit (``repro serve``/``repro fabric serve`` and
the fabric worker loop install; libraries never do) and idempotent to
uninstall.
"""

from __future__ import annotations

import os

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "OBS_ENV",
    "enable_env",
    "install",
    "registry",
    "tracing_enabled",
    "uninstall",
]

#: environment variable that enables span tracing across process
#: boundaries (workers inherit it; payload hashes never see it)
OBS_ENV = "XPLAIN_OBS"

#: environment variable naming the directory fabric workers spill their
#: per-worker metric snapshots into (see :mod:`repro.obs.fleet`)
METRICS_DIR_ENV = "XPLAIN_METRICS_DIR"

_registry: MetricsRegistry | None = None


def install(reg: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the process-wide metrics registry."""
    global _registry
    _registry = reg if reg is not None else MetricsRegistry()
    return _registry


def uninstall() -> None:
    """Remove the installed registry; hooks become no-ops again."""
    global _registry
    _registry = None


def registry() -> MetricsRegistry | None:
    """The installed registry, or None (the hooks' fast-path guard)."""
    return _registry


def enable_env(environ: dict | None = None) -> None:
    """Mark observability enabled for this process *and its children*."""
    (environ if environ is not None else os.environ)[OBS_ENV] = "1"


def tracing_enabled() -> bool:
    """Should this process's units record spans into their reports?"""
    return _registry is not None or bool(os.environ.get(OBS_ENV))
