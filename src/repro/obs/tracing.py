"""Structured spans: what one run did, stage by stage, with timings.

A :class:`Tracer` collects :class:`Span` records — name, wall-clock
start offset, duration, nesting parent, and a small attribute dict —
for one unit of work (a campaign, a campaign unit, a fabric-worker
claim). Spans are *timing* data: they ride inside a report's
``"timing"`` block, which :func:`repro.parallel.campaign.
deterministic_view` strips, so tracing can never perturb the
bit-identity contracts (workers=1 vs N, instrumented vs not).

Activation is explicit and thread-local. Code under instrumentation
calls :func:`span` — a context manager that is a shared no-op when no
tracer is active on the current thread, so an uninstrumented run pays
one thread-local read per call site and allocates nothing.

Span volume is bounded: a tracer keeps at most ``max_spans`` records
and counts the overflow in ``dropped`` instead of growing without
limit (an adaptive search can run hundreds of oracle batches).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "span",
]

#: default cap on recorded spans per tracer
MAX_SPANS = 512

_state = threading.local()


@dataclass
class Span:
    """One finished span (offsets are seconds since the tracer started)."""

    name: str
    start: float
    duration: float
    parent: int | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
        }
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class _ActiveSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("tracer", "name", "attrs", "index", "_begin")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.index: int | None = None

    def __enter__(self) -> "_ActiveSpan":
        self._begin = time.perf_counter()
        self.index = self.tracer._open(self)
        return self

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. batch outcomes)."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close(self, time.perf_counter() - self._begin)


class _NoopSpan:
    """Shared do-nothing context manager for the tracer-less fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def annotate(self, **attrs) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects bounded, nested spans for one unit of work."""

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.started = time.perf_counter()
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[int] = []

    # -- recording (driven by _ActiveSpan) ----------------------------------
    def _open(self, active: _ActiveSpan) -> int | None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            index = None
        else:
            index = len(self.spans)
            self.spans.append(
                Span(
                    name=active.name,
                    start=active._begin - self.started,
                    duration=0.0,
                    parent=self._stack[-1] if self._stack else None,
                    attrs=active.attrs,
                )
            )
        self._stack.append(index if index is not None else -1)
        return index

    def _close(self, active: _ActiveSpan, duration: float) -> None:
        if self._stack:
            self._stack.pop()
        if active.index is not None:
            record = self.spans[active.index]
            record.duration = duration
            record.attrs = active.attrs

    # -- export -------------------------------------------------------------
    def to_list(self) -> list[dict]:
        """JSON-safe span records, in start order."""
        return [record.to_dict() for record in self.spans]

    def summary(self) -> dict:
        return {"spans": len(self.spans), "dropped": self.dropped}


def current_tracer() -> Tracer | None:
    """The tracer active on this thread, if any."""
    return getattr(_state, "tracer", None)


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as this thread's active tracer."""
    _state.tracer = tracer
    return tracer


def deactivate() -> None:
    """Clear this thread's active tracer."""
    _state.tracer = None


def span(name: str, **attrs):
    """A context manager recording one span — a shared no-op when no
    tracer is active on this thread (the zero-overhead contract)."""
    tracer = getattr(_state, "tracer", None)
    if tracer is None:
        return _NOOP
    return _ActiveSpan(tracer, name, attrs)
