"""Observability: metrics registry, span tracer, fleet aggregation.

DESIGN.md §15. The package is dependency-free and obeys one contract
above all: **uninstrumented runs pay (almost) nothing and produce
bit-identical deterministic output**. Metrics hooks are guarded by the
:func:`~repro.obs.runtime.registry` null check; span hooks by a
thread-local null check; spans land only inside ``"timing"`` blocks,
which :func:`~repro.parallel.campaign.deterministic_view` strips.

Public surface:

* :class:`MetricsRegistry` / :func:`render_prometheus` — counters,
  gauges, labelled histograms; snapshot/merge; text exposition.
* :func:`install` / :func:`uninstall` / :func:`registry` — the
  process-wide registry the instrumentation hooks consult.
* :class:`Tracer` / :func:`span` / :func:`activate` /
  :func:`deactivate` — bounded structured spans per unit of work.
* :func:`fold_unit_report` / :func:`fold_campaign_report` — the
  driver-side bridge from finished report dicts to counters.
* :func:`write_worker_snapshot` / :func:`merged_snapshot` — fabric
  fleet aggregation.
"""

from repro.obs.fleet import merged_snapshot, write_worker_snapshot
from repro.obs.fold import fold_campaign_report, fold_unit_report
from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.runtime import (
    METRICS_DIR_ENV,
    OBS_ENV,
    enable_env,
    install,
    registry,
    tracing_enabled,
    uninstall,
)
from repro.obs.tracing import Tracer, activate, current_tracer, deactivate, span

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "METRICS_DIR_ENV",
    "MetricsRegistry",
    "OBS_ENV",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "enable_env",
    "fold_campaign_report",
    "fold_unit_report",
    "install",
    "merged_snapshot",
    "registry",
    "render_prometheus",
    "span",
    "tracing_enabled",
    "uninstall",
    "write_worker_snapshot",
]
