"""Fold finished unit/campaign reports into metrics counters.

The campaign driver is the one place every unit report passes through
regardless of how it was executed — in-process serial, a process pool,
or the fabric fleet — so it is where the *authoritative* oracle,
solver, and search totals enter the metrics registry. Folding the
report (rather than instrumenting every hot path twice) means the
``/metrics`` totals are exact for all executor modes and can never
double-count: the live in-process hooks in the oracle/search/solver
layers deliberately use *different* metric names (batch latency
histograms, cell refine/prune events, slab engine mix) that no fold
emits.

Everything here reads completed report dicts — pure observation, after
the deterministic content is already sealed.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["fold_unit_report", "fold_campaign_report"]

#: OracleStats counter -> (metric name, help) folded per completed unit
_ORACLE_COUNTERS = {
    "points": (
        "xplain_oracle_points_total",
        "gap evaluations requested through the oracle engine",
    ),
    "cache_hits": (
        "xplain_oracle_cache_hits_total",
        "oracle points answered from the memoizing gap cache",
    ),
    "cache_misses": (
        "xplain_oracle_cache_misses_total",
        "oracle points that had to be evaluated",
    ),
    "native_batched": (
        "xplain_oracle_native_batched_total",
        "evaluated points served by a native batched oracle",
    ),
    "scalar_fallback": (
        "xplain_oracle_scalar_fallback_total",
        "evaluated points served by the scalar python-loop fallback",
    ),
    "warm_solves": (
        "xplain_lp_warm_solves_total",
        "LP template re-solves warm-started from a previous basis",
    ),
    "cold_solves": (
        "xplain_lp_cold_solves_total",
        "LP template solves that fell back to the cold two-phase simplex",
    ),
    "lp_iterations": (
        "xplain_lp_iterations_total",
        "simplex pivots across all LP template solves",
    ),
}


def _unit_domain(report: dict) -> str:
    """A low-cardinality domain label for one unit report."""
    problem = report.get("problem") or {}
    factory = str(problem.get("factory", ""))
    # "repro.domains.caching:lru_caching_problem" -> "caching"
    if factory.startswith("repro.domains."):
        return factory[len("repro.domains."):].split(".", 1)[0].split(":")[0]
    return "custom"


def fold_unit_report(registry: MetricsRegistry, report: dict) -> None:
    """Add one completed unit report's counters to the registry."""
    domain = _unit_domain(report)
    resumed = bool((report.get("timing") or {}).get("resumed"))
    registry.counter_inc(
        "xplain_units_completed_total",
        1,
        help="campaign units completed (resumed = loaded from the store)",
        domain=domain,
        resumed=str(resumed).lower(),
    )
    registry.counter_inc(
        "xplain_subspaces_found_total",
        int(report.get("num_subspaces", 0)),
        help="significant adversarial subspaces confirmed across units",
        domain=domain,
    )
    if resumed:
        # A resumed unit's oracle work was done (and folded) by whoever
        # computed it; counting the stored report again would inflate
        # every counter on each service restart.
        return
    oracle = report.get("oracle") or {}
    for field, (name, help_text) in _ORACLE_COUNTERS.items():
        value = int(oracle.get(field, 0))
        if value:
            registry.counter_inc(name, value, help=help_text, domain=domain)
    search = report.get("search") or {}
    policy = search.get("policy") or "uniform"
    calls = int(search.get("oracle_calls") or 0)
    if calls:
        registry.counter_inc(
            "xplain_search_oracle_calls_total",
            calls,
            help="oracle calls charged to the shared search budget ledger",
            domain=domain,
            policy=str(policy),
        )
    timing = report.get("timing") or {}
    runtime = timing.get("runtime_seconds")
    if runtime is not None:
        registry.histogram_observe(
            "xplain_unit_runtime_seconds",
            float(runtime),
            help="wall-clock seconds per freshly computed campaign unit",
            buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0),
        )


def fold_campaign_report(registry: MetricsRegistry, report: dict) -> None:
    """Add one finished campaign's aggregate outcome to the registry."""
    registry.counter_inc(
        "xplain_campaigns_completed_total",
        1,
        help="campaigns driven to completion by this process",
    )
    registry.gauge_set(
        "xplain_last_campaign_worst_gap",
        float(report.get("worst_gap", 0.0)),
        help="worst heuristic-vs-optimal gap in the last finished campaign",
    )
