"""Text visualizations of the paper's figures.

Everything here renders to plain text so reports work in terminals and CI
logs: the Fig. 4 layered graph with heatmap colors, the Fig. 5b tree, and
the Fig. 5c algebraic subspace form.
"""

from __future__ import annotations

import numpy as np

from repro.dsl.graph import FlowGraph
from repro.explain.heatmap import Heatmap
from repro.subspace.region import Region

#: Heatmap color glyphs: intensity of red (heuristic-only) / blue
#: (benchmark-only), matching the Fig. 4 legend.
_GLYPHS = {
    "strong-red": "RR",
    "red": "r ",
    "neutral": ". ",
    "blue": "b ",
    "strong-blue": "BB",
}


def render_layered_graph(
    graph: FlowGraph, heatmap: Heatmap | None = None, max_width: int = 100
) -> str:
    """Fig. 4-style rendering: node groups as layers, colored edges.

    Groups come from the DSL metadata (DEMANDS/PATHS/EDGES, BALLS/BINS);
    ungrouped nodes are listed under their role.
    """
    layers: dict[str, list[str]] = {}
    for node in graph.nodes:
        label = node.group() or node.role() or "other"
        layers.setdefault(label, []).append(node.name)

    lines = [f"graph {graph.name!r} (Fig. 4 style)"]
    for label, names in layers.items():
        row = "  ".join(names)
        if len(row) > max_width:
            row = row[: max_width - 3] + "..."
        lines.append(f"[{label}] {row}")
    lines.append("edges (glyph = heatmap color):")
    for edge in graph.edges:
        glyph = ". "
        if heatmap is not None and edge.key in heatmap.scores:
            glyph = _GLYPHS[heatmap.scores[edge.key].color]
        lines.append(f"  {glyph} {edge.src} -> {edge.dst}")
    return "\n".join(lines)


def render_region_matrix(region: Region, names: list[str] | None = None) -> str:
    """The Fig. 5c form: A X <= C (box) and T X <= V (tree path)."""
    a, c, t, v = region.matrix_form()
    names = names or [f"x{i}" for i in range(region.dim)]
    lines = ["subspace in Fig. 5c matrix form:"]
    lines.append(f"  X = [{' '.join(names)}]^T")
    lines.append("  A X <= C (rough box):")
    for row, rhs in zip(a, c):
        lines.append(f"    [{_fmt_row(row)}] X <= {rhs:.4g}")
    if len(t):
        lines.append("  T X <= V (regression-tree path):")
        for row, rhs in zip(t, v):
            lines.append(f"    [{_fmt_row(row)}] X <= {rhs:.4g}")
    return "\n".join(lines)


def _fmt_row(row: np.ndarray) -> str:
    return " ".join(f"{value:+.2g}" for value in row)


def render_gap_table(
    rows: list[tuple[str, float, float]],
) -> str:
    """A Fig. 1a-style table: label, heuristic value, benchmark value."""
    lines = [
        f"{'instance':<28} {'heuristic':>12} {'benchmark':>12} {'gap':>10}"
    ]
    for label, heuristic, benchmark in rows:
        lines.append(
            f"{label:<28} {heuristic:>12.4g} {benchmark:>12.4g} "
            f"{benchmark - heuristic:>10.4g}"
        )
    return "\n".join(lines)
