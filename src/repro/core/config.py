"""Configuration of the end-to-end XPlain pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.subspace.generator import GeneratorConfig


@dataclass
class XPlainConfig:
    """Knobs for one :class:`~repro.core.pipeline.XPlain` run.

    Defaults are sized for interactive use; the paper's own figures use
    3000 explainer samples and ~20 minutes per figure — set
    ``explainer_samples=3000`` to match.
    """

    #: "metaopt" (exact encoding required), "blackbox", or "auto"
    analyzer: str = "auto"
    #: black-box search strategy when the black-box analyzer is used
    blackbox_strategy: str = "hillclimb"
    blackbox_budget: int = 400
    #: MILP backend for the exact analyzer
    backend: str = "scipy"
    #: §5.2 subspace generation
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: §5.3 samples per subspace heatmap (paper: 3000)
    explainer_samples: int = 300
    #: score cutoff for narrative explanations
    explainer_cutoff: float = 0.2
    #: §5.4 within-instance generalization samples (0 disables)
    generalizer_samples: int = 200
    seed: int = 0
