"""Configuration of the end-to-end XPlain pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import AnalyzerError
from repro.search.policy import SEARCH_POLICIES
from repro.subspace.generator import GeneratorConfig

#: legal values for the string-valued knobs, validated eagerly so a typo
#: fails at construction with a clear message instead of deep inside
#: ``make_analyzer`` / the solver dispatch
ANALYZERS = ("auto", "metaopt", "blackbox")
BACKENDS = ("auto", "scipy", "simplex")
BLACKBOX_STRATEGIES = ("random", "hillclimb", "anneal")
EXECUTORS = ("serial", "process", "fabric")
# SEARCH_POLICIES is defined next to the policies themselves
# (repro.search.policy) and re-exported here for config consumers.


@dataclass
class XPlainConfig:
    """Knobs for one :class:`~repro.core.pipeline.XPlain` run.

    Defaults are sized for interactive use; the paper's own figures use
    3000 explainer samples and ~20 minutes per figure — set
    ``explainer_samples=3000`` to match.
    """

    #: "metaopt" (exact encoding required), "blackbox", or "auto"
    analyzer: str = "auto"
    #: black-box search strategy when the black-box analyzer is used
    blackbox_strategy: str = "hillclimb"
    blackbox_budget: int = 400
    #: MILP backend for the exact analyzer
    backend: str = "scipy"
    #: §5.2 subspace generation
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: §5.3 samples per subspace heatmap (paper: 3000)
    explainer_samples: int = 300
    #: score cutoff for narrative explanations
    explainer_cutoff: float = 0.2
    #: §5.4 within-instance generalization samples (0 disables)
    generalizer_samples: int = 200
    #: work-unit execution backend: "serial" runs units in-process,
    #: "process" shards them across ``workers`` worker processes (the
    #: problem then needs a picklable spec; see DESIGN.md §9)
    executor: str = "serial"
    #: worker-process count for the process executor
    workers: int = 1
    #: points per evaluation work unit (sharding granularity; the unit
    #: plan depends only on this, never on ``workers``, which is what
    #: keeps parallel output bit-identical to serial)
    unit_points: int = 64
    #: persistent run-store directory (None disables persistence). When
    #: set, the pipeline spills its gap-oracle memo cache into the store
    #: so repeated analyses of the same problem skip re-solving points
    #: they have already answered — across processes and campaigns.
    store_path: str | None = None
    #: completed campaigns to retain in the store on garbage collection
    #: (0 = keep everything; ``repro runs gc`` and the analysis service
    #: apply it)
    store_retention: int = 0
    #: LRU cap on the in-memory gap-cache entries per engine
    cache_max_entries: int = 1_000_000
    #: gap-search policy (DESIGN.md §12): "uniform" is the exact legacy
    #: sampling behavior; "bandit" hunts high-gap regions with a UCB
    #: cell-tree engine under a hard oracle budget; "hybrid" mixes both
    search: str = "uniform"
    #: oracle-evaluation budget the adaptive policies enforce through
    #: the shared ledger (uniform only *tracks* spending — it must stay
    #: bit-identical to the pre-search pipeline, so it never clips)
    search_budget: int = 4096
    #: bandit rounds per search (each round is one sharded oracle batch)
    search_rounds: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.analyzer not in ANALYZERS:
            raise AnalyzerError(
                f"unknown analyzer {self.analyzer!r}; "
                f"expected one of {ANALYZERS}"
            )
        if self.backend not in BACKENDS:
            raise AnalyzerError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.blackbox_strategy not in BLACKBOX_STRATEGIES:
            raise AnalyzerError(
                f"unknown blackbox strategy {self.blackbox_strategy!r}; "
                f"expected one of {BLACKBOX_STRATEGIES}"
            )
        if self.executor not in EXECUTORS:
            raise AnalyzerError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {EXECUTORS}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise AnalyzerError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        if self.executor == "serial" and self.workers != 1:
            raise AnalyzerError(
                f"the serial executor is single-worker; got workers="
                f"{self.workers}. Set executor='process' to parallelize."
            )
        if not isinstance(self.unit_points, int) or self.unit_points < 1:
            raise AnalyzerError(
                f"unit_points must be an integer >= 1, got {self.unit_points!r}"
            )
        if self.store_path is not None and not isinstance(self.store_path, str):
            raise AnalyzerError(
                f"store_path must be a string path or None, "
                f"got {self.store_path!r}"
            )
        if self.store_path is not None and not self.store_path.strip():
            raise AnalyzerError("store_path must not be an empty string")
        if not isinstance(self.store_retention, int) or self.store_retention < 0:
            raise AnalyzerError(
                f"store_retention must be an integer >= 0 "
                f"(0 keeps everything), got {self.store_retention!r}"
            )
        if (
            not isinstance(self.cache_max_entries, int)
            or self.cache_max_entries < 1
        ):
            raise AnalyzerError(
                f"cache_max_entries must be an integer >= 1, "
                f"got {self.cache_max_entries!r}"
            )
        if self.search not in SEARCH_POLICIES:
            raise AnalyzerError(
                f"unknown search policy {self.search!r}; "
                f"expected one of {SEARCH_POLICIES}"
            )
        if not isinstance(self.search_budget, int) or self.search_budget < 1:
            raise AnalyzerError(
                f"search_budget must be an integer >= 1, "
                f"got {self.search_budget!r}"
            )
        if not isinstance(self.search_rounds, int) or self.search_rounds < 1:
            raise AnalyzerError(
                f"search_rounds must be an integer >= 1, "
                f"got {self.search_rounds!r}"
            )
