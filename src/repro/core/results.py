"""Result objects of the XPlain pipeline: the paper's three output types."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.interface import AnalyzedProblem
from repro.explain.heatmap import Heatmap
from repro.explain.report import ExplanationReport
from repro.explain.summarize import GroupSummary
from repro.generalize.enumerate_ import GeneralizerResult
from repro.subspace.generator import GeneratorReport, Subspace


@dataclass
class ExplainedSubspace:
    """One Type-1 subspace together with its Type-2 explanation."""

    subspace: Subspace
    heatmap: Heatmap
    narrative: ExplanationReport
    summary: list[GroupSummary] = field(default_factory=list)

    def describe(self, input_names: list[str] | None = None) -> str:
        parts = [
            self.subspace.describe(input_names),
            self.heatmap.render(),
            self.narrative.render(),
        ]
        deltas = self.heatmap.render_flow_deltas(max_rows=5)
        if "no volume divergence" not in deltas:
            parts.append(deltas)
        if self.summary:
            parts.append("grouped summary:")
            parts.extend(f"  {g.describe()}" for g in self.summary[:6])
        return "\n".join(parts)


@dataclass
class XPlainReport:
    """Everything one pipeline run produced.

    * Type 1 — ``subspaces`` (regions in the Fig. 5c algebra);
    * Type 2 — per-subspace heatmaps and narratives;
    * Type 3 — ``generalization`` (supported grammar predicates).
    """

    problem: AnalyzedProblem
    generator_report: GeneratorReport
    explained: list[ExplainedSubspace] = field(default_factory=list)
    generalization: GeneralizerResult | None = None
    runtime_seconds: float = 0.0

    @property
    def worst_gap(self) -> float:
        seeds = [s.subspace.seed.validated_gap for s in self.explained]
        return max(seeds, default=0.0)

    @property
    def num_subspaces(self) -> int:
        return len(self.explained)

    def summary(self) -> str:
        """The report a user reads first."""
        lines = [
            f"XPlain report for {self.problem.name}",
            f"  worst-case gap found: {self.worst_gap:.4g}",
            f"  adversarial subspaces: {self.num_subspaces} significant, "
            f"{len(self.generator_report.rejected)} rejected "
            f"(threshold {self.generator_report.threshold:.4g})",
            f"  runtime: {self.runtime_seconds:.1f}s",
        ]
        stats = self.generator_report.oracle_stats
        if stats is not None and getattr(stats, "points", 0):
            lines.extend(f"  {line}" for line in stats.describe().splitlines())
        trace = self.generator_report.search_trace
        if trace is not None and getattr(trace, "total_spent", 0):
            lines.extend(f"  {line}" for line in trace.describe().splitlines())
        for i, item in enumerate(self.explained):
            lines.append(f"--- subspace D{i} " + "-" * 40)
            lines.append(item.describe(self.problem.input_names))
        if self.generalization is not None:
            lines.append("--- type-3 generalization " + "-" * 28)
            lines.append(self.generalization.describe())
        return "\n".join(lines)
