"""The XPlain pipeline: the system of Fig. 3, end to end.

DSL-described problem -> compiler -> heuristic analyzer -> adversarial
subspace generator + significance checker -> explainer -> generalizer.

Example::

    from repro import XPlain
    from repro.domains.binpack import first_fit_problem

    report = XPlain(first_fit_problem(num_balls=4, num_bins=3)).run()
    print(report.summary())
"""

from __future__ import annotations

import time

import numpy as np

from repro.analyzer.bilevel import MetaOptAnalyzer
from repro.analyzer.blackbox import BlackBoxAnalyzer
from repro.analyzer.interface import AnalyzedProblem
from repro.core.config import XPlainConfig
from repro.core.results import ExplainedSubspace, XPlainReport
from repro.exceptions import AnalyzerError
from repro.explain.heatmap import build_heatmap
from repro.explain.report import explain_heatmap
from repro.explain.summarize import summarize_heatmap
from repro.obs.tracing import span as _span
from repro.parallel.shard import (
    STAGE_EXPLAIN,
    STAGE_GENERALIZE,
    derive_seed,
)
from repro.generalize.enumerate_ import (
    EnumerativeGeneralizer,
    observe_within_instance,
)
from repro.subspace.generator import AdversarialSubspaceGenerator, Subspace


class XPlain:
    """Drives one problem through all of XPlain's stages."""

    def __init__(
        self,
        problem: AnalyzedProblem,
        config: XPlainConfig | None = None,
    ) -> None:
        self.problem = problem
        self.config = config or XPlainConfig()

    # ------------------------------------------------------------------
    def make_policy(self):
        """The run's search policy (DESIGN.md §12).

        One policy — and therefore one budget ledger and one trace —
        serves the whole run: the analyzer's seed hunts and the
        generator's tree-sample draws all charge the same pot.
        """
        from repro.search import make_policy

        config = self.config
        return make_policy(
            config.search,
            budget=config.search_budget,
            rounds=config.search_rounds,
            seed=config.seed,
        )

    def make_analyzer(self, policy=None):
        """The heuristic analyzer stage (exact when an encoding exists)."""
        config = self.config
        mode = config.analyzer
        if mode == "auto":
            mode = "metaopt" if self.problem.exact_model else "blackbox"
        if mode == "metaopt":
            if self.problem.exact_model is None:
                raise AnalyzerError(
                    f"problem {self.problem.name!r} has no exact encoding"
                )
            return MetaOptAnalyzer(self.problem, backend=config.backend)
        if mode == "blackbox":
            return BlackBoxAnalyzer(
                self.problem,
                strategy=config.blackbox_strategy,
                budget=config.blackbox_budget,
                seed=config.seed,
                policy=policy,
            )
        raise AnalyzerError(f"unknown analyzer mode {mode!r}")

    # ------------------------------------------------------------------
    def make_executor(self):
        """The work-unit executor this run's configuration asks for."""
        from repro.parallel.executor import make_executor

        return make_executor(
            self.config.executor, self.config.workers, self.problem
        )

    # ------------------------------------------------------------------
    def run(self) -> XPlainReport:
        """Execute the full pipeline and return the three-type report.

        Every stage's bulk oracle work flows through the problem's
        :class:`~repro.oracle.engine.OracleEngine`, which this method
        routes through the configured executor: miss batches are cut
        into placement-free work units and executed in-process
        (``executor="serial"``) or across a process pool
        (``executor="process"``, ``workers=N``). The unit plan and all
        random streams are independent of the worker count, so a fixed
        seed gives bit-identical reports at any parallelism (DESIGN.md
        §9).
        """
        config = self.config
        start = time.perf_counter()
        executor = self.make_executor()
        engine = self.problem.oracle
        engine.use_executor(executor, config.unit_points)
        spill = None
        try:
            # Persistent memoization: with a store configured, the
            # engine's cache spills through the store's gap_entries
            # table, so points this problem has ever answered (any
            # process, any campaign) are never re-solved. Entries are
            # oracle values — attaching a spill cannot change any
            # result. Problems without a picklable spec have no sound
            # cross-run identity and run without persistence. Preload
            # happens *before* the spill attaches, so cap-evicted
            # entries are not pointlessly re-offered to disk. A spill
            # the caller attached themselves always wins: the pipeline
            # neither replaces nor detaches it.
            engine.configure_cache(max_entries=config.cache_max_entries)
            if (
                config.store_path is not None
                and engine.cache is not None
                and engine.cache.spill is None
            ):
                from repro.store import GapSpill, problem_cache_key

                cache_key = problem_cache_key(
                    self.problem, engine.cache.resolution
                )
                if cache_key is not None:
                    spill = GapSpill(config.store_path, cache_key)
                    spill.preload(engine.cache)
                    engine.configure_cache(spill=spill)
            # Type 1: adversarial subspaces (§5.2), spent through the
            # run's search policy (uniform = the exact legacy streams).
            policy = self.make_policy()
            generator = AdversarialSubspaceGenerator(
                self.problem,
                self.make_analyzer(policy=policy),
                config.generator,
                policy=policy,
            )
            with _span("stage.generate"):
                generator_report = generator.run()

            # Type 2: explain each significant subspace (§5.3). Each
            # subspace owns a derived random stream (shard→seed), so the
            # explanations are order-free and independently schedulable.
            with _span(
                "stage.explain", subspaces=len(generator_report.subspaces)
            ):
                explained = [
                    self._explain(
                        subspace,
                        np.random.default_rng(
                            derive_seed(config.seed, STAGE_EXPLAIN, i)
                        ),
                    )
                    for i, subspace in enumerate(generator_report.subspaces)
                ]

            # Type 3: within-instance generalization (§5.4). Cross-instance
            # generalization needs an instance generator and is driven
            # explicitly (see repro.generalize.observe_across_instances).
            generalization = None
            if config.generalizer_samples > 0 and self.problem.features:
                with _span("stage.generalize"):
                    observations = observe_within_instance(
                        self.problem,
                        config.generalizer_samples,
                        np.random.default_rng(
                            derive_seed(config.seed, STAGE_GENERALIZE, 0)
                        ),
                    )
                    generalization = EnumerativeGeneralizer().search(
                        observations
                    )
        finally:
            self.problem.oracle.use_executor(None)
            executor.close()
            if spill is not None:
                engine.configure_cache(spill=None)
                spill.close()

        return XPlainReport(
            problem=self.problem,
            generator_report=generator_report,
            explained=explained,
            generalization=generalization,
            runtime_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def generalize_across(
        self,
        instance_generator,
        num_instances: int,
        samples_per_instance: int = 50,
        use_exact_analyzer: bool = False,
    ):
        """Type-3 proper (§5.4): trends *across* generated instances.

        ``instance_generator`` is a callable from
        :mod:`repro.generalize.instances`. With ``use_exact_analyzer`` the
        per-instance gap observation is the exact worst case from the
        MetaOpt analyzer (requires every generated problem to carry an
        encoding); otherwise it is the max over sampled inputs.

        Returns a :class:`~repro.generalize.enumerate_.GeneralizerResult`.
        """
        from repro.generalize.enumerate_ import (
            observe_across_instances,
            observe_with_analyzer,
        )
        from repro.generalize.instances import generate_instances

        rng = np.random.default_rng(self.config.seed)
        instances = list(
            generate_instances(instance_generator, num_instances, rng)
        )
        if use_exact_analyzer:
            observations = observe_with_analyzer(
                instances,
                lambda problem: MetaOptAnalyzer(
                    problem, backend=self.config.backend
                ),
            )
        else:
            observations = observe_across_instances(
                instances, samples_per_instance, rng
            )
        return EnumerativeGeneralizer().search(observations)

    # ------------------------------------------------------------------
    def explain_subspace(
        self, subspace: Subspace, rng: np.random.Generator | None = None
    ) -> ExplainedSubspace:
        """Type-2 explanation of one subspace (public for custom loops)."""
        rng = rng or np.random.default_rng(self.config.seed)
        return self._explain(subspace, rng)

    def _explain(
        self, subspace: Subspace, rng: np.random.Generator
    ) -> ExplainedSubspace:
        heatmap = build_heatmap(
            self.problem,
            subspace.region,
            self.config.explainer_samples,
            rng,
        )
        heatmap.region_description = subspace.region.box.describe(
            self.problem.input_names
        )
        graph = self.problem.graph
        if graph is not None:
            narrative = explain_heatmap(
                heatmap, graph, cutoff=self.config.explainer_cutoff
            )
            summary = summarize_heatmap(
                heatmap, graph, cutoff=self.config.explainer_cutoff
            )
        else:
            from repro.explain.report import ExplanationReport

            narrative = ExplanationReport(
                headline="(no DSL graph attached; heatmap only)"
            )
            summary = []
        return ExplainedSubspace(
            subspace=subspace,
            heatmap=heatmap,
            narrative=narrative,
            summary=summary,
        )
