"""The end-to-end XPlain pipeline (Fig. 3)."""

from repro.core.config import XPlainConfig
from repro.core.pipeline import XPlain
from repro.core.results import ExplainedSubspace, XPlainReport
from repro.core.visualize import (
    render_gap_table,
    render_layered_graph,
    render_region_matrix,
)

__all__ = [
    "ExplainedSubspace",
    "XPlain",
    "XPlainConfig",
    "XPlainReport",
    "render_gap_table",
    "render_layered_graph",
    "render_region_matrix",
]
