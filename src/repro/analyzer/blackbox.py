"""Black-box adversarial search baselines.

The paper states that "random search cannot find adversarial subspaces (it
may not even find an adversarial point)" (§5.2). These searchers exist to
(a) reproduce that ablation (benchmark RAND in DESIGN.md), and (b) analyze
heuristics that have no exact MILP encoding yet.

Strategies:

* ``random``   — uniform sampling of the input box;
* ``hillclimb``— random restarts + greedy coordinate perturbation;
* ``anneal``   — simulated annealing with a geometric cooling schedule.

All strategies respect exclusion boxes by rejecting points inside them.

With an *adaptive* :class:`~repro.search.policy.SearchPolicy` attached
(``search="bandit"``/``"hybrid"``), the configured strategy is
superseded: the seed hunt runs through the policy's budget-aware
cell-tree engine instead, which is the whole point of those policies.
The uniform policy leaves every strategy exactly as it was. Either way
the random-search path draws its allowance from the run's shared
:class:`~repro.search.budget.BudgetLedger` rather than a private
counter, so its ``oracle_calls`` mean the same thing as the DSL path's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analyzer.interface import AdversarialExample, AnalyzedProblem
from repro.exceptions import AnalyzerError
from repro.subspace.region import Box

#: ledger stage the analyzer's oracle draws are charged to; mirrors
#: :data:`repro.search.budget.STAGE_ANALYZER`, which cannot be imported
#: at module level: loading any repro.search module initializes the
#: search package, whose import chain runs back through
#: ``repro.analyzer.__init__`` into this (then partially initialized)
#: module. A test pins the two spellings together.
STAGE_ANALYZER = "analyzer"


@dataclass
class BlackBoxAnalyzer:
    """Gap maximization by sampling the gap oracle directly."""

    problem: AnalyzedProblem
    strategy: str = "hillclimb"
    budget: int = 400
    seed: int = 0
    #: hill-climb/anneal step size as a fraction of each box side
    step_fraction: float = 0.15
    restarts: int = 4
    initial_temperature: float = 1.0
    cooling: float = 0.97
    history: list[tuple[np.ndarray, float]] = field(default_factory=list)
    #: the run's :class:`~repro.search.policy.SearchPolicy`; adaptive
    #: policies take over the seed hunt (see the module docstring)
    policy: "object | None" = None
    _ledger: "object | None" = field(default=None, repr=False)

    @property
    def ledger(self):
        """The shared budget ledger (the policy's, else a private tracker)."""
        if self.policy is not None:
            return self.policy.ledger
        if self._ledger is None:
            from repro.search.budget import BudgetLedger

            self._ledger = BudgetLedger()
        return self._ledger

    def find_adversarial(
        self,
        excluded: list[Box] | None = None,
        min_gap: float = 0.0,
    ) -> AdversarialExample | None:
        """Best input found within the budget, or None if gap <= min_gap."""
        excluded = excluded or []
        if self.policy is not None and getattr(self.policy, "adaptive", False):
            best_x, best_gap = self.policy.seed_search(
                self.problem, min_gap=min_gap, excluded=excluded, budget=self.budget
            )
            analyzer = f"blackbox:{self.policy.name}"
            if best_x is not None:
                self.history.append((np.asarray(best_x).copy(), float(best_gap)))
        else:
            rng = np.random.default_rng(self.seed)
            if self.strategy == "random":
                best_x, best_gap = self._random_search(rng, excluded)
            elif self.strategy == "hillclimb":
                best_x, best_gap = self._hill_climb(rng, excluded)
            elif self.strategy == "anneal":
                best_x, best_gap = self._anneal(rng, excluded)
            else:
                raise AnalyzerError(f"unknown strategy {self.strategy!r}")
            analyzer = f"blackbox:{self.strategy}"
        if best_x is None or best_gap <= min_gap:
            return None
        return AdversarialExample(
            x=best_x,
            predicted_gap=best_gap,
            validated_gap=best_gap,
            analyzer=analyzer,
        )

    # -- strategies ------------------------------------------------------------
    def _admissible(self, x: np.ndarray, excluded: list[Box]) -> bool:
        return not any(box.contains(x) for box in excluded)

    def _evaluate(self, x: np.ndarray) -> float:
        gap = self.problem.gap(x)
        self.ledger.charge(1, STAGE_ANALYZER)
        self.history.append((x.copy(), gap))
        return gap

    #: total draws allowed per unit of budget before random search gives up
    #: on finding admissible points (exclusion boxes may cover nearly the
    #: whole input box; unbounded rejection would never terminate)
    MAX_DRAW_FACTOR = 50

    def _random_search(
        self, rng: np.random.Generator, excluded: list[Box]
    ) -> tuple[np.ndarray | None, float]:
        """Uniform search, vectorized: draw batches, reject by exclusion
        masks (:meth:`Box.contains_many`), evaluate through the batched
        oracle. Only the first ``budget`` admissible points of the draw
        stream are evaluated — identical to drawing one point at a time —
        and total draws are capped so full exclusion coverage terminates
        with the best point seen so far (or None when nothing admissible
        was ever drawn).

        The per-call allowance is drawn from the shared budget ledger:
        each evaluated batch is charged to the ``analyzer`` stage, and a
        ledger with a hard limit (an adaptive policy's) clips the search
        when the run's overall search budget runs dry. A fresh tracking
        ledger reproduces the historical behavior exactly.
        """
        box = self.problem.input_box
        ledger = self.ledger
        best_x, best_gap = None, -np.inf
        draws = 0
        max_draws = self.MAX_DRAW_FACTOR * max(self.budget, 1)
        charged_before = ledger.stage_spent(STAGE_ANALYZER)
        while draws < max_draws:
            spent = ledger.stage_spent(STAGE_ANALYZER) - charged_before
            allowance = self.budget - spent
            remaining = ledger.remaining()
            if remaining is not None:
                allowance = min(allowance, remaining)
            if allowance <= 0:
                break
            want = min(allowance, max_draws - draws)
            batch = box.sample(rng, want)
            draws += len(batch)
            admissible = np.ones(len(batch), dtype=bool)
            for exclusion in excluded:
                admissible &= ~exclusion.contains_many(batch)
            candidates = batch[admissible]
            if len(candidates) == 0:
                continue
            samples = self.problem.evaluate_many(candidates)
            gaps = samples.gaps
            ledger.charge(len(candidates), STAGE_ANALYZER)
            for x, gap in zip(candidates, gaps):
                self.history.append((x.copy(), float(gap)))
            index = int(np.argmax(gaps))
            if gaps[index] > best_gap:
                best_x, best_gap = candidates[index], float(gaps[index])
        return best_x, best_gap

    def _hill_climb(
        self, rng: np.random.Generator, excluded: list[Box]
    ) -> tuple[np.ndarray | None, float]:
        box = self.problem.input_box
        steps = box.widths * self.step_fraction
        per_restart = max(1, self.budget // max(1, self.restarts))
        best_x, best_gap = None, -np.inf
        for _ in range(self.restarts):
            x = box.sample(rng, 1)[0]
            if not self._admissible(x, excluded):
                continue
            gap = self._evaluate(x)
            spent = 1
            while spent < per_restart:
                candidate = box.clip_point(
                    x + rng.normal(0.0, steps, size=box.dim)
                )
                if not self._admissible(candidate, excluded):
                    spent += 1
                    continue
                candidate_gap = self._evaluate(candidate)
                spent += 1
                if candidate_gap > gap:
                    x, gap = candidate, candidate_gap
            if gap > best_gap:
                best_x, best_gap = x, gap
        return best_x, best_gap

    def _anneal(
        self, rng: np.random.Generator, excluded: list[Box]
    ) -> tuple[np.ndarray | None, float]:
        box = self.problem.input_box
        steps = box.widths * self.step_fraction
        x = box.sample(rng, 1)[0]
        tries = 0
        while not self._admissible(x, excluded):
            x = box.sample(rng, 1)[0]
            tries += 1
            if tries > 1000:
                return None, -np.inf
        gap = self._evaluate(x)
        best_x, best_gap = x.copy(), gap
        temperature = self.initial_temperature
        for _ in range(self.budget - 1):
            candidate = box.clip_point(x + rng.normal(0.0, steps, size=box.dim))
            if not self._admissible(candidate, excluded):
                temperature *= self.cooling
                continue
            candidate_gap = self._evaluate(candidate)
            accept = candidate_gap >= gap or rng.random() < np.exp(
                (candidate_gap - gap) / max(temperature, 1e-12)
            )
            if accept:
                x, gap = candidate, candidate_gap
                if gap > best_gap:
                    best_x, best_gap = x.copy(), gap
            temperature *= self.cooling
        return best_x, best_gap
