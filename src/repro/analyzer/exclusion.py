"""Excluding already-found subspaces from the analyzer's search.

Step (3) of §5.2: "exclude that subspace and repeat until we can no longer
find an adversarial example outside all of the subspaces we have found so
far". For the MILP analyzer, excluding an axis-aligned box is the classic
big-M disjunction: a point is outside the box iff it violates at least one
side, so one binary per face selects which side is violated.
"""

from __future__ import annotations

from repro.exceptions import AnalyzerError
from repro.solver.expr import Variable, VarType, quicksum
from repro.solver.model import Model
from repro.subspace.region import Box

#: Separation margin: excluded points must clear the box by this much.
DEFAULT_MARGIN = 1e-6


def add_box_exclusion(
    model: Model,
    input_vars: list[Variable],
    box: Box,
    index: int,
    margin: float = DEFAULT_MARGIN,
) -> None:
    """Require the input vector to lie outside ``box``.

    For each dimension i two binaries mark "x_i below lo_i" and "x_i above
    hi_i"; at least one must hold. Big-M values come from the variables'
    own bounds, which the analyzer always sets to the input box.
    """
    if len(input_vars) != box.dim:
        raise AnalyzerError(
            f"exclusion box has dim {box.dim}, model has {len(input_vars)} inputs"
        )
    selectors = []
    for i, var in enumerate(input_vars):
        lo, hi = box.lo[i], box.hi[i]
        var_lo, var_ub = var.lb, var.ub
        if not (var_lo > -1e18 and var_ub < 1e18):
            raise AnalyzerError(
                f"input variable {var.name!r} needs finite bounds for exclusion"
            )
        # Below-side binary: active => x_i <= lo_i - margin.
        below_gap = lo - margin - var_lo
        if below_gap >= 0.0:
            below = model.add_var(
                f"excl{index}_below[{i}]", vartype=VarType.BINARY
            )
            big_m = var_ub - (lo - margin)
            model.add_constraint(
                var <= (lo - margin) + big_m * (1 - below),
                name=f"excl{index}_lo[{i}]",
            )
            selectors.append(below)
        # Above-side binary: active => x_i >= hi_i + margin.
        above_gap = var_ub - (hi + margin)
        if above_gap >= 0.0:
            above = model.add_var(
                f"excl{index}_above[{i}]", vartype=VarType.BINARY
            )
            big_m = (hi + margin) - var_lo
            model.add_constraint(
                var >= (hi + margin) - big_m * (1 - above),
                name=f"excl{index}_hi[{i}]",
            )
            selectors.append(above)
    if not selectors:
        # The box covers the whole input space: nothing left to search.
        raise ExclusionCoversSpace(
            f"exclusion box {index} covers the entire input domain"
        )
    model.add_constraint(
        quicksum(selectors) >= 1, name=f"excl{index}_any"
    )


class ExclusionCoversSpace(AnalyzerError):
    """Raised when an exclusion box leaves no feasible input."""
