"""The MetaOpt-style heuristic analyzer substrate.

XPlain extends an existing heuristic analyzer (Fig. 3); this package *is*
that analyzer in the reproduction: exact bilevel-rewrite search
(:class:`MetaOptAnalyzer`), black-box baselines (:class:`BlackBoxAnalyzer`),
the problem interface, and the exclusion-region machinery for the §5.2
iterate-and-exclude loop.
"""

from repro.analyzer.bilevel import MetaOptAnalyzer
from repro.analyzer.blackbox import BlackBoxAnalyzer
from repro.analyzer.exclusion import ExclusionCoversSpace, add_box_exclusion
from repro.analyzer.gap import (
    GapStatistics,
    bad_sample_mask,
    relative_gap,
    sample_gaps,
)
from repro.analyzer.interface import (
    AdversarialExample,
    AnalyzedProblem,
    ExactEncoding,
    GapSample,
    GapSamples,
)

__all__ = [
    "AdversarialExample",
    "AnalyzedProblem",
    "BlackBoxAnalyzer",
    "ExactEncoding",
    "ExclusionCoversSpace",
    "GapSample",
    "GapSamples",
    "GapStatistics",
    "MetaOptAnalyzer",
    "add_box_exclusion",
    "bad_sample_mask",
    "relative_gap",
    "sample_gaps",
]
