"""Gap-evaluation utilities shared by the pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analyzer.interface import AnalyzedProblem
from repro.subspace.region import Box, Region


@dataclass
class GapStatistics:
    """Summary statistics of gaps over a sample set."""

    count: int
    mean: float
    maximum: float
    fraction_above: float
    threshold: float

    @staticmethod
    def from_gaps(gaps: np.ndarray, threshold: float) -> "GapStatistics":
        gaps = np.asarray(gaps, dtype=float)
        if gaps.size == 0:
            return GapStatistics(0, 0.0, 0.0, 0.0, threshold)
        return GapStatistics(
            count=int(gaps.size),
            mean=float(gaps.mean()),
            maximum=float(gaps.max()),
            fraction_above=float((gaps > threshold).mean()),
            threshold=threshold,
        )


def sample_gaps(
    problem: AnalyzedProblem,
    where: Box | Region,
    count: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` points in a box/region and evaluate their gaps.

    Returns (points, gaps) with shapes (count, dim) and (count,).
    """
    points = where.sample(rng, count)
    gaps = problem.gaps(points)
    return points, gaps


def relative_gap(gap: float, benchmark_value: float) -> float:
    """Gap as a fraction of the benchmark value (the paper's "30%")."""
    if abs(benchmark_value) < 1e-12:
        return 0.0
    return gap / abs(benchmark_value)


def bad_sample_mask(gaps: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean mask of the "bad" (adversarial) samples of §5.2."""
    return np.asarray(gaps, dtype=float) > threshold
