"""The MetaOpt-style exact analyzer.

MetaOpt (NSDI '24) finds the worst-case performance gap of a heuristic by
rewriting the bilevel problem ``max_input [benchmark(input) -
heuristic(input)]`` into a single-level MILP. The domain packages provide
the rewritten encoding (see :mod:`repro.domains.te.analyzer_model` and
:mod:`repro.domains.binpack.analyzer_model`); this module drives it:

* solve the encoding (optionally under exclusion boxes, §5.2 step 3),
* *validate* the reported gap by re-running the actual heuristic and
  benchmark at the found input — the encoding and the oracle must agree,
  which is the reproduction's guard against encoding bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analyzer.exclusion import ExclusionCoversSpace, add_box_exclusion
from repro.analyzer.interface import AdversarialExample, AnalyzedProblem
from repro.exceptions import AnalyzerError
from repro.solver.solution import SolveStatus
from repro.subspace.region import Box


@dataclass
class MetaOptAnalyzer:
    """Exact adversarial-input search via the problem's MILP encoding."""

    problem: AnalyzedProblem
    backend: str = "scipy"
    #: refuse results whose encoding gap and oracle gap disagree by more
    #: than this relative tolerance
    validation_rtol: float = 1e-3
    validation_atol: float = 1e-4

    def find_adversarial(
        self,
        excluded: list[Box] | None = None,
        min_gap: float = 0.0,
    ) -> AdversarialExample | None:
        """The worst-case input outside all excluded boxes, or None.

        Returns None when the remaining space's best gap is <= ``min_gap``
        (the §5.2 stopping condition) or the model becomes infeasible
        (everything is excluded).
        """
        if self.problem.exact_model is None:
            raise AnalyzerError(
                f"problem {self.problem.name!r} has no exact encoding; use "
                "the black-box analyzer instead"
            )
        encoding = self.problem.exact_model()
        try:
            for index, box in enumerate(excluded or []):
                add_box_exclusion(
                    encoding.model, encoding.input_vars, box, index
                )
        except ExclusionCoversSpace:
            return None

        solution = encoding.model.solve(backend=self.backend)
        if solution.status is SolveStatus.INFEASIBLE:
            return None
        if solution.status is not SolveStatus.OPTIMAL:
            raise AnalyzerError(
                f"analyzer solve ended with {solution.status.value}"
            )
        assert solution.objective is not None
        predicted = solution.objective
        if predicted <= min_gap:
            return None

        x = encoding.input_vector(solution)
        x = np.clip(x, self.problem.input_box.lo_array, self.problem.input_box.hi_array)
        if self.problem.canonicalize is not None:
            x = self.problem.canonicalize(x)
        validated = self.problem.gap(x)
        example = AdversarialExample(
            x=x,
            predicted_gap=predicted,
            validated_gap=validated,
            analyzer="metaopt",
        )
        self._check(example)
        return example

    def worst_case_gap(self) -> float:
        """The unconstrained worst-case gap (the paper's headline number)."""
        example = self.find_adversarial()
        return 0.0 if example is None else example.validated_gap

    def _check(self, example: AdversarialExample) -> None:
        scale = max(abs(example.validated_gap), 1.0)
        err = abs(example.predicted_gap - example.validated_gap)
        if err > self.validation_rtol * scale + self.validation_atol:
            raise AnalyzerError(
                f"encoding/oracle gap mismatch at {example.x}: "
                f"encoding predicts {example.predicted_gap:.6g}, oracle "
                f"measures {example.validated_gap:.6g}"
            )
