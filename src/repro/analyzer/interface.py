"""The analyzer-facing problem interface.

An :class:`AnalyzedProblem` packages everything XPlain needs about one
heuristic-vs-benchmark pair:

* the input space (names and bounds — the OuterVars of Fig. 1b),
* a ``gap`` oracle (benchmark minus heuristic, always >= 0 when the
  heuristic underperforms),
* optionally an *exact* MetaOpt-style MILP encoding whose optimum is the
  worst-case gap (``exact_model``),
* the problem's DSL graph plus per-sample heuristic/benchmark edge flows,
  which feed the Type-2 explainer,
* named feature functions for the regression tree and the generalizer.

Domain packages (:mod:`repro.domains.te`, :mod:`repro.domains.binpack`)
provide concrete constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.dsl.graph import FlowGraph
from repro.exceptions import AnalyzerError
from repro.solver.expr import Variable
from repro.solver.model import Model
from repro.subspace.region import Box


@dataclass
class GapSample:
    """The gap oracle's output at one input point."""

    x: np.ndarray
    benchmark_value: float
    heuristic_value: float
    heuristic_feasible: bool = True

    @property
    def gap(self) -> float:
        return self.benchmark_value - self.heuristic_value


@dataclass
class GapSamples:
    """Structure-of-arrays gap oracle output for a batch of inputs.

    The batched counterpart of :class:`GapSample`: ``xs`` has shape
    ``(n, dim)`` and the value arrays shape ``(n,)``. Native batched
    oracles (:attr:`AnalyzedProblem.evaluate_batch`) return this directly;
    the :class:`repro.oracle.engine.OracleEngine` assembles it from scalar
    calls for problems without one.
    """

    xs: np.ndarray
    benchmark_values: np.ndarray
    heuristic_values: np.ndarray
    heuristic_feasible: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.xs = np.atleast_2d(np.asarray(self.xs, dtype=float))
        self.benchmark_values = np.asarray(self.benchmark_values, dtype=float)
        self.heuristic_values = np.asarray(self.heuristic_values, dtype=float)
        n = len(self.xs)
        if self.heuristic_feasible is None:
            self.heuristic_feasible = np.ones(n, dtype=bool)
        else:
            self.heuristic_feasible = np.asarray(
                self.heuristic_feasible, dtype=bool
            )
        if not (
            len(self.benchmark_values)
            == len(self.heuristic_values)
            == len(self.heuristic_feasible)
            == n
        ):
            raise AnalyzerError("GapSamples arrays have mismatched lengths")

    def __len__(self) -> int:
        return len(self.xs)

    @property
    def gaps(self) -> np.ndarray:
        return self.benchmark_values - self.heuristic_values

    def sample(self, i: int) -> GapSample:
        """The i-th point as a scalar :class:`GapSample`."""
        return GapSample(
            x=self.xs[i],
            benchmark_value=float(self.benchmark_values[i]),
            heuristic_value=float(self.heuristic_values[i]),
            heuristic_feasible=bool(self.heuristic_feasible[i]),
        )

    @staticmethod
    def from_samples(samples: "list[GapSample]", dim: int) -> "GapSamples":
        if not samples:
            return GapSamples(
                np.zeros((0, dim)), np.zeros(0), np.zeros(0), np.zeros(0, bool)
            )
        return GapSamples(
            xs=np.array([s.x for s in samples]),
            benchmark_values=np.array([s.benchmark_value for s in samples]),
            heuristic_values=np.array([s.heuristic_value for s in samples]),
            heuristic_feasible=np.array(
                [s.heuristic_feasible for s in samples], dtype=bool
            ),
        )


@dataclass
class ExactEncoding:
    """A MetaOpt-style single-level rewrite of the bilevel gap problem.

    ``model`` maximizes the gap; ``input_vars`` are the outer variables in
    the problem's input order; solving yields the adversarial input.
    """

    model: Model
    input_vars: list[Variable]

    def input_vector(self, solution) -> np.ndarray:
        return np.array([solution.values[v] for v in self.input_vars])


@dataclass
class AdversarialExample:
    """An input the analyzer found, with predicted and validated gaps."""

    x: np.ndarray
    predicted_gap: float
    validated_gap: float
    analyzer: str = ""

    @property
    def consistent(self) -> bool:
        """Whether the encoding's gap matches the oracle re-evaluation."""
        scale = max(1.0, abs(self.validated_gap))
        return abs(self.predicted_gap - self.validated_gap) <= 1e-4 * scale + 1e-5


EdgeFlows = dict[tuple[str, str], float]


@dataclass
class AnalyzedProblem:
    """One heuristic/benchmark pair, ready for the XPlain pipeline."""

    name: str
    input_names: list[str]
    input_box: Box
    #: gap oracle: input vector -> GapSample
    evaluate: Callable[[np.ndarray], GapSample]
    #: native *batched* gap oracle: (n, dim) matrix -> GapSamples. Optional;
    #: problems without one fall back to a scalar loop over ``evaluate``.
    #: All pipeline code should query through :meth:`evaluate_many` /
    #: :meth:`gaps` so batching, caching, and stats apply uniformly.
    evaluate_batch: Callable[[np.ndarray], GapSamples] | None = None
    #: problem structure in the DSL (Fig. 4); used by the explainer
    graph: FlowGraph | None = None
    #: exact MetaOpt-style encoding factory (fresh model per call), optional
    exact_model: Callable[[], ExactEncoding] | None = None
    #: per-sample flows on ``graph`` for heuristic and benchmark
    heuristic_flows: Callable[[np.ndarray], EdgeFlows] | None = None
    benchmark_flows: Callable[[np.ndarray], EdgeFlows] | None = None
    #: named feature functions F(I) for trees / generalization (§5.2 open
    #: questions); raw inputs are always available as features too.
    features: dict[str, Callable[[np.ndarray], float]] = field(
        default_factory=dict
    )
    #: *linear* features F(I) = coeffs @ I. The subspace generator trains
    #: its regression tree on these too, and — because they are linear —
    #: can still lower tree predicates to the exact Fig. 5c halfspace
    #: algebra (the paper's own D0 uses the sum feature's row [-1-1-1-1]).
    linear_features: dict[str, "np.ndarray"] = field(default_factory=dict)
    #: free-form instance description (topology size, ball/bin counts, ...)
    instance_info: dict[str, object] = field(default_factory=dict)
    #: snap an analyzer-returned input onto the oracle's decision
    #: boundaries (MILP solvers return points within feasibility tolerance
    #: of indicator thresholds; e.g. a demand at T + 1e-6 that the encoding
    #: treats as pinned must be snapped to T so the oracle agrees).
    canonicalize: Callable[[np.ndarray], np.ndarray] | None = None
    #: picklable rebuild recipe (:class:`repro.parallel.spec.ProblemSpec`);
    #: required by the process executor, which reconstructs the problem —
    #: closures and all — inside each worker. Domain constructors whose
    #: arguments are JSON-safe attach one automatically.
    spec: "object | None" = None

    def __post_init__(self) -> None:
        if len(self.input_names) != self.input_box.dim:
            raise AnalyzerError(
                f"problem {self.name!r}: {len(self.input_names)} input names "
                f"vs {self.input_box.dim}-dimensional box"
            )
        self._oracle = None

    @property
    def dim(self) -> int:
        return self.input_box.dim

    # -- oracle dispatch ----------------------------------------------------
    @property
    def oracle(self):
        """The problem's batched/caching oracle engine (built lazily).

        Every gap query made through :meth:`gap` / :meth:`gaps` /
        :meth:`evaluate_many` is served by this
        :class:`repro.oracle.engine.OracleEngine`, which batches through
        :attr:`evaluate_batch` when the domain provides one, memoizes
        repeated points, and keeps hit/miss/solve counters.
        """
        if self._oracle is None:
            from repro.oracle.engine import OracleEngine

            self._oracle = OracleEngine(self)
        return self._oracle

    def configure_oracle(self, **kwargs):
        """Replace the oracle engine (e.g. to disable or retune the cache).

        Keyword arguments are passed to
        :class:`repro.oracle.engine.OracleEngine`; returns the new engine.
        """
        from repro.oracle.engine import OracleEngine

        self._oracle = OracleEngine(self, **kwargs)
        return self._oracle

    def gap(self, x: np.ndarray) -> float:
        """Convenience: the gap oracle's scalar output."""
        return self.oracle.evaluate(np.asarray(x, dtype=float)).gap

    def gaps(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized gap evaluation (row-wise)."""
        return self.evaluate_many(xs).gaps

    def evaluate_many(self, xs: np.ndarray) -> GapSamples:
        """Batched oracle evaluation through the engine (cache + batching)."""
        return self.oracle.evaluate_many(np.asarray(xs, dtype=float))

    def named_input(self, values: Mapping[str, float]) -> np.ndarray:
        """Build an input vector from a name -> value mapping."""
        try:
            return np.array([float(values[n]) for n in self.input_names])
        except KeyError as exc:
            raise AnalyzerError(f"missing input {exc.args[0]!r}") from None

    def describe_input(self, x: np.ndarray) -> str:
        pairs = ", ".join(
            f"{name}={value:.4g}" for name, value in zip(self.input_names, x)
        )
        return f"({pairs})"
