"""The adversarial subspace generator and significance checker (§5.2)."""

from repro.subspace.generator import (
    AdversarialSubspaceGenerator,
    GeneratorConfig,
    GeneratorReport,
    Subspace,
)
from repro.subspace.region import Box, Halfspace, Region
from repro.subspace.sampler import (
    SampleSet,
    collect_outside,
    dkw_sample_size,
    sample_in_box,
    sample_in_boxes,
    sample_in_shell,
)
from repro.subspace.significance import (
    ALPHA,
    SignificanceResult,
    wilcoxon_signed_rank,
)
from repro.subspace.slices import (
    ExpansionConfig,
    ExpansionResult,
    expand_around,
)
from repro.subspace.tree import (
    RegressionTree,
    TreePredicate,
    path_to_halfspaces,
)

__all__ = [
    "ALPHA",
    "AdversarialSubspaceGenerator",
    "Box",
    "ExpansionConfig",
    "ExpansionResult",
    "GeneratorConfig",
    "GeneratorReport",
    "Halfspace",
    "Region",
    "RegressionTree",
    "SampleSet",
    "SignificanceResult",
    "Subspace",
    "TreePredicate",
    "collect_outside",
    "dkw_sample_size",
    "expand_around",
    "path_to_halfspaces",
    "sample_in_box",
    "sample_in_boxes",
    "sample_in_shell",
    "wilcoxon_signed_rank",
]
