"""Slice-by-slice expansion of the rough adversarial box (§5.2, Fig. 5a).

Starting from a small cube around the analyzer's adversarial point, the
expander grows one face ("direction") at a time. For each candidate
expansion it samples *only the newly added slab* — "we go slice by slice
when we investigate the cubic region around the initial bad sample because
the adversarial subspace may not be uniformly spread around the initial
point" — and keeps the expansion iff the slab's bad-sample density stays
above a threshold. It stops when every direction has stalled (or hit the
input-domain boundary).

Slabs are proposed per sweep (one per still-active direction, all against
the sweep-start box) and their samples are evaluated as one oracle batch,
so the engine can cut the sweep into full-size work units and shard them
across workers (see :mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analyzer.interface import AnalyzedProblem
from repro.exceptions import SubspaceError
from repro.subspace.region import Box
from repro.subspace.sampler import SampleSet, sample_in_box, sample_in_boxes


@dataclass
class ExpansionConfig:
    """Tuning of the slice expansion (§5.2's "exploration granularity")."""

    #: initial cube half-width, as a fraction of each input-domain side
    initial_halfwidth_fraction: float = 0.05
    #: each accepted expansion grows the face by this fraction of the side
    step_fraction: float = 0.05
    #: a slab must have at least this bad-sample density to be accepted
    density_threshold: float = 0.35
    #: samples per slab (overrides DKW when set; DKW defaults are costly
    #: because every sample is two optimization solves)
    samples_per_slice: int = 24
    #: hard cap on accepted expansions (runtime guard)
    max_expansions: int = 64


@dataclass
class ExpansionTrace:
    """One slab decision, kept for debugging and the EXPERIMENTS log."""

    dim: int
    direction: int
    density: float
    accepted: bool
    slab: Box


@dataclass
class ExpansionResult:
    """The rough box plus every sample drawn along the way."""

    box: Box
    samples: SampleSet
    trace: list[ExpansionTrace] = field(default_factory=list)

    @property
    def expansions_accepted(self) -> int:
        return sum(1 for t in self.trace if t.accepted)


def expand_around(
    problem: AnalyzedProblem,
    seed: np.ndarray,
    threshold: float,
    rng: np.random.Generator,
    config: ExpansionConfig | None = None,
) -> ExpansionResult:
    """Grow the rough adversarial box around ``seed`` (Fig. 5a)."""
    config = config or ExpansionConfig()
    bounds = problem.input_box
    seed = bounds.clip_point(np.asarray(seed, dtype=float))
    widths = bounds.widths
    if np.any(widths <= 0):
        raise SubspaceError("input domain has a zero-width dimension")

    box = Box.around(
        seed, widths * config.initial_halfwidth_fraction, bounds=bounds
    )
    samples = sample_in_box(
        problem, box, config.samples_per_slice, threshold, rng
    )
    trace: list[ExpansionTrace] = []

    # Directions: (dim, -1) grows the lower face, (dim, +1) the upper face.
    # Each sweep proposes one slab per still-active direction against the
    # sweep-start box, evaluates ALL slabs as one oracle batch (a full
    # work unit the engine can shard across workers), then applies the
    # accept/stall decisions in direction order.
    active = [(d, s) for d in range(bounds.dim) for s in (-1, +1)]
    accepted_total = 0
    while active and accepted_total < config.max_expansions:
        candidates: list[tuple[int, int, Box]] = []
        for dim, direction in active:
            step = widths[dim] * config.step_fraction
            grown = box.expanded(dim, direction, step, bounds=bounds)
            slab = _new_slab(box, grown, dim, direction)
            if slab is None:  # hit the domain boundary; direction is done
                continue
            candidates.append((dim, direction, slab))
        if not candidates:
            break
        slab_sets = sample_in_boxes(
            problem,
            [slab for _, _, slab in candidates],
            config.samples_per_slice,
            threshold,
            rng,
        )
        still_active: list[tuple[int, int]] = []
        for (dim, direction, slab), slab_samples in zip(candidates, slab_sets):
            samples = samples.merged_with(slab_samples)
            density = slab_samples.bad_density
            accept = (
                density >= config.density_threshold
                and accepted_total < config.max_expansions
            )
            trace.append(
                ExpansionTrace(
                    dim=dim,
                    direction=direction,
                    density=density,
                    accepted=accept,
                    slab=slab,
                )
            )
            if accept:
                box = box.expanded(
                    dim,
                    direction,
                    widths[dim] * config.step_fraction,
                    bounds=bounds,
                )
                accepted_total += 1
                still_active.append((dim, direction))
            # A stalled direction stays stalled: "we stop when the density
            # of bad samples drops in all possible expansion directions".
        active = still_active

    return ExpansionResult(box=box, samples=samples, trace=trace)


def _new_slab(old: Box, grown: Box, dim: int, direction: int) -> Box | None:
    """The newly added region when ``old`` grew to ``grown`` on one face."""
    lo = grown.lo_array
    hi = grown.hi_array
    if direction < 0:
        hi = hi.copy()
        hi[dim] = old.lo[dim]
    else:
        lo = lo.copy()
        lo[dim] = old.hi[dim]
    if hi[dim] - lo[dim] <= 1e-12:
        return None
    return Box.from_arrays(lo, hi)
