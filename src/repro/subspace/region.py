"""Region algebra for adversarial subspaces (paper Fig. 5c).

A subspace is reported exactly in the paper's algebraic form::

    D_i = { X in R+^n :  A X <= C_i  (the rough box)
                         T_i X <= V_i (the regression-tree path) }

with ``A = [I; -I]`` encoding the box. :class:`Box` is the rough cube the
slice expansion finds; :class:`Halfspace` rows come from the tree-path
predicates; :class:`Region` is their intersection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SubspaceError


@dataclass(frozen=True)
class Box:
    """An axis-aligned box (the "rough subspace" of §5.2)."""

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise SubspaceError("box bounds have mismatched dimensions")
        for a, b in zip(self.lo, self.hi):
            if a > b:
                raise SubspaceError(f"box has empty side [{a}, {b}]")

    @staticmethod
    def from_arrays(lo: np.ndarray, hi: np.ndarray) -> "Box":
        return Box(tuple(float(v) for v in lo), tuple(float(v) for v in hi))

    @staticmethod
    def around(
        center: np.ndarray,
        half_width: float | np.ndarray,
        bounds: "Box" | None = None,
    ) -> "Box":
        """Cube of the given half-width centered on a point, clipped to bounds."""
        center = np.asarray(center, dtype=float)
        hw = np.broadcast_to(np.asarray(half_width, dtype=float), center.shape)
        lo = center - hw
        hi = center + hw
        if bounds is not None:
            lo = np.maximum(lo, bounds.lo_array)
            hi = np.minimum(hi, bounds.hi_array)
        return Box.from_arrays(lo, hi)

    # -- geometry -----------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def lo_array(self) -> np.ndarray:
        return np.array(self.lo)

    @property
    def hi_array(self) -> np.ndarray:
        return np.array(self.hi)

    @property
    def widths(self) -> np.ndarray:
        return self.hi_array - self.lo_array

    @property
    def center(self) -> np.ndarray:
        return (self.lo_array + self.hi_array) / 2.0

    def volume(self) -> float:
        return float(np.prod(self.widths))

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        x = np.asarray(x, dtype=float)
        return bool(
            np.all(x >= self.lo_array - tol) and np.all(x <= self.hi_array + tol)
        )

    def contains_many(self, xs: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        return np.all(
            (xs >= self.lo_array - tol) & (xs <= self.hi_array + tol), axis=1
        )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Uniform samples, shape (count, dim)."""
        return rng.uniform(self.lo_array, self.hi_array, size=(count, self.dim))

    # -- surgery ------------------------------------------------------------
    def expanded(
        self, dim: int, direction: int, amount: float, bounds: "Box" | None = None
    ) -> "Box":
        """Grow one face: direction -1 grows lo downward, +1 grows hi upward."""
        lo = self.lo_array
        hi = self.hi_array
        if direction < 0:
            lo = lo.copy()
            lo[dim] -= amount
            if bounds is not None:
                lo[dim] = max(lo[dim], bounds.lo[dim])
        else:
            hi = hi.copy()
            hi[dim] += amount
            if bounds is not None:
                hi[dim] = min(hi[dim], bounds.hi[dim])
        return Box.from_arrays(lo, hi)

    def intersect(self, other: "Box") -> "Box | None":
        lo = np.maximum(self.lo_array, other.lo_array)
        hi = np.minimum(self.hi_array, other.hi_array)
        if np.any(lo > hi):
            return None
        return Box.from_arrays(lo, hi)

    def overlaps(self, other: "Box") -> bool:
        return self.intersect(other) is not None

    def clip_point(self, x: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(x, dtype=float), self.lo_array, self.hi_array)

    def describe(self, names: list[str] | None = None) -> str:
        names = names or [f"x{i}" for i in range(self.dim)]
        parts = [
            f"{lo:.4g} <= {name} <= {hi:.4g}"
            for name, lo, hi in zip(names, self.lo, self.hi)
        ]
        return " and ".join(parts)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; round-trips exactly through :meth:`from_dict`."""
        return {
            "lo": [float(v) for v in self.lo],
            "hi": [float(v) for v in self.hi],
        }

    @staticmethod
    def from_dict(data: dict) -> "Box":
        return Box(
            tuple(float(v) for v in data["lo"]),
            tuple(float(v) for v in data["hi"]),
        )


@dataclass(frozen=True)
class Halfspace:
    """A linear predicate ``coeffs @ x <= rhs`` (one tree-path row of T_i)."""

    coeffs: tuple[float, ...]
    rhs: float

    @staticmethod
    def axis(dim: int, total_dims: int, threshold: float, below: bool) -> "Halfspace":
        """The tree predicate ``x_dim <= t`` (below) or ``x_dim > t`` (above).

        "Above" is encoded as ``-x_dim <= -t`` so every predicate is a <=
        row, matching the T_i X <= V_i form of Fig. 5c.
        """
        coeffs = [0.0] * total_dims
        coeffs[dim] = 1.0 if below else -1.0
        rhs = threshold if below else -threshold
        return Halfspace(tuple(coeffs), rhs)

    @property
    def dim(self) -> int:
        return len(self.coeffs)

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        return float(np.dot(self.coeffs, x)) <= self.rhs + tol

    def contains_many(self, xs: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        return xs @ np.asarray(self.coeffs) <= self.rhs + tol

    def describe(self, names: list[str] | None = None) -> str:
        names = names or [f"x{i}" for i in range(self.dim)]
        terms = [
            f"{c:+g}*{name}"
            for c, name in zip(self.coeffs, names)
            if c != 0.0
        ]
        return f"{' '.join(terms)} <= {self.rhs:.4g}"

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "coeffs": [float(c) for c in self.coeffs],
            "rhs": float(self.rhs),
        }

    @staticmethod
    def from_dict(data: dict) -> "Halfspace":
        return Halfspace(
            tuple(float(c) for c in data["coeffs"]), float(data["rhs"])
        )


@dataclass
class Region:
    """A contiguous adversarial subspace: rough box + tree-path halfspaces."""

    box: Box
    halfspaces: list[Halfspace] = field(default_factory=list)

    @property
    def dim(self) -> int:
        return self.box.dim

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        if not self.box.contains(x, tol):
            return False
        return all(h.contains(x, tol) for h in self.halfspaces)

    def contains_many(self, xs: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        mask = self.box.contains_many(xs, tol)
        for h in self.halfspaces:
            mask &= h.contains_many(xs, tol)
        return mask

    def sample(
        self,
        rng: np.random.Generator,
        count: int,
        max_tries: int = 200,
    ) -> np.ndarray:
        """Rejection-sample inside the region (box proposal)."""
        accepted: list[np.ndarray] = []
        for _ in range(max_tries):
            batch = self.box.sample(rng, count)
            mask = self.contains_many(batch)
            accepted.extend(batch[mask])
            if len(accepted) >= count:
                return np.array(accepted[:count])
        if not accepted:
            raise SubspaceError(
                "region rejection sampling failed; halfspaces may exclude the box"
            )
        # Return what we have, recycled to the requested count.
        reps = int(np.ceil(count / len(accepted)))
        return np.array((accepted * reps)[:count])

    def matrix_form(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The (A, C, T, V) of Fig. 5c: A x <= C (box), T x <= V (tree path)."""
        n = self.dim
        a = np.vstack([np.eye(n), -np.eye(n)])
        c = np.concatenate([self.box.hi_array, -self.box.lo_array])
        if self.halfspaces:
            t = np.array([h.coeffs for h in self.halfspaces])
            v = np.array([h.rhs for h in self.halfspaces])
        else:
            t = np.zeros((0, n))
            v = np.zeros(0)
        return a, c, t, v

    def describe(self, names: list[str] | None = None) -> str:
        lines = [f"box: {self.box.describe(names)}"]
        for h in self.halfspaces:
            lines.append(f"and: {h.describe(names)}")
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe Fig. 5c form, used by campaign reports and the store."""
        return {
            "box": self.box.to_dict(),
            "halfspaces": [h.to_dict() for h in self.halfspaces],
        }

    @staticmethod
    def from_dict(data: dict) -> "Region":
        return Region(
            box=Box.from_dict(data["box"]),
            halfspaces=[
                Halfspace.from_dict(h) for h in data.get("halfspaces", [])
            ],
        )
