"""A from-scratch CART regression tree (§5.2, Fig. 5b).

The paper refines the rough subspace "based on an idea from prior work in
diagnosis [Chen et al. 2004]: we train a regression tree that predicts the
performance gap on samples in our rough subspace. The predicates that form
the path that starts at the root of this tree and reaches the leaf that
contains the initial bad sample more accurately describe the subspace."

The tree is a standard variance-reduction CART over arbitrary feature
matrices. When the features are the raw inputs, the root-to-leaf path maps
directly onto :class:`~repro.subspace.region.Halfspace` rows (the ``T_i X
<= V_i`` block of Fig. 5c); for derived features F(I) the path is reported
as named predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SubspaceError
from repro.subspace.region import Halfspace


@dataclass
class TreePredicate:
    """One edge of a root-to-leaf path: ``feature <= t`` or ``feature > t``."""

    feature_index: int
    threshold: float
    below: bool  # True for <=, False for >
    feature_name: str = ""

    def holds(self, features: np.ndarray) -> bool:
        value = features[self.feature_index]
        return value <= self.threshold if self.below else value > self.threshold

    def describe(self) -> str:
        name = self.feature_name or f"x{self.feature_index}"
        op = "<=" if self.below else ">"
        return f"{name} {op} {self.threshold:.4g}"

    def to_halfspace(self, total_dims: int) -> Halfspace:
        return Halfspace.axis(
            self.feature_index, total_dims, self.threshold, self.below
        )


@dataclass
class _Node:
    prediction: float
    count: int
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class RegressionTree:
    """CART with variance-reduction splits."""

    max_depth: int = 4
    min_samples_leaf: int = 8
    min_variance_decrease: float = 1e-6
    #: candidate thresholds per feature (quantile grid; keeps fitting cheap)
    max_candidate_splits: int = 32
    feature_names: list[str] = field(default_factory=list)
    _root: _Node | None = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if len(x) != len(y):
            raise SubspaceError("X/y length mismatch")
        if len(x) == 0:
            raise SubspaceError("cannot fit a tree on zero samples")
        if not self.feature_names:
            self.feature_names = [f"x{i}" for i in range(x.shape[1])]
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()), count=len(y))
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.ptp(y) < 1e-12
        ):
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n = len(y)
        base_var = float(np.var(y))
        best_gain = self.min_variance_decrease
        best: tuple[int, float] | None = None
        for feature in range(x.shape[1]):
            column = x[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            if len(values) > self.max_candidate_splits:
                qs = np.linspace(0, 1, self.max_candidate_splits + 2)[1:-1]
                candidates = np.unique(np.quantile(column, qs))
            else:
                candidates = (values[:-1] + values[1:]) / 2.0
            for threshold in candidates:
                mask = column <= threshold
                n_left = int(mask.sum())
                if (
                    n_left < self.min_samples_leaf
                    or n - n_left < self.min_samples_leaf
                ):
                    continue
                var_left = float(np.var(y[mask]))
                var_right = float(np.var(y[~mask]))
                weighted = (n_left * var_left + (n - n_left) * var_right) / n
                gain = base_var - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    # -- inference -----------------------------------------------------------
    def _require_fit(self) -> _Node:
        if self._root is None:
            raise SubspaceError("tree is not fitted")
        return self._root

    def predict_one(self, x: np.ndarray) -> float:
        node = self._require_fit()
        x = np.asarray(x, dtype=float)
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.prediction

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.array([self.predict_one(row) for row in x])

    def path_to(self, x: np.ndarray) -> list[TreePredicate]:
        """Root-to-leaf predicates for the leaf containing ``x`` (Fig. 5b)."""
        node = self._require_fit()
        x = np.asarray(x, dtype=float)
        path: list[TreePredicate] = []
        while not node.is_leaf:
            below = x[node.feature] <= node.threshold
            path.append(
                TreePredicate(
                    feature_index=node.feature,
                    threshold=node.threshold,
                    below=bool(below),
                    feature_name=self.feature_names[node.feature],
                )
            )
            node = node.left if below else node.right
            assert node is not None
        return path

    def leaf_prediction(self, x: np.ndarray) -> float:
        return self.predict_one(x)

    def root_split(self) -> tuple[int, float] | None:
        """The fitted root's ``(feature, threshold)``, or None for a stump.

        The adaptive search engine (:mod:`repro.search`) refines a
        promising cell by cutting it at the single best variance-reduction
        split of the cell's own samples — exactly the root split a
        depth-1 fit finds.
        """
        root = self._require_fit()
        if root.is_leaf:
            return None
        return root.feature, float(root.threshold)

    def depth(self) -> int:
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._require_fit())

    def num_leaves(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return walk(node.left) + walk(node.right)

        return walk(self._require_fit())

    def render(self) -> str:
        """ASCII rendering of the tree (Fig. 5b style, for reports)."""
        lines: list[str] = []

        def walk(node: _Node, indent: str) -> None:
            if node.is_leaf:
                lines.append(
                    f"{indent}gap = {node.prediction:.4g}  (n={node.count})"
                )
                return
            name = self.feature_names[node.feature]
            lines.append(f"{indent}{name} <= {node.threshold:.4g}?")
            walk(node.left, indent + "  yes: ")
            walk(node.right, indent + "  no:  ")

        walk(self._require_fit(), "")
        return "\n".join(lines)


def path_to_halfspaces(
    path: list[TreePredicate], total_dims: int
) -> list[Halfspace]:
    """Convert a raw-input tree path to Fig. 5c halfspace rows."""
    return [p.to_halfspace(total_dims) for p in path]
