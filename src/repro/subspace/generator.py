"""The adversarial subspace generator (§5.2, Fig. 5).

The iterate-and-exclude loop:

1. ask the heuristic analyzer for an adversarial example;
2. grow a rough box around it slice by slice (:mod:`repro.subspace.slices`);
3. refine with a regression tree — the root-to-leaf path containing the
   seed becomes the ``T_i X <= V_i`` block of Fig. 5c;
4. check statistical significance (Wilcoxon signed-rank, inside vs just
   outside);
5. exclude the rough box from the analyzer's search space and repeat until
   no adversarial example with gap above the threshold remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analyzer.interface import AdversarialExample, AnalyzedProblem
from repro.exceptions import SubspaceError
from repro.subspace.region import Box, Halfspace, Region
from repro.subspace.sampler import (
    SampleSet,
    collect_outside,
)
from repro.subspace.significance import (
    ALPHA,
    SignificanceResult,
    wilcoxon_signed_rank,
)
from repro.subspace.slices import ExpansionConfig, expand_around
from repro.subspace.tree import RegressionTree, TreePredicate, path_to_halfspaces


@dataclass
class GeneratorConfig:
    """Tuning of the whole subspace-generation loop."""

    #: "bad sample" gap cutoff as a fraction of the first seed's gap
    gap_threshold_fraction: float = 0.5
    #: absolute gap cutoff override (used when set, skipping the fraction)
    gap_threshold: float | None = None
    #: slice-expansion tuning
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    #: regression-tree tuning
    tree_max_depth: int = 5
    tree_min_samples_leaf: int = 10
    #: extra samples drawn inside the rough box before fitting the tree
    tree_extra_samples: int = 256
    #: paired pools for the significance test
    significance_pairs: int = 40
    #: shell width around the region for "immediately outside" sampling,
    #: as a fraction of each input-domain side
    shell_fraction: float = 0.15
    alpha: float = ALPHA
    max_subspaces: int = 8
    #: §5.2: users "can also elect to include those parts of the initial
    #: subspaces XPlain finds as part of MetaOpt's decision space (if they
    #: do so they need to include the number of times they are willing to
    #: re-examine an area to avoid an infinite cycle)". When > 0, a region
    #: that fails the significance test is *not* excluded until it has
    #: been revisited this many times, letting the analyzer re-enter it
    #: with a different seed.
    max_revisits: int = 0
    seed: int = 0


@dataclass
class Subspace:
    """One discovered adversarial subspace (a D_i of §3, Type 1)."""

    region: Region
    seed: AdversarialExample
    significance: SignificanceResult
    samples: SampleSet
    tree_path: list[TreePredicate]
    mean_gap_inside: float

    @property
    def significant(self) -> bool:
        return self.significance.significant

    def describe(self, input_names: list[str] | None = None) -> str:
        lines = [
            f"subspace seeded at gap {self.seed.validated_gap:.4g}",
            self.region.describe(input_names),
            self.significance.describe(),
        ]
        if self.tree_path:
            preds = " AND ".join(p.describe() for p in self.tree_path)
            lines.append(f"tree path: {preds}")
        return "\n".join(lines)


@dataclass
class GeneratorReport:
    """Everything the generator found, significant or not."""

    subspaces: list[Subspace] = field(default_factory=list)
    rejected: list[Subspace] = field(default_factory=list)
    threshold: float = 0.0
    analyzer_calls: int = 0
    #: gap-oracle work this run cost (cache hits, batch sizes, warm/cold LP
    #: solves); ``None`` only for reports built by hand
    oracle_stats: "object | None" = None
    #: the search policy's audit log (:class:`repro.search.trace.
    #: SearchTrace`): per-round cell scores, the budget ledger, pruned
    #: volume, evals-to-first-region. ``None`` only for hand-built reports
    search_trace: "object | None" = None

    @property
    def regions(self) -> list[Region]:
        return [s.region for s in self.subspaces]

    def union_contains(self, x: np.ndarray) -> bool:
        """Type-1 membership: is x in any discovered adversarial subspace?"""
        return any(s.region.contains(x) for s in self.subspaces)


class AdversarialSubspaceGenerator:
    """Drives the §5.2 loop over one analyzer and one problem."""

    def __init__(
        self,
        problem: AnalyzedProblem,
        analyzer,
        config: GeneratorConfig | None = None,
        policy=None,
    ) -> None:
        """``analyzer`` needs ``find_adversarial(excluded=..., min_gap=...)``.

        ``policy`` is the run's :class:`~repro.search.policy.SearchPolicy`;
        the generator routes its tree-sample draws through it and logs
        onto its trace. ``None`` builds a fresh uniform policy — the
        exact legacy sampling behavior.
        """
        self.problem = problem
        self.analyzer = analyzer
        self.config = config or GeneratorConfig()
        if policy is None:
            from repro.search.policy import UniformPolicy

            policy = UniformPolicy(seed=self.config.seed)
        self.policy = policy

    def run(self) -> GeneratorReport:
        config = self.config
        rng = np.random.default_rng(config.seed)
        report = GeneratorReport()
        oracle_before = self.problem.oracle.stats_snapshot()
        excluded: list[Box] = []
        #: how many times an insignificant area has been re-examined,
        #: keyed by a coarse box signature (the §5.2 revisit budget)
        revisits: dict[tuple, int] = {}

        threshold = config.gap_threshold if config.gap_threshold is not None else 0.0
        while (
            len(report.subspaces) + len(report.rejected)
            < config.max_subspaces
        ):
            report.analyzer_calls += 1
            example = self.analyzer.find_adversarial(
                excluded=excluded, min_gap=threshold
            )
            if example is None:
                break  # §5.2 stop: no adversarial example left outside
            if config.gap_threshold is None and not report.subspaces and not report.rejected:
                threshold = (
                    config.gap_threshold_fraction * example.validated_gap
                )
                report.threshold = threshold

            subspace = self._grow_and_refine(example, threshold, rng)
            if subspace.significant:
                report.subspaces.append(subspace)
                self.policy.trace.note_region_found()
                excluded.append(subspace.region.box)
            else:
                report.rejected.append(subspace)
                signature = self._signature(subspace.region.box)
                seen = revisits.get(signature, 0)
                if seen < config.max_revisits:
                    # Leave the area in the analyzer's decision space for
                    # another attempt with a different seed.
                    revisits[signature] = seen + 1
                else:
                    # Re-examination budget exhausted: exclude to avoid
                    # the infinite cycle the paper warns about.
                    excluded.append(subspace.region.box)
        report.threshold = threshold
        report.oracle_stats = (
            self.problem.oracle.stats_snapshot() - oracle_before
        )
        # Search spending comes from the shared ledger, so the counter
        # means the same thing on the black-box and DSL analyzer paths.
        report.oracle_stats.oracle_calls = self.policy.ledger.spent
        self.policy.trace.domain_volume = self.problem.input_box.volume()
        report.search_trace = self.policy.trace
        return report

    def _signature(self, box: Box) -> tuple:
        """Coarse identity of an area for revisit accounting.

        Quantizes the box center to a tenth of each input-domain side so
        nearby re-discoveries of the same insignificant area share one
        revisit budget.
        """
        widths = np.maximum(self.problem.input_box.widths, 1e-12)
        cell = np.round(box.center / (widths / 10.0)).astype(int)
        return tuple(int(v) for v in cell)

    # ------------------------------------------------------------------
    def _recenter(
        self,
        seed: np.ndarray,
        threshold: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, SampleSet]:
        """Move the seed from the analyzer's vertex into the region interior.

        The analyzer returns an extreme point of the adversarial set (MILP
        optima are vertices), which sits exactly on the region boundary and
        makes boxes centered on it half good / half bad. Re-centering on
        the bad sample nearest the local bad-sample centroid keeps the
        anchor adversarial while moving it off the boundary.
        """
        bounds = self.problem.input_box
        cube = Box.around(
            seed,
            bounds.widths * self.config.expansion.initial_halfwidth_fraction * 2.0,
            bounds=bounds,
        )
        probe = self.policy.sample_region(
            self.problem,
            cube,
            self.config.tree_extra_samples // 2,
            threshold,
            rng,
            stage="recenter",
        )
        bad = probe.bad_points()
        if len(bad) == 0:
            return seed, probe
        centroid = bad.mean(axis=0)
        nearest = bad[np.argmin(np.linalg.norm(bad - centroid, axis=1))]
        return nearest, probe

    def _grow_and_refine(
        self,
        example: AdversarialExample,
        threshold: float,
        rng: np.random.Generator,
    ) -> Subspace:
        config = self.config
        problem = self.problem

        anchor, probe_samples = self._recenter(example.x, threshold, rng)
        expansion = expand_around(
            problem,
            anchor,
            threshold,
            rng,
            config=config.expansion,
        )
        rough_box = expansion.box
        # The analyzer's example is a vertex of the adversarial set; the
        # recentered growth can leave it just outside. The reported rough
        # box must contain the example it was seeded from (§5.2).
        rough_box = Box.from_arrays(
            np.minimum(rough_box.lo_array, example.x),
            np.maximum(rough_box.hi_array, example.x),
        )
        samples = expansion.samples.merged_with(probe_samples)
        if config.tree_extra_samples > 0:
            samples = samples.merged_with(
                self.policy.sample_region(
                    problem,
                    rough_box,
                    config.tree_extra_samples,
                    threshold,
                    rng,
                    stage="tree",
                )
            )

        # Fig. 5b: regression tree on all samples collected near the box —
        # rejected slabs carry exactly the boundary signal the tree needs.
        region, path = self._refine(samples, rough_box, anchor, threshold)

        significance = self._significance(region, threshold, rng)
        inside = samples.restricted_to(region)
        mean_inside = float(inside.gaps.mean()) if inside.size else 0.0
        return Subspace(
            region=region,
            seed=example,
            significance=significance,
            samples=samples,
            tree_path=path,
            mean_gap_inside=mean_inside,
        )

    def _feature_matrix(self) -> tuple[np.ndarray, list[str]]:
        """Linear feature rows the tree trains on besides the raw inputs.

        The all-ones "total" row is always included: the paper's own D0
        (Fig. 5c) carries exactly that predicate (sum of ball sizes), and
        it is the canonical interaction axis-aligned raw splits miss.
        """
        dim = self.problem.dim
        rows = [np.ones(dim)]
        names = ["total(x)"]
        for name, coeffs in self.problem.linear_features.items():
            coeffs = np.asarray(coeffs, dtype=float)
            if coeffs.shape != (dim,):
                raise SubspaceError(
                    f"linear feature {name!r} has shape {coeffs.shape}, "
                    f"expected ({dim},)"
                )
            if np.allclose(coeffs, 1.0):
                continue  # the total row is already present
            rows.append(coeffs)
            names.append(name)
        return np.array(rows), names

    def _refine(
        self,
        samples: SampleSet,
        rough_box: Box,
        seed: np.ndarray,
        threshold: float,
    ) -> tuple[Region, list[TreePredicate]]:
        config = self.config
        if samples.size < 2 * config.tree_min_samples_leaf:
            return Region(box=rough_box), []
        dim = self.problem.dim
        feature_rows, feature_names = self._feature_matrix()
        augmented = np.hstack(
            [samples.points, samples.points @ feature_rows.T]
        )
        tree = RegressionTree(
            max_depth=config.tree_max_depth,
            min_samples_leaf=config.tree_min_samples_leaf,
            feature_names=list(self.problem.input_names) + feature_names,
        )
        tree.fit(augmented, samples.gaps)
        seed_augmented = np.concatenate([seed, feature_rows @ seed])
        path = tree.path_to(seed_augmented)
        # If the seed's leaf does not predict an adversarial gap (the seed
        # can sit on a split boundary), anchor on the worst bad sample
        # inside the rough box instead — still "a bad sample's leaf".
        if tree.leaf_prediction(seed_augmented) <= threshold:
            in_box = samples.restricted_to(rough_box)
            bad = in_box.bad_points()
            if len(bad) > 0:
                bad_augmented = np.hstack([bad, bad @ feature_rows.T])
                predictions = tree.predict(bad_augmented)
                best = bad_augmented[int(np.argmax(predictions))]
                if tree.leaf_prediction(best) > tree.leaf_prediction(
                    seed_augmented
                ):
                    path = tree.path_to(best)
        halfspaces = []
        for predicate in path:
            if predicate.feature_index < dim:
                halfspaces.append(predicate.to_halfspace(dim))
            else:
                coeffs = feature_rows[predicate.feature_index - dim]
                sign = 1.0 if predicate.below else -1.0
                halfspaces.append(
                    Halfspace(
                        tuple(sign * c for c in coeffs),
                        sign * predicate.threshold,
                    )
                )
        return Region(box=rough_box, halfspaces=halfspaces), path

    def _significance(
        self,
        region: Region,
        threshold: float,
        rng: np.random.Generator,
    ) -> SignificanceResult:
        """Wilcoxon inside-vs-just-outside check, as one oracle batch.

        Both pools are *collected* first and evaluated together, so the
        engine sees a single ``2 * pairs`` batch it can shard across
        workers instead of two half-size ones (work-unit extraction).
        """
        config = self.config
        problem = self.problem
        pairs = config.significance_pairs
        inside_points = region.sample(rng, pairs)

        shell_widths = problem.input_box.widths * config.shell_fraction
        outer = Box.from_arrays(
            np.maximum(
                region.box.lo_array - shell_widths, problem.input_box.lo_array
            ),
            np.minimum(
                region.box.hi_array + shell_widths, problem.input_box.hi_array
            ),
        )
        try:
            outside_points = collect_outside(region, outer, pairs, rng)
        except SubspaceError:
            # Region fills its neighborhood: compare against the whole
            # input domain instead.
            outside_points = collect_outside(
                region, problem.input_box, pairs, rng
            )
        gaps = problem.evaluate_many(
            np.vstack([inside_points, outside_points])
        ).gaps
        return wilcoxon_signed_rank(
            gaps[:pairs], gaps[pairs:], alpha=config.alpha
        )
