"""The significance checker (§5.2).

"The significance checker ensures the subspaces we find are statistically
significant: the points in a subspace cause a higher performance gap
compared to those immediately outside it. We only report those subspaces
with a low p-value (less than 0.05) as adversarial. We use the Wilcoxon
signed-rank test, which allows for dependent samples."

Both SciPy's exact/approximate test and a from-scratch normal-approximation
implementation are provided; tests cross-check the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import SubspaceError

#: The paper's reporting cutoff.
ALPHA = 0.05


@dataclass
class SignificanceResult:
    """Outcome of the inside-vs-outside Wilcoxon signed-rank test."""

    p_value: float
    statistic: float
    inside_mean_gap: float
    outside_mean_gap: float
    pairs: int
    alpha: float = ALPHA

    @property
    def significant(self) -> bool:
        return self.p_value < self.alpha

    def describe(self) -> str:
        verdict = "significant" if self.significant else "NOT significant"
        return (
            f"Wilcoxon signed-rank: p={self.p_value:.3g} ({verdict} at "
            f"alpha={self.alpha}), inside mean gap {self.inside_mean_gap:.4g} "
            f"vs outside {self.outside_mean_gap:.4g} over {self.pairs} pairs"
        )


def wilcoxon_signed_rank(
    inside: np.ndarray,
    outside: np.ndarray,
    alpha: float = ALPHA,
    method: str = "scipy",
) -> SignificanceResult:
    """One-sided test that inside gaps exceed outside gaps.

    ``inside`` and ``outside`` are paired by index (the subspace generator
    draws equally sized dependent pools, one inside the candidate region
    and one immediately outside it).
    """
    inside = np.asarray(inside, dtype=float)
    outside = np.asarray(outside, dtype=float)
    if inside.shape != outside.shape:
        raise SubspaceError("paired pools must have equal sizes")
    if inside.size < 5:
        raise SubspaceError(
            f"need at least 5 pairs for the signed-rank test, got {inside.size}"
        )
    differences = inside - outside
    if np.allclose(differences, 0.0):
        # Identical pools: no evidence whatsoever.
        return SignificanceResult(
            p_value=1.0,
            statistic=0.0,
            inside_mean_gap=float(inside.mean()),
            outside_mean_gap=float(outside.mean()),
            pairs=int(inside.size),
            alpha=alpha,
        )
    if method == "scipy":
        stat, p_value = stats.wilcoxon(
            differences, alternative="greater", zero_method="wilcox"
        )
        statistic = float(stat)
        p = float(p_value)
    elif method == "builtin":
        statistic, p = _wilcoxon_normal_approx(differences)
    else:
        raise SubspaceError(f"unknown method {method!r}")
    return SignificanceResult(
        p_value=p,
        statistic=statistic,
        inside_mean_gap=float(inside.mean()),
        outside_mean_gap=float(outside.mean()),
        pairs=int(inside.size),
        alpha=alpha,
    )


def _wilcoxon_normal_approx(differences: np.ndarray) -> tuple[float, float]:
    """From-scratch one-sided signed-rank test (normal approximation).

    Follows the classic recipe: drop zeros, rank |d| with midranks for
    ties, sum the ranks of the positive differences, and compare against
    the null mean n(n+1)/4 with a tie-corrected variance.
    """
    d = differences[differences != 0.0]
    n = len(d)
    if n == 0:
        return 0.0, 1.0
    abs_d = np.abs(d)
    order = np.argsort(abs_d, kind="stable")
    ranks = np.empty(n, dtype=float)
    sorted_abs = abs_d[order]
    i = 0
    rank_position = 1
    while i < n:
        j = i
        while j + 1 < n and math.isclose(
            sorted_abs[j + 1], sorted_abs[i], rel_tol=0.0, abs_tol=1e-12
        ):
            j += 1
        midrank = (rank_position + (rank_position + (j - i))) / 2.0
        ranks[order[i : j + 1]] = midrank
        rank_position += j - i + 1
        i = j + 1

    w_plus = float(ranks[d > 0].sum())
    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction.
    _, counts = np.unique(sorted_abs, return_counts=True)
    variance -= float(np.sum(counts**3 - counts)) / 48.0
    if variance <= 0:
        return w_plus, 1.0
    # Continuity correction, one-sided "greater".
    z = (w_plus - mean - 0.5) / math.sqrt(variance)
    p = 1.0 - _standard_normal_cdf(z)
    return w_plus, float(min(max(p, 0.0), 1.0))


def _standard_normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
