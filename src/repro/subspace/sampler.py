"""Sampling utilities for the subspace generator.

Sample counts follow the Dvoretzky-Kiefer-Wolfowitz inequality as the paper
prescribes ("We pick the number of samples we use based on the DKW
inequality"): to estimate the bad-sample fraction within ``epsilon`` with
confidence ``1 - delta`` one needs ``n >= ln(2/delta) / (2 epsilon^2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analyzer.interface import AnalyzedProblem
from repro.exceptions import SubspaceError
from repro.subspace.region import Box, Region


def dkw_sample_size(epsilon: float, delta: float) -> int:
    """Samples needed so the empirical CDF is within eps with prob 1-delta."""
    if not (0 < epsilon < 1) or not (0 < delta < 1):
        raise SubspaceError(
            f"DKW needs epsilon, delta in (0, 1); got {epsilon}, {delta}"
        )
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon**2)))


@dataclass
class SampleSet:
    """Points, their gaps, and the bad/good split at a threshold."""

    points: np.ndarray  # (n, dim)
    gaps: np.ndarray  # (n,)
    threshold: float

    def __post_init__(self) -> None:
        self.points = np.atleast_2d(np.asarray(self.points, dtype=float))
        self.gaps = np.asarray(self.gaps, dtype=float)
        if len(self.points) != len(self.gaps):
            raise SubspaceError("points/gaps length mismatch")

    @property
    def size(self) -> int:
        return len(self.gaps)

    @property
    def bad_mask(self) -> np.ndarray:
        return self.gaps > self.threshold

    @property
    def bad_count(self) -> int:
        return int(self.bad_mask.sum())

    @property
    def bad_density(self) -> float:
        return 0.0 if self.size == 0 else self.bad_count / self.size

    def bad_points(self) -> np.ndarray:
        return self.points[self.bad_mask]

    def merged_with(self, other: "SampleSet") -> "SampleSet":
        if other.size == 0:
            return self
        if self.size == 0:
            return other
        return SampleSet(
            np.vstack([self.points, other.points]),
            np.concatenate([self.gaps, other.gaps]),
            self.threshold,
        )

    def restricted_to(self, region: Box | Region) -> "SampleSet":
        mask = region.contains_many(self.points)
        return SampleSet(self.points[mask], self.gaps[mask], self.threshold)


def sample_in_box(
    problem: AnalyzedProblem,
    box: Box,
    count: int,
    threshold: float,
    rng: np.random.Generator,
) -> SampleSet:
    """Uniformly sample a box and evaluate the gap oracle (batched)."""
    if count <= 0:
        return SampleSet(
            np.zeros((0, box.dim)), np.zeros(0), threshold
        )
    points = box.sample(rng, count)
    samples = problem.evaluate_many(points)
    return SampleSet(points, samples.gaps, threshold)


def sample_in_boxes(
    problem: AnalyzedProblem,
    boxes: list[Box],
    count: int,
    threshold: float,
    rng: np.random.Generator,
) -> list[SampleSet]:
    """Sample ``count`` points per box, evaluated as ONE oracle batch.

    The work-unit extraction behind the slice expander: points are drawn
    box by box (so the random stream matches a per-box loop) but the gap
    oracle sees a single ``len(boxes) * count`` batch, which the engine
    can cut into full-size work units and shard across workers instead
    of dribbling one small slab at a time.
    """
    if count <= 0 or not boxes:
        return [
            SampleSet(np.zeros((0, b.dim)), np.zeros(0), threshold)
            for b in boxes
        ]
    points = [box.sample(rng, count) for box in boxes]
    samples = problem.evaluate_many(np.vstack(points))
    return [
        SampleSet(
            points[i],
            samples.gaps[i * count : (i + 1) * count],
            threshold,
        )
        for i in range(len(boxes))
    ]


def collect_outside(
    inner: Box | Region,
    outer: Box,
    count: int,
    rng: np.random.Generator,
    max_tries: int = 60,
) -> np.ndarray:
    """Draw ``count`` points in ``outer`` but *outside* ``inner``.

    Pure point collection — no oracle evaluation — so callers can fold
    the result into a larger evaluation batch (work-unit extraction).
    """
    collected: list[np.ndarray] = []
    for _ in range(max_tries):
        batch = outer.sample(rng, count)
        mask = ~inner.contains_many(batch)
        collected.extend(batch[mask])
        if len(collected) >= count:
            break
    if not collected:
        raise SubspaceError(
            "could not sample outside the region; it may cover the domain"
        )
    return np.array(collected[:count])


def sample_in_shell(
    problem: AnalyzedProblem,
    inner: Box | Region,
    outer: Box,
    count: int,
    threshold: float,
    rng: np.random.Generator,
    max_tries: int = 60,
) -> SampleSet:
    """Sample points in ``outer`` but *outside* ``inner``.

    Used by the significance checker: the comparison pool lives
    immediately outside the candidate subspace.
    """
    points = collect_outside(inner, outer, count, rng, max_tries)
    samples = problem.evaluate_many(points)
    return SampleSet(points, samples.gaps, threshold)
