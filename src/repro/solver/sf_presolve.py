"""StandardForm-level presolve with exact solution recovery.

:mod:`repro.solver.presolve` simplifies the *model* expression graph
(alias merging, constant propagation, duplicate rows). This module works
one level lower, on the :class:`~repro.solver.standard_form.StandardForm`
an :class:`~repro.solver.template.LpTemplate` actually solves — where the
slack columns, bound rows, and the template's *parametric* rhs live.

Because a template re-solves the same structure for many right-hand
sides, every reduction must hold for the whole declared rhs range
``[b_lo, b_hi]``, not just one vector. The engine mirrors the
``PresolveEngine``/``Reduction`` structure (registered passes applied in
rounds until a fixpoint, each emitting typed :class:`Reduction` records):

* **bound tightening** — implied upper bounds ``u_j`` on ``y_j >= 0``
  from single rows' worst-case activity (iterated to a fixpoint; this
  also absorbs singleton rows, the LP-exact case of coefficient
  tightening);
* **coefficient tightening** — the LP-exact subcases only: singleton
  rows become bounds, and fixed columns have their coefficients moved to
  the rhs. Savelsbergh-style coefficient reduction is *not* applied: for
  a continuous LP it enlarges the polytope, so it can never be
  solution-exact (documented here rather than silently skipped);
* **redundant/empty-row elimination** — a row whose maximum activity
  under the bounds cannot exceed the *smallest* rhs it will ever be
  solved with is dropped together with its slack column;
* **fixed-column substitution** — columns whose implied upper bound is
  ``0`` (or forced by a binding row) are fixed and removed; their
  objective contribution moves into the constant term;
* **infeasible-by-bounds detection** — a row whose minimum activity
  exceeds its largest rhs proves the template infeasible for every rhs
  in the declared range.

Recovery is exact: removed columns re-enter the solution at their fixed
values (bitwise, no arithmetic), kept columns are scattered back in
place. Slack variables of dropped rows are reported as ``0.0`` — they
are provably nonbinding and no caller consumes them (``StandardForm.
recover`` reads structural columns only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.solver.standard_form import StandardForm

#: Comparison tolerance for redundancy / infeasibility proofs.
PRESOLVE_TOL = 1e-9

#: Safety cap on fixpoint rounds (each round must fire a reduction to
#: continue, so this is never reached on sane inputs).
MAX_ROUNDS = 32


@dataclass
class Reduction:
    """One applied reduction, for logs and tests."""

    kind: str  # "tighten_bound" | "tighten_coefficient" | "drop_row" | "fix_column"
    target: int  # row index for row reductions, column index otherwise
    value: float  # new bound / fixed value / rhs slack margin


@dataclass
class SfPresolveStats:
    bounds_tightened: int = 0
    coefficients_tightened: int = 0
    rows_dropped: int = 0
    columns_fixed: int = 0
    rounds: int = 0


@dataclass
class PresolvedForm:
    """A reduced StandardForm plus the exact recovery mapping."""

    original: StandardForm
    sf: StandardForm  # reduced form (identical layout invariants)
    keep_rows: np.ndarray  # original row indices kept, ascending
    keep_cols: np.ndarray  # original y-column indices kept, ascending
    removed_cols: np.ndarray  # original y-columns removed, ascending
    removed_vals: np.ndarray  # fixed value per removed column
    #: per-original-row [lo, hi] rhs range the reductions assumed
    b_lo: np.ndarray
    b_hi: np.ndarray
    infeasible: bool
    stats: SfPresolveStats
    reductions: list[Reduction] = field(default_factory=list)

    @property
    def identity(self) -> bool:
        """True when no reduction fired (reduced form == original copy)."""
        return (
            len(self.keep_rows) == self.original.a.shape[0]
            and len(self.keep_cols) == self.original.a.shape[1]
        )

    # -- per-solve data mapping --------------------------------------------
    def reduce_b(self, b: np.ndarray) -> np.ndarray:
        """Map original-space rhs (``(m,)`` or ``(K, m)``) to reduced rows.

        Raises :class:`ModelError` when a rhs leaves the declared range the
        reductions were proved against — redundancy proofs would be void.
        """
        b = np.asarray(b, dtype=float)
        squeeze = b.ndim == 1
        B = np.atleast_2d(b)
        lo_bad = B < self.b_lo - PRESOLVE_TOL
        hi_bad = B > self.b_hi + PRESOLVE_TOL
        if lo_bad.any() or hi_bad.any():
            row = int(np.argwhere(lo_bad | hi_bad)[0][1])
            raise ModelError(
                f"rhs for row {row} leaves the declared presolve range "
                f"[{self.b_lo[row]}, {self.b_hi[row]}]"
            )
        reduced = B[:, self.keep_rows]
        if self.removed_cols.size:
            shift = self.original.a[
                np.ix_(self.keep_rows, self.removed_cols)
            ] @ self.removed_vals
            if np.any(shift != 0.0):
                reduced = reduced - shift
        return reduced[0] if squeeze else reduced

    def reduce_c(self, c: np.ndarray) -> tuple[np.ndarray, float]:
        """Reduced objective row plus the constant from fixed columns."""
        c = np.asarray(c, dtype=float)
        delta = (
            float(c[self.removed_cols] @ self.removed_vals)
            if self.removed_cols.size
            else 0.0
        )
        return c[self.keep_cols], delta

    def expand_y(self, y: np.ndarray) -> np.ndarray:
        """Scatter reduced solutions back to original y-space (exact)."""
        y = np.asarray(y, dtype=float)
        squeeze = y.ndim == 1
        Y = np.atleast_2d(y)
        out = np.zeros((Y.shape[0], self.original.a.shape[1]))
        out[:, self.keep_cols] = Y
        if self.removed_cols.size:
            out[:, self.removed_cols] = self.removed_vals
        return out[0] if squeeze else out


def _implied_bounds(a, b_hi, num_slack, tol, row_mask=None, u0=None):
    """Fixpoint upper bounds on ``y >= 0`` from worst-case row activity.

    Only inequality rows (the first ``num_slack``) prove bounds: an
    equality row pins activity but its slack-free structure is not
    produced by the template layer this pass serves. Each inequality row
    ``sum_j a_rj y_j + s_r = b_r`` with ``s_r >= 0`` gives, for every
    ``a_rj > 0``:  ``y_j <= (b_hi_r - minact(others)) / a_rj``.

    ``row_mask`` restricts which rows may certify a bound (used by the
    redundancy pass, which must not let a row prove itself redundant);
    ``u0`` seeds already-established bounds (fixed columns at ``0``).
    """
    m, n = a.shape
    u = np.full(n, np.inf) if u0 is None else u0.copy()
    tightened = 0
    for _ in range(MAX_ROUNDS):
        changed = False
        for r in range(num_slack):
            if row_mask is not None and not row_mask[r]:
                continue
            row = a[r]
            pos = row > tol
            neg = row < -tol
            if not pos.any():
                continue
            # minimum activity of each term: 0 for positive coefficients,
            # a_rj * u_j (possibly -inf) for negative ones
            neg_terms = row[neg] * u[neg]
            minact = float(neg_terms.sum()) if neg.any() else 0.0
            if not np.isfinite(minact):
                continue
            for j in np.where(pos)[0]:
                bound = (b_hi[r] - minact) / row[j]
                if bound < u[j] - tol:
                    u[j] = max(bound, 0.0)
                    tightened += 1
                    changed = True
        if not changed:
            break
    return u, tightened


def presolve_standard_form(
    sf: StandardForm,
    b_lo: np.ndarray | None = None,
    b_hi: np.ndarray | None = None,
    tol: float = PRESOLVE_TOL,
) -> PresolvedForm:
    """Reduce ``sf`` for all rhs vectors in ``[b_lo, b_hi]`` elementwise.

    With no range given, the build-time ``sf.b`` is treated as fixed.
    Only structural columns are ever fixed and only inequality rows are
    ever dropped, so the reduced form keeps the slack-diagonal layout the
    simplex shortcut and the slab engine rely on.
    """
    a = sf.a
    m, n = a.shape
    b_lo = sf.b.copy() if b_lo is None else np.asarray(b_lo, dtype=float).copy()
    b_hi = sf.b.copy() if b_hi is None else np.asarray(b_hi, dtype=float).copy()
    if b_lo.shape != (m,) or b_hi.shape != (m,):
        raise ModelError("presolve rhs range must match the row count")
    if np.any(b_lo > b_hi):
        raise ModelError("presolve rhs range has lo > hi")

    stats = SfPresolveStats()
    reductions: list[Reduction] = []
    ns = sf.num_structural

    u, stats.bounds_tightened = _implied_bounds(a, b_hi, sf.num_slack, tol)
    for j in np.where(np.isfinite(u))[0]:
        reductions.append(Reduction("tighten_bound", int(j), float(u[j])))

    # -- infeasibility: some row can never be satisfied ---------------------
    infeasible = False
    for r in range(m):
        row = a[r]
        neg = row < -tol
        if neg.any() and not np.all(np.isfinite(u[neg])):
            continue
        minact = float((row[neg] * u[neg]).sum()) if neg.any() else 0.0
        if minact > b_hi[r] + 1e-7:
            infeasible = True
        if r >= sf.num_slack:
            # equality rows must also *reach* the rhs from below
            pos = row > tol
            if pos.any() and not np.all(np.isfinite(u[pos])):
                continue
            maxact = float((row[pos] * u[pos]).sum()) if pos.any() else 0.0
            if maxact < b_lo[r] - 1e-7:
                infeasible = True

    # -- fixed columns: implied upper bound 0 pins y_j at 0 ----------------
    # (structural columns only; a slack pinned at 0 would mean its row is
    # always binding, which we leave to the solver)
    fixed = np.zeros(n, dtype=bool)
    fixed[:ns] = u[:ns] <= tol
    for j in np.where(fixed)[0]:
        stats.columns_fixed += 1
        stats.coefficients_tightened += int(
            np.count_nonzero(a[:, j])
        )  # coefficients moved to the rhs exactly (y_j = 0)
        reductions.append(Reduction("fix_column", int(j), 0.0))

    # -- redundant rows: max activity can't reach the smallest rhs --------
    # A drop proof may only lean on bounds certified by rows that survive
    # into the reduced system: a row must not prove itself redundant via a
    # bound it alone enforces (nor via another row dropped the same way).
    # Fixed columns are exempt — their substitution is carried explicitly,
    # so their zero holds in the reduced problem by construction. Rows are
    # examined greedily; each candidate recomputes the bound fixpoint from
    # the currently-kept rows with itself excluded.
    drop = np.zeros(m, dtype=bool)
    if not infeasible:
        u_seed = np.full(n, np.inf)
        u_seed[fixed] = 0.0
        for r in range(sf.num_slack):
            if b_lo[r] < -tol:
                continue
            row = a[r, :ns]  # structural part; own slack contributes +s >= 0
            live = ~fixed[:ns]
            pos = (row > tol) & live
            if pos.any():
                row_mask = ~drop
                row_mask[r] = False
                u_r, _ = _implied_bounds(
                    a, b_hi, sf.num_slack, tol, row_mask=row_mask, u0=u_seed
                )
                if not np.all(np.isfinite(u_r[:ns][pos])):
                    continue
                maxact = float((row[pos] * u_r[:ns][pos]).sum())
            else:
                maxact = 0.0
            if maxact <= b_lo[r] + 0.0:
                drop[r] = True
                stats.rows_dropped += 1
                reductions.append(
                    Reduction("drop_row", int(r), float(b_lo[r] - maxact))
                )

    keep_rows = np.where(~drop)[0]
    # a dropped inequality row takes its slack column with it
    col_drop = fixed.copy()
    slack_cols = ns + np.where(drop[: sf.num_slack])[0]
    col_drop[slack_cols] = True
    keep_cols = np.where(~col_drop)[0]
    removed_cols = np.where(col_drop)[0]
    removed_vals = np.zeros(removed_cols.size)

    # -- assemble the reduced form -----------------------------------------
    a_red = a[np.ix_(keep_rows, keep_cols)]
    b_red = sf.b[keep_rows].copy()
    c_red = sf.c[keep_cols].copy()
    c0_delta = float(sf.c[removed_cols] @ removed_vals)
    kept_slack = int(np.count_nonzero(keep_rows < sf.num_slack))
    kept_structural = int(np.count_nonzero(keep_cols < ns))
    reduced = StandardForm(
        a=a_red,
        b=b_red,
        c=c_red,
        c0=sf.c0 + c0_delta,
        var_maps=[],  # recovery goes through PresolvedForm.expand_y
        num_structural=kept_structural,
        row_shifts=None,
        num_slack=kept_slack,
    )
    stats.rounds = 1
    return PresolvedForm(
        original=sf,
        sf=reduced,
        keep_rows=keep_rows,
        keep_cols=keep_cols,
        removed_cols=removed_cols,
        removed_vals=removed_vals,
        b_lo=b_lo,
        b_hi=b_hi,
        infeasible=infeasible,
        stats=stats,
        reductions=reductions,
    )
