"""Linear expressions over decision variables.

This module provides the small algebraic layer every other subsystem builds
on: :class:`Variable`, :class:`LinExpr` (an affine expression), and
:class:`Constraint` (an expression compared against another expression).

Expressions are immutable from the caller's point of view: arithmetic
operators always return new objects, so expressions can be shared freely
between constraints.

Example
-------
>>> from repro.solver import Model
>>> m = Model("demo", sense="max")
>>> x = m.add_var("x", ub=4.0)
>>> y = m.add_var("y", ub=4.0)
>>> con = m.add_constraint(2 * x + y <= 6, name="cap")
>>> m.set_objective(x + y)
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Mapping, Union

from repro.exceptions import ModelError

Number = Union[int, float]

#: Values closer together than this are treated as equal by expression code.
EPS = 1e-9


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    BINARY = "binary"
    INTEGER = "integer"

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self is not VarType.CONTINUOUS


class Relation(enum.Enum):
    """Comparison relation of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="

    def flipped(self) -> "Relation":
        """Relation obtained by swapping the two sides of the comparison."""
        if self is Relation.LE:
            return Relation.GE
        if self is Relation.GE:
            return Relation.LE
        return Relation.EQ


class Variable:
    """A decision variable owned by a :class:`~repro.solver.model.Model`.

    Variables are created through ``Model.add_var`` and are identified by
    their ``index`` within the owning model. Arithmetic on a variable
    produces :class:`LinExpr` objects.
    """

    __slots__ = ("name", "index", "lb", "ub", "vartype", "_model_id")

    def __init__(
        self,
        name: str,
        index: int,
        lb: float,
        ub: float,
        vartype: VarType,
        model_id: int,
    ) -> None:
        if lb > ub + EPS:
            raise ModelError(
                f"variable {name!r} has lb={lb} > ub={ub}"
            )
        self.name = name
        self.index = index
        self.lb = float(lb)
        self.ub = float(ub)
        self.vartype = vartype
        self._model_id = model_id

    # -- identity ---------------------------------------------------------
    def __hash__(self) -> int:
        return hash((self._model_id, self.index))

    def __eq__(self, other: object):  # type: ignore[override]
        # ``==`` against expressions/numbers builds a Constraint, mirroring
        # the behaviour of mainstream modeling APIs. Identity comparison is
        # available via ``is`` or ``same_var``.
        if isinstance(other, (Variable, LinExpr, int, float)):
            return LinExpr.from_term(self) == other
        return NotImplemented

    def same_var(self, other: "Variable") -> bool:
        """True when ``other`` denotes this exact model variable."""
        return (
            isinstance(other, Variable)
            and self._model_id == other._model_id
            and self.index == other.index
        )

    # -- arithmetic (delegates to LinExpr) --------------------------------
    def __add__(self, other):
        return LinExpr.from_term(self) + other

    def __radd__(self, other):
        return LinExpr.from_term(self) + other

    def __sub__(self, other):
        return LinExpr.from_term(self) - other

    def __rsub__(self, other):
        return (-LinExpr.from_term(self)) + other

    def __mul__(self, coeff):
        return LinExpr.from_term(self, coeff)

    def __rmul__(self, coeff):
        return LinExpr.from_term(self, coeff)

    def __truediv__(self, denom):
        return LinExpr.from_term(self, 1.0 / float(denom))

    def __neg__(self):
        return LinExpr.from_term(self, -1.0)

    def __pos__(self):
        return LinExpr.from_term(self)

    # -- comparisons (build constraints) -----------------------------------
    def __le__(self, other):
        return LinExpr.from_term(self) <= other

    def __ge__(self, other):
        return LinExpr.from_term(self) >= other

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    The representation is a mapping from :class:`Variable` to coefficient
    plus a float constant. Terms with coefficient ~0 are dropped eagerly so
    that two expressions that are mathematically equal compare structurally
    equal as well.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Mapping[Variable, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        clean: dict[Variable, float] = {}
        if terms:
            for var, coeff in terms.items():
                coeff = float(coeff)
                if not math.isfinite(coeff):
                    raise ModelError(
                        f"non-finite coefficient {coeff} for {var.name!r}"
                    )
                if abs(coeff) > EPS:
                    clean[var] = coeff
        self.terms = clean
        self.constant = float(constant)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_term(var: Variable, coeff: Number = 1.0) -> "LinExpr":
        """Expression consisting of a single scaled variable."""
        return LinExpr({var: float(coeff)})

    @staticmethod
    def constant_expr(value: Number) -> "LinExpr":
        """Expression with no variables."""
        return LinExpr({}, float(value))

    @staticmethod
    def coerce(value: "LinExpr | Variable | Number") -> "LinExpr":
        """Convert a variable or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return LinExpr.from_term(value)
        if isinstance(value, (int, float)):
            return LinExpr.constant_expr(value)
        raise ModelError(f"cannot interpret {value!r} as a linear expression")

    # -- queries -----------------------------------------------------------
    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` (0.0 when absent)."""
        return self.terms.get(var, 0.0)

    @property
    def is_constant(self) -> bool:
        """Whether the expression involves no variables."""
        return not self.terms

    def variables(self) -> list[Variable]:
        """Variables appearing with a non-zero coefficient."""
        return list(self.terms)

    def evaluate(self, values: Mapping[Variable, float]) -> float:
        """Value of the expression under a variable assignment.

        Raises ``KeyError`` if a participating variable is missing from
        ``values``.
        """
        total = self.constant
        for var, coeff in self.terms.items():
            total += coeff * values[var]
        return total

    # -- arithmetic ----------------------------------------------------------
    def _combined(self, other, sign: float) -> "LinExpr":
        other = LinExpr.coerce(other)
        terms = dict(self.terms)
        for var, coeff in other.terms.items():
            terms[var] = terms.get(var, 0.0) + sign * coeff
        return LinExpr(terms, self.constant + sign * other.constant)

    def __add__(self, other):
        return self._combined(other, 1.0)

    def __radd__(self, other):
        return self._combined(other, 1.0)

    def __sub__(self, other):
        return self._combined(other, -1.0)

    def __rsub__(self, other):
        return (-self)._combined(other, 1.0)

    def __mul__(self, factor):
        if not isinstance(factor, (int, float)):
            raise ModelError("expressions can only be scaled by numbers")
        factor = float(factor)
        return LinExpr(
            {var: coeff * factor for var, coeff in self.terms.items()},
            self.constant * factor,
        )

    def __rmul__(self, factor):
        return self.__mul__(factor)

    def __truediv__(self, denom):
        return self.__mul__(1.0 / float(denom))

    def __neg__(self):
        return self.__mul__(-1.0)

    def __pos__(self):
        return self

    # -- comparisons ---------------------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.coerce(other), Relation.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.coerce(other), Relation.GE)

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint(self - LinExpr.coerce(other), Relation.EQ)
        return NotImplemented

    def __hash__(self) -> int:  # expressions are used in sets occasionally
        return hash(
            (frozenset((v.index, c) for v, c in self.terms.items()), self.constant)
        )

    def __repr__(self) -> str:
        parts = []
        for var, coeff in sorted(self.terms.items(), key=lambda t: t[0].index):
            parts.append(f"{coeff:+g}*{var.name}")
        if abs(self.constant) > EPS or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class Constraint:
    """A linear constraint ``expr (<= | >= | ==) 0``.

    Constraints are normalized on construction so that the right-hand side
    is folded into the expression's constant. ``lhs rel rhs`` is stored as
    ``(lhs - rhs) rel 0``.
    """

    __slots__ = ("expr", "relation", "name")

    def __init__(self, expr: LinExpr, relation: Relation, name: str = "") -> None:
        self.expr = expr
        self.relation = relation
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side when written as ``terms rel rhs``."""
        return -self.expr.constant

    def violation(self, values: Mapping[Variable, float]) -> float:
        """Non-negative amount by which the assignment violates the constraint."""
        value = self.expr.evaluate(values)
        if self.relation is Relation.LE:
            return max(0.0, value)
        if self.relation is Relation.GE:
            return max(0.0, -value)
        return abs(value)

    def is_satisfied(
        self, values: Mapping[Variable, float], tol: float = 1e-7
    ) -> bool:
        """Whether the assignment satisfies the constraint within ``tol``."""
        return self.violation(values) <= tol

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        terms = LinExpr(self.expr.terms)
        return f"{label}{terms!r} {self.relation.value} {self.rhs:g}"


def quicksum(exprs: Iterable[LinExpr | Variable | Number]) -> LinExpr:
    """Sum an iterable of expressions efficiently.

    Unlike ``sum``, this builds a single term dictionary instead of a chain
    of intermediate expressions, which matters when summing thousands of
    flow variables in compiled models.
    """
    terms: dict[Variable, float] = {}
    constant = 0.0
    for item in exprs:
        expr = LinExpr.coerce(item)
        constant += expr.constant
        for var, coeff in expr.terms.items():
            terms[var] = terms.get(var, 0.0) + coeff
    return LinExpr(terms, constant)
