"""Conversion of a model to LP standard form.

Standard form here means::

    minimize    c @ y
    subject to  A @ y == b,   y >= 0

which is what the tableau simplex consumes. The conversion:

* shifts variables with a finite lower bound (``x = y + lb``),
* splits free variables into a difference of two non-negatives,
* turns finite upper bounds into explicit rows,
* adds one slack variable per inequality row.

The returned :class:`StandardForm` remembers enough to map a solution in
``y``-space back onto the original model variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.solver.model import INF, MatrixForm, Model


@dataclass
class _VarMap:
    """How one original variable is represented in standard form.

    ``positive`` is the y-index of the shifted variable (or the positive part
    of a free split); ``negative`` is the y-index of the negative part for
    free variables, else ``None``; ``shift`` is the lower bound that was
    subtracted.
    """

    positive: int
    negative: int | None
    shift: float


@dataclass
class StandardForm:
    """Matrices of the standard-form LP plus the recovery mapping.

    The trailing metadata fields describe how rows of ``a`` relate back to
    the :class:`MatrixForm` they came from; :class:`repro.solver.template.
    LpTemplate` uses them to re-target ``b`` and ``c`` without redoing the
    conversion.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    c0: float
    var_maps: list[_VarMap]
    num_structural: int  # y-columns that correspond to original variables
    #: per-row rhs shift introduced by lower-bound substitution; row r of the
    #: matrix-form data maps to ``b[r] = rhs_r - row_shifts[r]``
    row_shifts: np.ndarray | None = None
    #: total inequality rows (model rows + bound rows), i.e. the slack count
    num_slack: int = 0

    def recover(self, y: np.ndarray) -> np.ndarray:
        """Map a standard-form solution back to original variable values."""
        values = np.empty(len(self.var_maps))
        for i, vm in enumerate(self.var_maps):
            val = y[vm.positive]
            if vm.negative is not None:
                val -= y[vm.negative]
            values[i] = val + vm.shift
        return values


def to_standard_form(model: Model) -> StandardForm:
    """Convert ``model`` (ignoring integrality) to standard form."""
    return from_matrix_form(model.to_matrix_form())


def from_matrix_form(mf: MatrixForm, normalize: bool = True) -> StandardForm:
    """Standard-form conversion working directly on matrix data.

    Branch-and-bound uses this entry point so it can tighten bounds without
    rebuilding ``Model`` objects. ``normalize=False`` skips the ``b >= 0``
    row flipping (templates want stable row signs so they can overwrite the
    rhs later; the solver re-normalizes a copy when it cold-starts).
    """
    n = len(mf.variables)
    var_maps: list[_VarMap] = []
    col = 0
    # First pass: decide the column layout for original variables.
    for i in range(n):
        lb = mf.lb[i]
        if lb == -INF:
            var_maps.append(_VarMap(positive=col, negative=col + 1, shift=0.0))
            col += 2
        else:
            var_maps.append(_VarMap(positive=col, negative=None, shift=lb))
            col += 1
    num_structural = col

    def expand_row(row: np.ndarray) -> tuple[np.ndarray, float]:
        """Rewrite a row over x into a row over y, returning the rhs shift."""
        out = np.zeros(num_structural)
        shift = 0.0
        for i in range(n):
            coeff = row[i]
            if coeff == 0.0:
                continue
            vm = var_maps[i]
            out[vm.positive] += coeff
            if vm.negative is not None:
                out[vm.negative] -= coeff
            shift += coeff * vm.shift
        return out, shift

    ub_rows: list[np.ndarray] = []
    ub_rhs: list[float] = []
    ub_shifts: list[float] = []
    for r in range(mf.a_ub.shape[0]):
        row, shift = expand_row(mf.a_ub[r])
        ub_rows.append(row)
        ub_rhs.append(mf.b_ub[r] - shift)
        ub_shifts.append(shift)
    # Finite upper bounds become inequality rows over y.
    for i in range(n):
        ub = mf.ub[i]
        if ub == INF:
            continue
        lb = mf.lb[i]
        if lb == -INF:
            vm = var_maps[i]
            row = np.zeros(num_structural)
            row[vm.positive] = 1.0
            row[vm.negative] = -1.0  # type: ignore[index]
            ub_rows.append(row)
            ub_rhs.append(ub)
            ub_shifts.append(0.0)
        else:
            if ub < lb:
                raise ModelError(
                    f"variable {mf.variables[i].name!r} has empty domain"
                )
            vm = var_maps[i]
            row = np.zeros(num_structural)
            row[vm.positive] = 1.0
            ub_rows.append(row)
            ub_rhs.append(ub - lb)
            ub_shifts.append(lb)

    eq_rows: list[np.ndarray] = []
    eq_rhs: list[float] = []
    eq_shifts: list[float] = []
    for r in range(mf.a_eq.shape[0]):
        row, shift = expand_row(mf.a_eq[r])
        eq_rows.append(row)
        eq_rhs.append(mf.b_eq[r] - shift)
        eq_shifts.append(shift)

    num_slack = len(ub_rows)
    total = num_structural + num_slack
    m = num_slack + len(eq_rows)
    a = np.zeros((m, total))
    b = np.zeros(m)
    for r, (row, rhs) in enumerate(zip(ub_rows, ub_rhs)):
        a[r, :num_structural] = row
        a[r, num_structural + r] = 1.0
        b[r] = rhs
    for r, (row, rhs) in enumerate(zip(eq_rows, eq_rhs)):
        a[num_slack + r, :num_structural] = row
        b[num_slack + r] = rhs

    c = np.zeros(total)
    c0 = mf.c0
    for i in range(n):
        coeff = mf.c[i]
        if coeff == 0.0:
            continue
        vm = var_maps[i]
        c[vm.positive] += coeff
        if vm.negative is not None:
            c[vm.negative] -= coeff
        c0 += coeff * vm.shift

    if normalize:
        # Normalize to b >= 0 so phase 1 can start from the artificial basis.
        neg = b < 0
        a[neg] *= -1.0
        b[neg] *= -1.0

    return StandardForm(
        a=a,
        b=b,
        c=c,
        c0=c0,
        var_maps=var_maps,
        num_structural=num_structural,
        row_shifts=np.array(ub_shifts + eq_shifts),
        num_slack=num_slack,
    )
