"""Presolve: redundancy elimination on models.

This is the machinery behind the paper's §5.1 claim that the compiled DSL
"allows us to find redundant constraints and variables", shrinking the model
MetaOpt has to solve (4.3x on the DP example). The node behaviors of the DSL
generate exactly the patterns presolve exploits:

* ALL-EQUAL nodes emit ``x == y`` rows           -> affine alias merging
* MULTIPLY nodes emit ``y == C * x`` rows        -> affine alias merging
* constant-rate source edges emit ``x == d``     -> constant propagation
* COPY/SPLIT chains create duplicate rows        -> row deduplication

Unlike a solver's own presolve (the paper's footnote about Gurobi), the
reduction here keeps a full recovery map, so solutions are reported in terms
of the *original* variables — exactly why XPlain wants its own rewrite stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ModelError
from repro.solver.expr import Constraint, LinExpr, Relation, Variable, VarType
from repro.solver.model import INF, Model
from repro.solver.solution import Solution, SolveStats, SolveStatus

#: Tolerance for deciding that a bound pair / fixed value is contradictory.
FEAS_TOL = 1e-7


@dataclass
class PresolveStats:
    """Counts of what presolve removed."""

    fixed_variables: int = 0
    aliased_variables: int = 0
    dropped_constraints: int = 0
    deduplicated_constraints: int = 0

    @property
    def removed_variables(self) -> int:
        return self.fixed_variables + self.aliased_variables


@dataclass
class PresolveResult:
    """Outcome of presolving a model.

    ``reduced`` is a fresh, smaller model; ``recover`` maps one of its
    solutions back into original-variable space. When ``infeasible`` is set
    the reduction proved the model has no solution and ``reduced`` is None.
    """

    original: Model
    reduced: Model | None
    stats: PresolveStats
    infeasible: bool = False
    _resolution: dict[Variable, tuple[Variable | None, float, float]] = field(
        default_factory=dict, repr=False
    )
    _new_vars: dict[Variable, Variable] = field(default_factory=dict, repr=False)

    def recover(self, solution: Solution) -> Solution:
        """Translate a solution of the reduced model to the original model."""
        if not solution.is_optimal and solution.status is not SolveStatus.NODE_LIMIT:
            return solution
        values: dict[Variable, float] = {}
        for var in self.original.variables:
            root, alpha, beta = self._resolution[var]
            if root is None:
                values[var] = beta
            else:
                values[var] = alpha * solution.values[self._new_vars[root]] + beta
        return Solution(
            status=solution.status,
            objective=solution.objective,
            values=values,
            stats=solution.stats,
        )


class _AffineUnionFind:
    """Union-find where each variable is an affine function of its root.

    ``resolve(v)`` returns ``(root, alpha, beta)`` with ``v = alpha*root +
    beta``; a fixed variable resolves to ``(None, 0, value)``.
    """

    def __init__(self, variables) -> None:
        self.parent: dict[Variable, Variable] = {v: v for v in variables}
        self.alpha: dict[Variable, float] = {v: 1.0 for v in variables}
        self.beta: dict[Variable, float] = {v: 0.0 for v in variables}
        self.fixed: dict[Variable, float] = {}  # root -> value
        self.lb: dict[Variable, float] = {v: v.lb for v in variables}
        self.ub: dict[Variable, float] = {v: v.ub for v in variables}
        self.infeasible = False

    def find(self, v: Variable) -> tuple[Variable, float, float]:
        """Root and affine coefficients of ``v`` (with path compression)."""
        if self.parent[v] is v:
            return v, self.alpha[v], self.beta[v]
        root, a_p, b_p = self.find(self.parent[v])
        # v = alpha * parent + beta, parent = a_p * root + b_p
        a = self.alpha[v] * a_p
        b = self.alpha[v] * b_p + self.beta[v]
        self.parent[v] = root
        self.alpha[v] = a
        self.beta[v] = b
        return root, a, b

    def resolve(self, v: Variable) -> tuple[Variable | None, float, float]:
        root, a, b = self.find(v)
        if root in self.fixed:
            return None, 0.0, a * self.fixed[root] + b
        return root, a, b

    def fix(self, v: Variable, value: float) -> None:
        """Record ``v == value``; propagates through the alias chain."""
        root, a, b = self.find(v)
        if abs(a) < 1e-12:
            if abs(b - value) > FEAS_TOL:
                self.infeasible = True
            return
        root_value = (value - b) / a
        if root in self.fixed:
            if abs(self.fixed[root] - root_value) > FEAS_TOL:
                self.infeasible = True
            return
        if (
            root_value < self.lb[root] - FEAS_TOL
            or root_value > self.ub[root] + FEAS_TOL
        ):
            self.infeasible = True
            return
        if root.vartype.is_integral and abs(root_value - round(root_value)) > FEAS_TOL:
            self.infeasible = True
            return
        self.fixed[root] = root_value

    def _tighten(self, root: Variable, lo: float, hi: float) -> None:
        self.lb[root] = max(self.lb[root], lo)
        self.ub[root] = min(self.ub[root], hi)
        if self.lb[root] > self.ub[root] + FEAS_TOL:
            self.infeasible = True

    def alias(self, y: Variable, a: float, x: Variable, c: float) -> bool:
        """Record ``a*x + coeff_y*y == c`` solved as ``y = (c - a*x)/coeff_y``.

        The caller passes the already-divided form: ``y = a*x + c`` here
        (``a`` and ``c`` are the slope and intercept). Returns True when the
        union succeeded (False when it would merge a variable with itself in
        an inconsistent or self-referential way that should instead fix it).
        """
        root_y, ay, by = self.find(y)
        root_x, ax, bx = self.find(x)
        if root_x in self.fixed:
            self.fix(y, a * self.fixed[root_x] + c)
            return True
        if root_y in self.fixed:
            # a*x + c == fixed value  ->  x is fixed too.
            if abs(a) < 1e-12:
                if abs(c - self.fixed[root_y]) > FEAS_TOL:
                    self.infeasible = True
                return True
            self.fix(x, (self.fixed[root_y] - c) / a)
            return True
        if root_y is root_x:
            # ay*r + by == a*(ax*r + bx) + c  ->  (ay - a*ax) r == a*bx + c - by
            coeff = ay - a * ax
            rhs = a * bx + c - by
            if abs(coeff) < 1e-12:
                if abs(rhs) > FEAS_TOL:
                    self.infeasible = True
                return True  # redundant
            self.fixed[root_x] = rhs / coeff
            return True
        # y = alpha*root_y + beta  and we want  y = a*x + c
        #   -> root_y = (a*(ax*root_x + bx) + c - by) / ay
        slope = a * ax / ay
        intercept = (a * bx + c - by) / ay
        # Translate root_y's bounds onto root_x before re-rooting.
        lo_y, hi_y = self.lb[root_y], self.ub[root_y]
        if abs(slope) > 1e-12 and (lo_y != -INF or hi_y != INF):
            lo = (lo_y - intercept) / slope
            hi = (hi_y - intercept) / slope
            if slope < 0:
                lo, hi = hi, lo
            self._tighten(root_x, lo, hi)
        self.parent[root_y] = root_x
        self.alpha[root_y] = slope
        self.beta[root_y] = intercept
        return True


def presolve(model: Model, max_rounds: int = 16) -> PresolveResult:
    """Shrink ``model`` by alias merging, constant propagation and dedup."""
    stats = PresolveStats()
    uf = _AffineUnionFind(model.variables)

    # Rewritten constraints as (terms over roots, constant, relation, name).
    live: list[tuple[dict[Variable, float], float, Relation, str]] = [
        (dict(con.expr.terms), con.expr.constant, con.relation, con.name)
        for con in model.constraints
    ]

    for _ in range(max_rounds):
        progress = False
        remaining: list[tuple[dict[Variable, float], float, Relation, str]] = []
        for terms, constant, relation, name in live:
            new_terms: dict[Variable, float] = {}
            new_constant = constant
            for var, coeff in terms.items():
                root, a, b = uf.resolve(var)
                new_constant += coeff * b
                if root is not None and abs(coeff * a) > 1e-12:
                    new_terms[root] = new_terms.get(root, 0.0) + coeff * a
            new_terms = {v: c for v, c in new_terms.items() if abs(c) > 1e-12}

            if not new_terms:
                # Constant row: either trivially true or infeasible.
                value = new_constant
                violated = (
                    (relation is Relation.LE and value > FEAS_TOL)
                    or (relation is Relation.GE and value < -FEAS_TOL)
                    or (relation is Relation.EQ and abs(value) > FEAS_TOL)
                )
                if violated:
                    uf.infeasible = True
                stats.dropped_constraints += 1
                progress = True
                continue

            if relation is Relation.EQ and len(new_terms) == 1:
                (var, coeff), = new_terms.items()
                uf.fix(var, -new_constant / coeff)
                stats.fixed_variables += 1
                stats.dropped_constraints += 1
                progress = True
                continue

            if relation is Relation.EQ and len(new_terms) == 2:
                (v1, c1), (v2, c2) = new_terms.items()
                # Prefer eliminating a continuous variable.
                if v1.vartype is not VarType.CONTINUOUS:
                    v1, c1, v2, c2 = v2, c2, v1, c1
                if v1.vartype is VarType.CONTINUOUS:
                    # c1*v1 + c2*v2 + constant == 0  ->  v1 = -(c2/c1) v2 - constant/c1
                    uf.alias(v1, -c2 / c1, v2, -new_constant / c1)
                    stats.aliased_variables += 1
                    stats.dropped_constraints += 1
                    progress = True
                    continue

            remaining.append((new_terms, new_constant, relation, name))
        live = remaining
        if uf.infeasible:
            return PresolveResult(model, None, stats, infeasible=True)
        if not progress:
            break

    # -- deduplicate structurally identical rows ---------------------------
    seen: dict[tuple, int] = {}
    deduped: list[tuple[dict[Variable, float], float, Relation, str]] = []
    for terms, constant, relation, name in live:
        key_terms = tuple(
            sorted(((v.index, round(c, 12)) for v, c in terms.items()))
        )
        rel_key = relation if relation is not Relation.GE else Relation.LE
        if relation is Relation.GE:
            key_terms = tuple((i, -c) for i, c in key_terms)
            constant_key = -constant
        else:
            constant_key = constant
        key = (key_terms, rel_key)
        if key in seen:
            idx = seen[key]
            old_terms, old_const, old_rel, old_name = deduped[idx]
            if rel_key is Relation.LE:
                # Keep the tighter of the two rows (larger constant means
                # tighter since rows are `terms + constant <= 0`).
                keep_new = constant_key > (
                    -old_const if old_rel is Relation.GE else old_const
                )
                if keep_new:
                    deduped[idx] = (terms, constant, relation, name)
                stats.deduplicated_constraints += 1
                continue
            if abs(constant_key - old_const) <= FEAS_TOL:
                stats.deduplicated_constraints += 1
                continue
            # Equal rows with different rhs: infeasible.
            return PresolveResult(model, None, stats, infeasible=True)
        seen[key] = len(deduped)
        deduped.append((terms, constant, relation, name))
    live = deduped

    # -- build the reduced model --------------------------------------------
    reduced = Model(f"{model.name}_presolved", model.sense)
    new_vars: dict[Variable, Variable] = {}
    used_roots: set[Variable] = set()
    for var in model.variables:
        root, _, _ = uf.resolve(var)
        if root is not None:
            used_roots.add(root)
    for var in model.variables:
        if var in used_roots and var not in new_vars:
            new_vars[var] = reduced.add_var(
                var.name, uf.lb[var], uf.ub[var], var.vartype
            )

    for terms, constant, relation, name in live:
        expr = LinExpr({new_vars[v]: c for v, c in terms.items()}, constant)
        reduced.add_constraint(Constraint(expr, relation, name))

    obj_terms: dict[Variable, float] = {}
    obj_constant = model.objective.constant
    for var, coeff in model.objective.terms.items():
        root, a, b = uf.resolve(var)
        obj_constant += coeff * b
        if root is not None and abs(coeff * a) > 1e-12:
            nv = new_vars[root]
            obj_terms[nv] = obj_terms.get(nv, 0.0) + coeff * a
    reduced.set_objective(LinExpr(obj_terms, obj_constant))

    resolution = {var: uf.resolve(var) for var in model.variables}
    return PresolveResult(
        original=model,
        reduced=reduced,
        stats=stats,
        infeasible=False,
        _resolution=resolution,
        _new_vars=new_vars,
    )


def solve_with_presolve(model: Model, backend: str = "auto") -> Solution:
    """Presolve, solve the reduced model, and recover the original solution."""
    result = presolve(model)
    if result.infeasible:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            stats=SolveStats(
                presolve_removed_vars=result.stats.removed_variables,
                presolve_removed_constraints=result.stats.dropped_constraints,
            ),
        )
    assert result.reduced is not None
    solution = result.reduced.solve(backend=backend)
    recovered = result.recover(solution)
    recovered.stats.presolve_removed_vars = result.stats.removed_variables
    recovered.stats.presolve_removed_constraints = (
        result.stats.dropped_constraints + result.stats.deduplicated_constraints
    )
    return recovered
