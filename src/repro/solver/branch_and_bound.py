"""Branch-and-bound MILP solver on top of the two-phase simplex.

Best-first search over LP relaxations with most-fractional branching. This
is the MILP engine behind the MetaOpt-style analyzer encodings (which use
binary indicator variables for pinning decisions, first-fit logic, and
complementary-slackness big-Ms).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.solver.model import MatrixForm, Model
from repro.solver.simplex import solve_standard_form
from repro.solver.solution import Solution, SolveStats, SolveStatus
from repro.solver.standard_form import from_matrix_form

#: A relaxation value is considered integral when within this tolerance.
INT_TOL = 1e-6

#: Prune nodes whose bound is not at least this much better than the incumbent.
PRUNE_TOL = 1e-9


@dataclass
class _Node:
    lb: np.ndarray
    ub: np.ndarray
    bound: float  # LP relaxation value (min space); -inf until solved


def _solve_relaxation(
    mf: MatrixForm, lb: np.ndarray, ub: np.ndarray
) -> tuple[SolveStatus, float, np.ndarray | None, int]:
    """Solve the LP relaxation with the node's bounds.

    Returns (status, min-space objective, x values, simplex iterations).
    """
    relaxed = MatrixForm(
        variables=mf.variables,
        c=mf.c,
        c0=mf.c0,
        objective_sign=mf.objective_sign,
        a_ub=mf.a_ub,
        b_ub=mf.b_ub,
        a_eq=mf.a_eq,
        b_eq=mf.b_eq,
        lb=lb,
        ub=ub,
        integrality=mf.integrality,
    )
    if np.any(lb > ub + INT_TOL):
        return SolveStatus.INFEASIBLE, float("inf"), None, 0
    sf = from_matrix_form(relaxed)
    result = solve_standard_form(sf)
    if result.status is not SolveStatus.OPTIMAL:
        value = float("-inf") if result.status is SolveStatus.UNBOUNDED else float("inf")
        return result.status, value, None, result.iterations
    x = sf.recover(result.y)
    return SolveStatus.OPTIMAL, result.objective + sf.c0, x, result.iterations


def _most_fractional(x: np.ndarray, int_idx: np.ndarray) -> int | None:
    """Index of the integral variable farthest from an integer, if any."""
    fractions = np.abs(x[int_idx] - np.round(x[int_idx]))
    worst = int(np.argmax(fractions))
    if fractions[worst] <= INT_TOL:
        return None
    return int(int_idx[worst])


def solve_milp(
    model: Model,
    time_limit: float | None = None,
    node_limit: int = 200_000,
) -> Solution:
    """Solve a mixed-integer model; falls back to pure LP when possible."""
    mf = model.to_matrix_form()
    int_idx = np.where(mf.integrality == 1)[0]
    if int_idx.size == 0:
        from repro.solver.simplex import solve_lp

        return solve_lp(model)

    start = time.perf_counter()
    total_iterations = 0
    nodes_explored = 0
    counter = itertools.count()  # heap tiebreaker

    # Integral variables get their bounds snapped to integers up front.
    root_lb = mf.lb.copy()
    root_ub = mf.ub.copy()
    root_lb[int_idx] = np.ceil(root_lb[int_idx] - INT_TOL)
    finite_ub = np.isfinite(root_ub)
    snap = int_idx[finite_ub[int_idx]]
    root_ub[snap] = np.floor(root_ub[snap] + INT_TOL)

    status0, bound0, x0, iters0 = _solve_relaxation(mf, root_lb, root_ub)
    total_iterations += iters0
    nodes_explored += 1
    if status0 is SolveStatus.INFEASIBLE:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            stats=SolveStats(iterations=total_iterations, nodes=1),
        )
    if status0 is SolveStatus.UNBOUNDED:
        return Solution(
            status=SolveStatus.UNBOUNDED,
            stats=SolveStats(iterations=total_iterations, nodes=1),
        )
    if status0 is SolveStatus.ITERATION_LIMIT:
        return Solution(
            status=SolveStatus.ITERATION_LIMIT,
            stats=SolveStats(iterations=total_iterations, nodes=1),
        )

    incumbent_value = float("inf")  # min space
    incumbent_x: np.ndarray | None = None

    heap: list[tuple[float, int, _Node]] = []

    def branch(lb: np.ndarray, ub: np.ndarray, x: np.ndarray, var: int, bound: float) -> None:
        """Push the floor/ceil children of a fractional relaxation."""
        down_ub = ub.copy()
        down_ub[var] = np.floor(x[var])
        heapq.heappush(heap, (bound, next(counter), _Node(lb.copy(), down_ub, bound)))
        up_lb = lb.copy()
        up_lb[var] = np.ceil(x[var])
        heapq.heappush(heap, (bound, next(counter), _Node(up_lb, ub.copy(), bound)))

    root_branch_var = _most_fractional(x0, int_idx)
    if root_branch_var is None:
        incumbent_value = bound0
        incumbent_x = x0.copy()
    else:
        branch(root_lb, root_ub, x0, root_branch_var, bound0)

    hit_node_limit = False
    while heap:
        bound, _, node = heapq.heappop(heap)
        if bound >= incumbent_value - PRUNE_TOL:
            continue  # pruned by bound
        if nodes_explored >= node_limit:
            hit_node_limit = True
            break
        if time_limit is not None and time.perf_counter() - start > time_limit:
            hit_node_limit = True
            break

        status, value, x, iters = _solve_relaxation(mf, node.lb, node.ub)
        total_iterations += iters
        nodes_explored += 1
        if status is not SolveStatus.OPTIMAL or value >= incumbent_value - PRUNE_TOL:
            continue
        branch_var = _most_fractional(x, int_idx)
        if branch_var is None:
            incumbent_value = value
            incumbent_x = x.copy()
            continue
        branch(node.lb, node.ub, x, branch_var, value)

    stats = SolveStats(iterations=total_iterations, nodes=nodes_explored)
    if incumbent_x is None:
        status = SolveStatus.NODE_LIMIT if hit_node_limit else SolveStatus.INFEASIBLE
        return Solution(status=status, stats=stats)

    # Snap integral entries exactly.
    incumbent_x[int_idx] = np.round(incumbent_x[int_idx])
    values = {
        var: float(incumbent_x[i]) for i, var in enumerate(model.variables)
    }
    objective = mf.objective_sign * incumbent_value
    status = SolveStatus.NODE_LIMIT if hit_node_limit else SolveStatus.OPTIMAL
    return Solution(
        status=status, objective=objective, values=values, stats=stats
    )
