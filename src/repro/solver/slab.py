"""Tensorized dual-simplex slab solves: one LP structure, a stack of rhs.

The batched gap oracle asks the same LP template for hundreds of solves
that differ only in ``b`` (and, for the pinning model, ``c``). The
per-point path pays a dense refactorization plus Python pivot control flow
for every instance. This module batches the whole slab:

* every instance starts from one **shared basis** ``B0`` (the template's
  carried basis, or the basis of the slab's first cold solve), so the
  expensive ``B⁻¹A`` factorization happens once per slab instead of once
  per point;
* the dual-simplex rhs repair and the primal finish run in **lockstep**
  over a stacked tableau tensor ``(K, m+1, n+1)`` with a per-instance
  active mask — each instance follows its *own* exact pivot sequence
  (entering/leaving choices are vectorized per instance, not shared);
* instances the warm start cannot seed (singular basis, dual-infeasible
  start, iteration trouble) **fall out of the slab** and finish on the
  existing scalar path (a batched slack-basis cold start when the
  structure allows it, else :func:`~repro.solver.simplex.
  solve_standard_form` per instance).

Two engines implement the same protocol:

* ``engine="scalar"`` — a per-instance loop over the existing
  :func:`~repro.solver.simplex.solve_with_basis` /
  :func:`~repro.solver.simplex.solve_standard_form` functions. This is the
  reference semantics.
* ``engine="tensor"`` — the stacked implementation. Every arithmetic step
  replicates the scalar engine's numpy expressions elementwise, so the two
  engines return **bit-identical** arrays (statuses, objectives, solution
  vectors, iteration counts). The solver-bench CI job diffs them per
  domain to keep that invariant honest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.obs import runtime as _obs
from repro.solver.simplex import (
    MAX_ITER_FACTOR,
    STALL_LIMIT,
    TOL,
    solve_standard_form,
    solve_with_basis,
)
from repro.solver.solution import SolveStatus
from repro.solver.standard_form import StandardForm

#: Cap on stacked tableau cells per tensor pass; larger slabs are split
#: into sequential chunks that share the same seed basis (identical
#: results — instances are independent once ``B0`` is fixed).
MAX_TENSOR_CELLS = 4_000_000


@dataclass
class SlabResult:
    """Per-instance outcome of one slab solve (y-space, no ``c0``)."""

    #: per-instance solve status
    statuses: list[SolveStatus]
    #: minimized objective ``c @ y`` where optimal, ``nan`` elsewhere
    objectives: np.ndarray
    #: y-space solutions, rows valid only where optimal
    ys: np.ndarray
    #: simplex pivots charged per instance (final path only, matching
    #: :meth:`LpTemplate.solve` accounting)
    iterations: np.ndarray
    #: True where the shared basis produced a definitive warm result
    warm: np.ndarray
    #: per-instance optimal basis (``None`` when not optimal or when the
    #: cold path left an artificial basic)
    bases: list[list[int] | None]

    @property
    def carry_basis(self) -> list[int] | None:
        """Basis the template should carry to the next slab (last instance)."""
        return self.bases[-1] if self.bases else None


def _shadow(sf: StandardForm) -> StandardForm:
    """A shallow working copy whose ``b``/``c`` can be retargeted."""
    return replace(sf)


def solve_slab(
    sf: StandardForm,
    b_matrix: np.ndarray,
    c_matrix: np.ndarray | None = None,
    start_basis: list[int] | None = None,
    engine: str = "tensor",
    max_iter: int | None = None,
) -> SlabResult:
    """Solve ``K`` instances of ``sf`` differing only in ``b`` (and ``c``).

    ``b_matrix`` is ``(K, m)``; ``c_matrix`` is ``(K, n)`` or ``None`` to
    share ``sf.c``. All instances start from ``start_basis`` when given;
    otherwise the slab cold-solves leading instances until one yields a
    reusable basis and warm-starts the rest from it. The seed basis is
    fixed for the whole slab — results are a pure function of
    ``(sf, b_matrix, c_matrix, start_basis)``, independent of engine.
    """
    b_matrix = np.asarray(b_matrix, dtype=float)
    if b_matrix.ndim != 2:
        raise ValueError("b_matrix must be (K, m)")
    K = b_matrix.shape[0]
    m, n = sf.a.shape
    if b_matrix.shape[1] != m:
        raise ValueError(f"b_matrix has {b_matrix.shape[1]} rows, LP has {m}")
    if c_matrix is not None:
        c_matrix = np.asarray(c_matrix, dtype=float)
        if c_matrix.shape != (K, n):
            raise ValueError(f"c_matrix must be ({K}, {n})")
    if K == 0:
        return SlabResult(
            [], np.empty(0), np.empty((0, n)),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), [],
        )

    registry = _obs.registry()
    if registry is not None:
        effective = "tensor" if engine == "tensor" and m > 0 else "scalar"
        registry.counter_inc(
            "xplain_solver_slab_solves_total",
            1,
            help="LP slab solves by effective engine",
            engine=effective,
        )
        registry.counter_inc(
            "xplain_solver_slab_instances_total",
            K,
            help="LP instances solved inside slabs, by effective engine",
            engine=effective,
        )

    if engine == "tensor" and m > 0:
        chunk = max(1, MAX_TENSOR_CELLS // ((m + 1) * (n + 1)))
        if K > chunk:
            return _solve_chunked(sf, b_matrix, c_matrix, start_basis, max_iter, chunk)
        result, _ = _solve_tensor(sf, b_matrix, c_matrix, start_basis, max_iter)
        return result
    result, _ = _solve_scalar(sf, b_matrix, c_matrix, start_basis, max_iter)
    return result


def _solve_chunked(sf, B, C, start_basis, max_iter, chunk) -> SlabResult:
    """Sequential tensor chunks threading the discovered seed basis."""
    parts: list[SlabResult] = []
    seed = list(start_basis) if start_basis is not None else None
    for lo in range(0, B.shape[0], chunk):
        hi = lo + chunk
        part, seed = _solve_tensor(
            sf, B[lo:hi], None if C is None else C[lo:hi], seed, max_iter
        )
        parts.append(part)
    return SlabResult(
        statuses=[s for p in parts for s in p.statuses],
        objectives=np.concatenate([p.objectives for p in parts]),
        ys=np.concatenate([p.ys for p in parts]),
        iterations=np.concatenate([p.iterations for p in parts]),
        warm=np.concatenate([p.warm for p in parts]),
        bases=[b for p in parts for b in p.bases],
    )


# ---------------------------------------------------------------------------
# scalar reference engine
# ---------------------------------------------------------------------------

def _solve_scalar(sf, B, C, start_basis, max_iter):
    """Per-instance loop over the existing simplex entry points."""
    K, m = B.shape
    n = sf.a.shape[1]
    statuses: list[SolveStatus] = []
    bases: list[list[int] | None] = []
    objectives = np.full(K, np.nan)
    ys = np.zeros((K, n))
    iterations = np.zeros(K, dtype=np.int64)
    warm = np.zeros(K, dtype=bool)

    seed = list(start_basis) if start_basis is not None else None
    shadow = _shadow(sf)
    for k in range(K):
        shadow.b = B[k]
        if C is not None:
            shadow.c = C[k]
        result = None
        if seed is not None:
            result = solve_with_basis(shadow, seed, max_iter)
        if result is not None:
            warm[k] = True
        else:
            result = solve_standard_form(shadow, max_iter)
            if seed is None and result.basis is not None:
                seed = list(result.basis)
        statuses.append(result.status)
        iterations[k] = result.iterations
        if result.status is SolveStatus.OPTIMAL:
            objectives[k] = result.objective
            ys[k] = result.y
            bases.append(
                list(result.basis) if result.basis is not None else None
            )
        else:
            bases.append(None)
    return (
        SlabResult(statuses, objectives, ys, iterations, warm, bases),
        seed,
    )


# ---------------------------------------------------------------------------
# tensor engine
# ---------------------------------------------------------------------------

def _batched_pivot(T, idx, r, c):
    """Gauss-Jordan pivot of instance ``idx[i]`` on ``(r[i], c[i])``.

    Replicates :func:`~repro.solver.simplex._pivot` elementwise: divide the
    pivot row in place, then subtract multiples from every other row whose
    multiplier is nonzero. Skipped (zero-multiplier) rows subtract a
    literal ``0.0``, which is bitwise the identity for IEEE doubles of
    either zero sign.
    """
    ar = np.arange(len(idx))
    piv = T[idx, r, :] / T[idx, r, c][:, None]
    T[idx, r, :] = piv
    colv = T[idx, :, c]
    mask = colv != 0.0
    mask[ar, r] = False
    delta = np.where(mask[:, :, None], colv[:, :, None] * piv[:, None, :], 0.0)
    T[idx] = T[idx] - delta


def _batched_primal(T, basis_arr, start_idx, caps, active_cols):
    """Lockstep :func:`~repro.solver.simplex._run_simplex` over the stack.

    Returns per-instance ``(status_code, iterations)`` where the code is
    0=OPTIMAL, 1=UNBOUNDED, 2=ITERATION_LIMIT. ``caps`` is the remaining
    per-instance pivot budget; ``active_cols`` is the shared ``allowed``
    width (always the full ``n`` for warm and slack-basis starts).
    """
    W = T.shape[0]
    m = T.shape[1] - 1
    n = active_cols
    status = np.full(W, -1, dtype=np.int8)
    p_iters = np.zeros(W, dtype=np.int64)
    stall = np.zeros(W, dtype=np.int64)
    bland = np.zeros(W, dtype=bool)
    last_obj = T[:, -1, -1].copy()
    active = np.zeros(W, dtype=bool)
    active[start_idx] = True

    while active.any():
        idx = np.where(active)[0]
        capped = p_iters[idx] >= caps[idx]
        if capped.any():
            status[idx[capped]] = 2
            active[idx[capped]] = False
            idx = idx[~capped]
            if idx.size == 0:
                continue
        costs = T[idx, -1, :n]
        cand = costs < -TOL
        has = cand.any(axis=1)
        if not has.all():
            status[idx[~has]] = 0
            active[idx[~has]] = False
            idx = idx[has]
            if idx.size == 0:
                continue
            costs = costs[has]
            cand = cand[has]
        masked = np.where(cand, costs, np.inf)
        e = np.where(bland[idx], np.argmax(cand, axis=1), np.argmin(masked, axis=1))
        colv = T[idx, :m, e]
        rhsv = T[idx, :m, -1]
        elig = colv > TOL
        has_row = elig.any(axis=1)
        if not has_row.all():
            status[idx[~has_row]] = 1
            active[idx[~has_row]] = False
            idx = idx[has_row]
            if idx.size == 0:
                continue
            colv = colv[has_row]
            rhsv = rhsv[has_row]
            elig = elig[has_row]
            e = e[has_row]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(elig, rhsv / colv, np.inf)
        best = ratios.min(axis=1)
        ties = np.isclose(ratios, best[:, None], rtol=0.0, atol=1e-12)
        leave = np.argmax(ties, axis=1)
        tie_bland = bland[idx] & (ties.sum(axis=1) > 1)
        if tie_bland.any():
            # Bland: among tied rows, leave the min-index basic variable.
            bvals = np.where(ties, basis_arr[idx], T.shape[2])
            leave = np.where(tie_bland, np.argmin(bvals, axis=1), leave)
        _batched_pivot(T, idx, leave, e)
        basis_arr[idx, leave] = e
        p_iters[idx] += 1
        obj = T[idx, -1, -1]
        close = np.abs(obj - last_obj[idx]) <= TOL
        new_stall = np.where(close, stall[idx] + 1, 0)
        bland[idx] = np.where(close, bland[idx] | (new_stall >= STALL_LIMIT), False)
        stall[idx] = new_stall
        last_obj[idx] = obj
    return status, p_iters


def _extract_batch(T, basis_arr, idx, n):
    """Vectorized :func:`~repro.solver.simplex._extract_solution`."""
    m = T.shape[1] - 1
    A = len(idx)
    Y = np.zeros((A, n))
    brows = basis_arr[idx]
    rhs = T[idx, :m, -1]
    mask = brows < n
    owner = np.broadcast_to(np.arange(A)[:, None], (A, m))
    Y[owner[mask], brows[mask]] = rhs[mask]
    return Y


def _solve_tensor(sf, B, C, start_basis, max_iter):
    """Stacked-tableau engine; bitwise-equal to :func:`_solve_scalar`."""
    a = sf.a
    m, n = a.shape
    K = B.shape[0]
    cap = max_iter if max_iter is not None else MAX_ITER_FACTOR * max(m + n, 32)

    statuses: list[SolveStatus | None] = [None] * K
    bases: list[list[int] | None] = [None] * K
    objectives = np.full(K, np.nan)
    ys = np.zeros((K, n))
    iterations = np.zeros(K, dtype=np.int64)
    warm = np.zeros(K, dtype=bool)

    shadow = _shadow(sf)

    def record_result(k, result, is_warm):
        statuses[k] = result.status
        iterations[k] = result.iterations
        warm[k] = is_warm
        if result.status is SolveStatus.OPTIMAL:
            objectives[k] = result.objective
            ys[k] = result.y
            bases[k] = list(result.basis) if result.basis is not None else None

    def cold_python(k):
        shadow.b = B[k]
        if C is not None:
            shadow.c = C[k]
        return solve_standard_form(shadow, max_iter)

    # -- seed basis: cold-solve leading instances until one yields a basis
    seed = list(start_basis) if start_basis is not None else None
    first_unsolved = 0
    if seed is None:
        for k in range(K):
            result = cold_python(k)
            record_result(k, result, False)
            first_unsolved = k + 1
            if result.basis is not None:
                seed = list(result.basis)
                break
    remaining = list(range(first_unsolved, K))
    if not remaining:
        return (
            SlabResult(statuses, objectives, ys, iterations, warm, bases),
            seed,
        )

    cold_set: list[int] = []
    if (
        seed is None
        or len(seed) != m
        or any(col < 0 or col >= n for col in seed)
    ):
        cold_set = remaining
        remaining = []

    # -- warm wave: shared factorization, batched dual repair + primal ----
    if remaining:
        basis_matrix = a[:, seed]
        rows = None
        try:
            rows = np.linalg.solve(basis_matrix, a)
        except np.linalg.LinAlgError:
            pass
        if rows is None or not np.all(np.isfinite(rows)):
            cold_set = remaining
            remaining = []
    if remaining:
        widx = np.array(remaining, dtype=np.int64)
        W = len(widx)
        RHS = np.empty((W, m))
        for i, k in enumerate(widx):
            RHS[i] = np.linalg.solve(basis_matrix, B[k])
        finite = np.isfinite(RHS).all(axis=1)

        if C is None:
            c_basis = sf.c[seed]
            cost_row = sf.c - c_basis @ rows
            COST = np.tile(cost_row, (W, 1))
            OBJ = np.empty(W)
            for i in range(W):
                OBJ[i] = -float(c_basis @ RHS[i])
        else:
            COST = np.empty((W, n))
            OBJ = np.empty(W)
            for i, k in enumerate(widx):
                ck = C[k]
                cbk = ck[seed]
                COST[i] = ck - cbk @ rows
                OBJ[i] = -float(cbk @ RHS[i])
        COST[:, seed] = 0.0

        T = np.empty((W, m + 1, n + 1))
        T[:, :m, :n] = rows
        T[:, :m, -1] = RHS
        T[:, -1, :n] = COST
        T[:, -1, -1] = OBJ
        basis_arr = np.tile(np.array(seed, dtype=np.int64), (W, 1))

        with np.errstate(invalid="ignore"):
            rhs_neg = RHS.min(axis=1) < -1e-7
            cost_neg = COST.min(axis=1) < -1e-7
        to_cold = ~finite | (finite & rhs_neg & cost_neg)
        dual_set = finite & rhs_neg & ~cost_neg
        primal_ready = finite & ~rhs_neg

        # dual-simplex repair in lockstep over the dual set
        dual_iters = np.zeros(W, dtype=np.int64)
        infeasible = np.zeros(W, dtype=bool)
        active = dual_set.copy()
        while active.any():
            idx = np.where(active)[0]
            capped = dual_iters[idx] >= cap
            if capped.any():
                to_cold[idx[capped]] = True
                active[idx[capped]] = False
                idx = idx[~capped]
                if idx.size == 0:
                    continue
            rhsv = T[idx, :m, -1]
            r = np.argmin(rhsv, axis=1)
            feas = rhsv[np.arange(len(idx)), r] >= -TOL
            if feas.any():
                primal_ready[idx[feas]] = True
                active[idx[feas]] = False
                idx = idx[~feas]
                r = r[~feas]
                if idx.size == 0:
                    continue
            rowv = T[idx, r, :n]
            elig = rowv < -TOL
            dead = ~elig.any(axis=1)
            if dead.any():
                infeasible[idx[dead]] = True
                active[idx[dead]] = False
                idx = idx[~dead]
                r = r[~dead]
                rowv = rowv[~dead]
                elig = elig[~dead]
                if idx.size == 0:
                    continue
            costs = T[idx, -1, :n]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(elig, costs / -rowv, np.inf)
            e = np.argmin(ratios, axis=1)
            _batched_pivot(T, idx, r, e)
            basis_arr[idx, r] = e
            dual_iters[idx] += 1

        for i in np.where(infeasible)[0]:
            k = int(widx[i])
            statuses[k] = SolveStatus.INFEASIBLE
            iterations[k] = dual_iters[i]
            warm[k] = True

        pr = np.where(primal_ready)[0]
        if pr.size:
            T[pr, :m, -1] = np.maximum(T[pr, :m, -1], 0.0)
            pstat, p_iters = _batched_primal(
                T, basis_arr, pr, cap - dual_iters, n
            )
            limit = pr[pstat[pr] == 2]
            to_cold[limit] = True
            unb = pr[pstat[pr] == 1]
            for i in unb:
                k = int(widx[i])
                statuses[k] = SolveStatus.UNBOUNDED
                iterations[k] = dual_iters[i] + p_iters[i]
                warm[k] = True
            opt = pr[pstat[pr] == 0]
            if opt.size:
                Y = _extract_batch(T, basis_arr, opt, n)
                for j, i in enumerate(opt):
                    k = int(widx[i])
                    ck = sf.c if C is None else C[k]
                    statuses[k] = SolveStatus.OPTIMAL
                    objectives[k] = float(ck @ Y[j])
                    ys[k] = Y[j]
                    iterations[k] = dual_iters[i] + p_iters[i]
                    warm[k] = True
                    bases[k] = [int(col) for col in basis_arr[i]]
        cold_set = cold_set + [int(widx[i]) for i in np.where(to_cold)[0]]

    # -- cold wave: batched slack-basis start where the structure allows --
    if cold_set:
        cold_set = sorted(cold_set)
        ns = sf.num_structural
        shortcut = (
            m > 0
            and m == sf.num_slack
            and n == ns + m
            and bool(np.all(a[np.arange(m), ns + np.arange(m)] == 1.0))
        )
        tensor_cold: list[int] = []
        for k in cold_set:
            if shortcut and not np.any(B[k] < 0):
                tensor_cold.append(k)
            else:
                record_result(k, cold_python(k), False)
        if tensor_cold:
            cidx = np.array(tensor_cold, dtype=np.int64)
            Wc = len(cidx)
            T = np.empty((Wc, m + 1, n + 1))
            T[:, :m, :n] = a
            T[:, :m, -1] = B[cidx]
            T[:, -1, -1] = 0.0
            if C is None:
                T[:, -1, :n] = sf.c
                if np.any(sf.c[ns:] != 0.0):
                    c_basis = sf.c[ns:]
                    T[:, -1, :n] -= c_basis @ a
                    for i, k in enumerate(cidx):
                        T[i, -1, -1] = -float(c_basis @ B[k])
            else:
                T[:, -1, :n] = C[cidx]
                for i, k in enumerate(cidx):
                    ck = C[k]
                    if np.any(ck[ns:] != 0.0):
                        T[i, -1, :n] -= ck[ns:] @ a
                        T[i, -1, -1] = -float(ck[ns:] @ B[k])
            basis_arr = np.tile(np.arange(ns, ns + m, dtype=np.int64), (Wc, 1))
            caps = np.full(Wc, cap, dtype=np.int64)
            pstat, p_iters = _batched_primal(
                T, basis_arr, np.arange(Wc), caps, n
            )
            code_to_status = {
                0: SolveStatus.OPTIMAL,
                1: SolveStatus.UNBOUNDED,
                2: SolveStatus.ITERATION_LIMIT,
            }
            opt = np.where(pstat == 0)[0]
            Y = _extract_batch(T, basis_arr, opt, n) if opt.size else None
            opt_pos = {int(i): j for j, i in enumerate(opt)}
            for i, k in enumerate(cidx):
                k = int(k)
                statuses[k] = code_to_status[int(pstat[i])]
                iterations[k] = p_iters[i]
                if i in opt_pos:
                    j = opt_pos[i]
                    ck = sf.c if C is None else C[k]
                    objectives[k] = float(ck @ Y[j])
                    ys[k] = Y[j]
                    bases[k] = [int(col) for col in basis_arr[i]]

    return (
        SlabResult(statuses, objectives, ys, iterations, warm, bases),
        seed,
    )
