"""SciPy (HiGHS) backend.

Used two ways: as the fast path for large compiled models (``backend="auto"``
switches over above a size threshold) and as an independent oracle that the
test suite cross-checks the from-scratch simplex/branch-and-bound against.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.solver.model import Model
from repro.solver.solution import Solution, SolveStats, SolveStatus


def _status_from_linprog(status_code: int) -> SolveStatus:
    return {
        0: SolveStatus.OPTIMAL,
        1: SolveStatus.ITERATION_LIMIT,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
    }.get(status_code, SolveStatus.ERROR)


def _status_from_milp(status_code: int) -> SolveStatus:
    return {
        0: SolveStatus.OPTIMAL,
        1: SolveStatus.ITERATION_LIMIT,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
        4: SolveStatus.NODE_LIMIT,
    }.get(status_code, SolveStatus.ERROR)


def solve_scipy(model: Model, time_limit: float | None = None) -> Solution:
    """Solve ``model`` with ``scipy.optimize.linprog`` or ``milp``."""
    mf = model.to_matrix_form()
    bounds_lb = mf.lb.copy()
    bounds_ub = mf.ub.copy()

    if model.is_mip:
        constraints = []
        if mf.a_ub.shape[0]:
            constraints.append(
                optimize.LinearConstraint(
                    sparse.csr_matrix(mf.a_ub), -np.inf, mf.b_ub
                )
            )
        if mf.a_eq.shape[0]:
            constraints.append(
                optimize.LinearConstraint(
                    sparse.csr_matrix(mf.a_eq), mf.b_eq, mf.b_eq
                )
            )
        # HiGHS's default mip_rel_gap (1e-4) lets it stop at incumbents
        # measurably worse than optimal (a 1e-5 absolute gap on a unit-scale
        # makespan passes the default tolerance); the gap oracle needs the
        # true optimum, so require (near-)exact convergence.
        options = {"mip_rel_gap": 1e-9}
        if time_limit is not None:
            options["time_limit"] = time_limit
        result = optimize.milp(
            c=mf.c,
            constraints=constraints,
            bounds=optimize.Bounds(bounds_lb, bounds_ub),
            integrality=mf.integrality,
            options=options,
        )
        if result.status == 2:
            # HiGHS's MILP presolve occasionally declares feasible models
            # infeasible (observed on VBP assignment models with chained
            # symmetry-breaking rows; scipy 1.17 / HiGHS status 8). A
            # false "infeasible" crashes the gap oracle, so confirm the
            # verdict once with presolve off — genuinely infeasible
            # models are rare here and the re-solve is cheap.
            result = optimize.milp(
                c=mf.c,
                constraints=constraints,
                bounds=optimize.Bounds(bounds_lb, bounds_ub),
                integrality=mf.integrality,
                options={**options, "presolve": False},
            )
        status = _status_from_milp(result.status)
        stats = SolveStats(
            nodes=int(getattr(result, "mip_node_count", 0) or 0),
            backend="scipy",
        )
        if result.x is None:
            return Solution(status=status, stats=stats)
        x = np.asarray(result.x, dtype=float)
        int_idx = np.where(mf.integrality == 1)[0]
        x[int_idx] = np.round(x[int_idx])
        values = {var: float(x[i]) for i, var in enumerate(mf.variables)}
        objective = mf.objective_sign * (float(mf.c @ x) + mf.c0)
        return Solution(
            status=status, objective=objective, values=values, stats=stats
        )

    result = optimize.linprog(
        c=mf.c,
        A_ub=mf.a_ub if mf.a_ub.shape[0] else None,
        b_ub=mf.b_ub if mf.b_ub.shape[0] else None,
        A_eq=mf.a_eq if mf.a_eq.shape[0] else None,
        b_eq=mf.b_eq if mf.b_eq.shape[0] else None,
        bounds=np.column_stack([bounds_lb, bounds_ub]),
        method="highs",
    )
    status = _status_from_linprog(result.status)
    stats = SolveStats(
        iterations=int(getattr(result, "nit", 0) or 0), backend="scipy"
    )
    if result.x is None:
        return Solution(status=status, stats=stats)
    x = np.asarray(result.x, dtype=float)
    values = {var: float(x[i]) for i, var in enumerate(mf.variables)}
    objective = mf.objective_sign * (float(mf.c @ x) + mf.c0)
    return Solution(
        status=status, objective=objective, values=values, stats=stats
    )
