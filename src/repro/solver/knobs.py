"""Environment-variable knobs for the LP solve substrate.

Two switches control the batched solve path (see DESIGN.md §14):

* ``REPRO_SLAB_ENGINE`` — ``tensor`` (default) runs the stacked-tableau
  dual-simplex slab, ``scalar`` runs the per-instance reference engine
  (bit-identical results, used by the solver-bench CI diff), ``off``
  restores the pre-slab chained warm-start loop in the TE batch oracle.
* ``REPRO_SF_PRESOLVE`` — ``1`` applies the :mod:`repro.solver.sf_presolve`
  reduction when an :class:`~repro.solver.template.LpTemplate` is built;
  ``0`` (default) solves the unreduced standard form.

Both are read at call time so CI jobs and tests can flip them per process
without import-order games.
"""

from __future__ import annotations

import os

_ENGINES = ("tensor", "scalar", "off")


def slab_engine() -> str:
    """Selected slab engine: ``tensor`` | ``scalar`` | ``off``."""
    value = os.environ.get("REPRO_SLAB_ENGINE", "tensor").strip().lower()
    return value if value in _ENGINES else "tensor"


def sf_presolve_default() -> bool:
    """Whether templates apply StandardForm presolve by default."""
    return os.environ.get("REPRO_SF_PRESOLVE", "0").strip() in ("1", "true", "on")
