"""Two-phase primal simplex on a dense tableau.

This is the from-scratch LP engine of the reproduction (the paper's stack
uses Gurobi through MetaOpt; see DESIGN.md for the substitution note). It is
deliberately a classic textbook implementation:

* phase 1 drives artificial variables out of the basis to find a basic
  feasible solution (or proves infeasibility);
* phase 2 optimizes the true objective;
* pivoting uses Dantzig's rule with an automatic switch to Bland's rule
  after a stall, which guarantees termination.

Dense tableaus are perfectly adequate at the scale of the paper's examples
(tens to a few hundred variables); the SciPy backend covers anything larger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.model import Model
from repro.solver.solution import Solution, SolveStats, SolveStatus
from repro.solver.standard_form import StandardForm, to_standard_form

#: Feasibility / optimality tolerance of the tableau arithmetic.
TOL = 1e-9

#: After this many Dantzig pivots without objective progress we switch to
#: Bland's rule, which cannot cycle.
STALL_LIMIT = 64

#: Hard cap on pivots, scaled by problem size at runtime.
MAX_ITER_FACTOR = 200


@dataclass
class _TableauResult:
    status: SolveStatus
    y: np.ndarray | None
    objective: float
    iterations: int
    #: optimal basis (column index per row) when the solve ended OPTIMAL
    #: with no artificial column left basic; reusable via
    #: :func:`solve_with_basis` for warm-started re-solves.
    basis: list[int] | None = None


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the tableau on (row, col), in place."""
    tableau[row] /= tableau[row, col]
    pivot_row = tableau[row]
    for r in range(tableau.shape[0]):
        if r != row and tableau[r, col] != 0.0:
            tableau[r] -= tableau[r, col] * pivot_row


def _choose_entering(
    costs: np.ndarray, allowed: np.ndarray, bland: bool
) -> int | None:
    """Index of the entering column, or None when optimal."""
    candidates = np.where(allowed & (costs < -TOL))[0]
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(costs[candidates])])


def _choose_leaving(
    tableau: np.ndarray, col: int, basis: list[int], bland: bool
) -> int | None:
    """Row index of the leaving variable via the minimum-ratio test."""
    m = tableau.shape[0] - 1
    column = tableau[:m, col]
    rhs = tableau[:m, -1]
    eligible = column > TOL
    if not np.any(eligible):
        return None  # unbounded direction
    ratios = np.full(m, np.inf)
    ratios[eligible] = rhs[eligible] / column[eligible]
    best = ratios.min()
    ties = np.where(np.isclose(ratios, best, rtol=0.0, atol=1e-12))[0]
    if bland and ties.size > 1:
        # Bland: among tied rows, leave the one whose basic var has min index.
        return int(min(ties, key=lambda r: basis[r]))
    return int(ties[0])


def _run_simplex(
    tableau: np.ndarray,
    basis: list[int],
    allowed: np.ndarray,
    max_iter: int,
) -> _TableauResult:
    """Optimize the tableau in place; returns status and iteration count."""
    iterations = 0
    stall = 0
    bland = False
    last_obj = tableau[-1, -1]
    while iterations < max_iter:
        entering = _choose_entering(tableau[-1, :-1], allowed, bland)
        if entering is None:
            return _TableauResult(
                SolveStatus.OPTIMAL, None, -tableau[-1, -1], iterations
            )
        leaving = _choose_leaving(tableau, entering, basis, bland)
        if leaving is None:
            return _TableauResult(
                SolveStatus.UNBOUNDED, None, float("-inf"), iterations
            )
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        iterations += 1
        obj = tableau[-1, -1]
        if abs(obj - last_obj) <= TOL:
            stall += 1
            if stall >= STALL_LIMIT:
                bland = True
        else:
            stall = 0
            bland = False
        last_obj = obj
    return _TableauResult(
        SolveStatus.ITERATION_LIMIT, None, -tableau[-1, -1], iterations
    )


def _extract_solution(tableau: np.ndarray, basis: list[int], n: int) -> np.ndarray:
    y = np.zeros(n)
    rhs = tableau[:-1, -1]
    for row, col in enumerate(basis):
        if col < n:
            y[col] = rhs[row]
    return y


def solve_standard_form(sf: StandardForm, max_iter: int | None = None) -> _TableauResult:
    """Solve a standard-form LP, returning y-space results."""
    a, b, c = sf.a, sf.b, sf.c
    # Phase 1 needs b >= 0; forms built with ``normalize=False`` (solve
    # templates) may carry negative entries, so flip those rows on copies.
    neg = b < 0
    if np.any(neg):
        a = a.copy()
        b = b.copy()
        a[neg] *= -1.0
        b[neg] *= -1.0
    m, n = a.shape
    if max_iter is None:
        max_iter = MAX_ITER_FACTOR * max(m + n, 32)

    if m == 0:
        # No constraints at all: optimum is 0 if c >= 0 (all y at bound 0),
        # otherwise unbounded below.
        if np.any(c < -TOL):
            return _TableauResult(SolveStatus.UNBOUNDED, None, float("-inf"), 0)
        return _TableauResult(SolveStatus.OPTIMAL, np.zeros(n), 0.0, 0)

    # ---- slack-basis shortcut -------------------------------------------
    # When every row is an inequality whose slack column survived with
    # coefficient +1 (no equality rows, no sign flips), the all-slack basis
    # is feasible and phase 1 is pure overhead: start phase 2 directly.
    ns = sf.num_structural
    if m == sf.num_slack and n == ns + m:
        slack_diag = a[np.arange(m), ns + np.arange(m)]
        if np.all(slack_diag == 1.0):
            tableau = np.empty((m + 1, n + 1))
            tableau[:m, :n] = a
            tableau[:m, -1] = b
            tableau[-1, :n] = c
            tableau[-1, -1] = 0.0
            basis = list(range(ns, ns + m))
            if np.any(c[ns:] != 0.0):  # reduce costs w.r.t. the slack basis
                c_basis = c[ns:]
                tableau[-1, :n] -= c_basis @ a
                tableau[-1, -1] = -float(c_basis @ b)
            allowed = np.ones(n, dtype=bool)
            phase2 = _run_simplex(tableau, basis, allowed, max_iter)
            if phase2.status is not SolveStatus.OPTIMAL:
                return _TableauResult(
                    phase2.status, None, phase2.objective, phase2.iterations
                )
            y = _extract_solution(tableau, basis, n)
            return _TableauResult(
                SolveStatus.OPTIMAL,
                y,
                float(c @ y),
                phase2.iterations,
                basis=list(basis),
            )

    # ---- phase 1: artificial basis -------------------------------------
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Phase-1 objective: minimize the sum of artificials. Express the reduced
    # costs by subtracting each constraint row from the cost row.
    tableau[-1, :n] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    basis = list(range(n, n + m))
    allowed = np.ones(n + m, dtype=bool)

    phase1 = _run_simplex(tableau, basis, allowed, max_iter)
    iterations = phase1.iterations
    if phase1.status is SolveStatus.ITERATION_LIMIT:
        return _TableauResult(SolveStatus.ITERATION_LIMIT, None, 0.0, iterations)
    if phase1.objective < -1e-7 or tableau[-1, -1] < -1e-7:
        # Residual artificial infeasibility.
        return _TableauResult(SolveStatus.INFEASIBLE, None, 0.0, iterations)

    # Drive any artificial variables remaining in the basis at level ~0 out.
    for row in range(m):
        if basis[row] >= n:
            pivot_col = None
            for col in range(n):
                if abs(tableau[row, col]) > 1e-7:
                    pivot_col = col
                    break
            if pivot_col is not None:
                _pivot(tableau, row, pivot_col)
                basis[row] = pivot_col
            # else: the row is all-zero over structurals (redundant row);
            # the artificial stays basic at value 0, which is harmless.

    # ---- phase 2: true objective ----------------------------------------
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    # Express reduced costs w.r.t. the current basis.
    for row, col in enumerate(basis):
        if col < n and tableau[-1, col] != 0.0:
            tableau[-1] -= tableau[-1, col] * tableau[row]
    allowed = np.zeros(n + m, dtype=bool)
    allowed[:n] = True  # artificials are never re-admitted

    phase2 = _run_simplex(tableau, basis, allowed, max_iter)
    iterations += phase2.iterations
    if phase2.status is not SolveStatus.OPTIMAL:
        return _TableauResult(phase2.status, None, phase2.objective, iterations)

    y = _extract_solution(tableau, basis, n)
    objective = float(c @ y)
    final_basis = list(basis) if all(col < n for col in basis) else None
    return _TableauResult(
        SolveStatus.OPTIMAL, y, objective, iterations, basis=final_basis
    )


def _dual_simplex(
    tableau: np.ndarray, basis: list[int], max_iter: int
) -> tuple[int, bool]:
    """Repair negative rhs entries while keeping dual feasibility.

    The classic warm-start move for rhs changes: the previous optimal basis
    keeps its non-negative reduced costs, so dual pivots (leave the most
    negative row, enter by the dual ratio test) restore primal feasibility
    in a handful of iterations. Returns ``(iterations, feasible)``;
    ``feasible=False`` means the LP is primal infeasible (an all-non-negative
    row demands a negative rhs) or the iteration cap was hit.
    """
    m = tableau.shape[0] - 1
    iterations = 0
    while iterations < max_iter:
        rhs = tableau[:m, -1]
        row_index = int(np.argmin(rhs))
        if rhs[row_index] >= -TOL:
            return iterations, True
        row = tableau[row_index, :-1]
        eligible = np.where(row < -TOL)[0]
        if eligible.size == 0:
            return iterations, False
        costs = tableau[-1, :-1]
        ratios = costs[eligible] / -row[eligible]
        entering = int(eligible[np.argmin(ratios)])
        _pivot(tableau, row_index, entering)
        basis[row_index] = entering
        iterations += 1
    return iterations, False


def solve_with_basis(
    sf: StandardForm,
    basis: list[int],
    max_iter: int | None = None,
) -> _TableauResult | None:
    """Warm-started solve from a known (previously optimal) basis.

    Rebuilds the tableau in the given basis (one dense factorization plus a
    matmul — no phase-1 pivots). If the basis is still primal feasible
    under the current ``b``, the primal simplex finishes from there; if it
    went primal infeasible but stayed dual feasible (the rhs-only-change
    case), a dual-simplex repair runs first. Returns ``None`` when the
    basis cannot seed the solve at all — singular basis matrix, dual and
    primal infeasible (objective changed too much), or an artificial column
    index — in which case the caller should fall back to the cold two-phase
    path (:func:`solve_standard_form`).
    """
    a, b, c = sf.a, sf.b, sf.c
    m, n = a.shape
    if m == 0 or len(basis) != m or any(col < 0 or col >= n for col in basis):
        return None
    if max_iter is None:
        max_iter = MAX_ITER_FACTOR * max(m + n, 32)

    basis_matrix = a[:, basis]
    try:
        rows = np.linalg.solve(basis_matrix, a)
        rhs = np.linalg.solve(basis_matrix, b)
    except np.linalg.LinAlgError:
        return None
    if not (np.all(np.isfinite(rhs)) and np.all(np.isfinite(rows))):
        return None

    tableau = np.empty((m + 1, n + 1))
    tableau[:m, :n] = rows
    tableau[:m, -1] = rhs
    c_basis = c[basis]
    tableau[-1, :n] = c - c_basis @ rows
    tableau[-1, -1] = -float(c_basis @ rhs)
    # Basic columns have reduced cost 0 by construction; clamp the tiny
    # residuals the factorization leaves so they are never chosen to enter.
    tableau[-1, basis] = 0.0

    work_basis = list(basis)
    iterations = 0
    if float(rhs.min()) < -1e-7:
        if float(tableau[-1, :n].min()) < -1e-7:
            return None  # neither primal nor dual feasible: cold-start
        iterations, feasible = _dual_simplex(tableau, work_basis, max_iter)
        if not feasible:
            if iterations >= max_iter:
                return None  # give the cold path a chance before reporting
            return _TableauResult(
                SolveStatus.INFEASIBLE, None, 0.0, iterations
            )
    np.maximum(tableau[:m, -1], 0.0, out=tableau[:m, -1])

    allowed = np.ones(n, dtype=bool)
    result = _run_simplex(tableau, work_basis, allowed, max_iter - iterations)
    iterations += result.iterations
    if result.status is SolveStatus.UNBOUNDED:
        return _TableauResult(
            SolveStatus.UNBOUNDED, None, float("-inf"), iterations
        )
    if result.status is not SolveStatus.OPTIMAL:
        return None  # iteration trouble: let the caller cold-start
    y = _extract_solution(tableau, work_basis, n)
    objective = float(c @ y)
    return _TableauResult(
        SolveStatus.OPTIMAL, y, objective, iterations, basis=work_basis
    )


def solve_lp(model: Model) -> Solution:
    """Solve a continuous model with the two-phase simplex."""
    sf = to_standard_form(model)
    result = solve_standard_form(sf)
    stats = SolveStats(iterations=result.iterations, backend="simplex")
    if result.status is not SolveStatus.OPTIMAL:
        return Solution(status=result.status, stats=stats)

    x = sf.recover(result.y)
    values = {var: float(x[i]) for i, var in enumerate(model.variables)}
    mf_sign = 1.0 if model.sense == "min" else -1.0
    # result.objective is the minimized standard-form objective (without c0).
    objective = mf_sign * (result.objective + sf.c0)
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        stats=stats,
    )
