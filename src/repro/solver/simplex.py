"""Two-phase primal simplex on a dense tableau.

This is the from-scratch LP engine of the reproduction (the paper's stack
uses Gurobi through MetaOpt; see DESIGN.md for the substitution note). It is
deliberately a classic textbook implementation:

* phase 1 drives artificial variables out of the basis to find a basic
  feasible solution (or proves infeasibility);
* phase 2 optimizes the true objective;
* pivoting uses Dantzig's rule with an automatic switch to Bland's rule
  after a stall, which guarantees termination.

Dense tableaus are perfectly adequate at the scale of the paper's examples
(tens to a few hundred variables); the SciPy backend covers anything larger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.model import Model
from repro.solver.solution import Solution, SolveStats, SolveStatus
from repro.solver.standard_form import StandardForm, to_standard_form

#: Feasibility / optimality tolerance of the tableau arithmetic.
TOL = 1e-9

#: After this many Dantzig pivots without objective progress we switch to
#: Bland's rule, which cannot cycle.
STALL_LIMIT = 64

#: Hard cap on pivots, scaled by problem size at runtime.
MAX_ITER_FACTOR = 200


@dataclass
class _TableauResult:
    status: SolveStatus
    y: np.ndarray | None
    objective: float
    iterations: int


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the tableau on (row, col), in place."""
    tableau[row] /= tableau[row, col]
    pivot_row = tableau[row]
    for r in range(tableau.shape[0]):
        if r != row and tableau[r, col] != 0.0:
            tableau[r] -= tableau[r, col] * pivot_row


def _choose_entering(
    costs: np.ndarray, allowed: np.ndarray, bland: bool
) -> int | None:
    """Index of the entering column, or None when optimal."""
    candidates = np.where(allowed & (costs < -TOL))[0]
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(costs[candidates])])


def _choose_leaving(
    tableau: np.ndarray, col: int, basis: list[int], bland: bool
) -> int | None:
    """Row index of the leaving variable via the minimum-ratio test."""
    m = tableau.shape[0] - 1
    column = tableau[:m, col]
    rhs = tableau[:m, -1]
    eligible = column > TOL
    if not np.any(eligible):
        return None  # unbounded direction
    ratios = np.full(m, np.inf)
    ratios[eligible] = rhs[eligible] / column[eligible]
    best = ratios.min()
    ties = np.where(np.isclose(ratios, best, rtol=0.0, atol=1e-12))[0]
    if bland and ties.size > 1:
        # Bland: among tied rows, leave the one whose basic var has min index.
        return int(min(ties, key=lambda r: basis[r]))
    return int(ties[0])


def _run_simplex(
    tableau: np.ndarray,
    basis: list[int],
    allowed: np.ndarray,
    max_iter: int,
) -> _TableauResult:
    """Optimize the tableau in place; returns status and iteration count."""
    iterations = 0
    stall = 0
    bland = False
    last_obj = tableau[-1, -1]
    while iterations < max_iter:
        entering = _choose_entering(tableau[-1, :-1], allowed, bland)
        if entering is None:
            return _TableauResult(
                SolveStatus.OPTIMAL, None, -tableau[-1, -1], iterations
            )
        leaving = _choose_leaving(tableau, entering, basis, bland)
        if leaving is None:
            return _TableauResult(
                SolveStatus.UNBOUNDED, None, float("-inf"), iterations
            )
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        iterations += 1
        obj = tableau[-1, -1]
        if abs(obj - last_obj) <= TOL:
            stall += 1
            if stall >= STALL_LIMIT:
                bland = True
        else:
            stall = 0
            bland = False
        last_obj = obj
    return _TableauResult(
        SolveStatus.ITERATION_LIMIT, None, -tableau[-1, -1], iterations
    )


def _extract_solution(tableau: np.ndarray, basis: list[int], n: int) -> np.ndarray:
    y = np.zeros(n)
    rhs = tableau[:-1, -1]
    for row, col in enumerate(basis):
        if col < n:
            y[col] = rhs[row]
    return y


def solve_standard_form(sf: StandardForm, max_iter: int | None = None) -> _TableauResult:
    """Solve a standard-form LP, returning y-space results."""
    a, b, c = sf.a, sf.b, sf.c
    m, n = a.shape
    if max_iter is None:
        max_iter = MAX_ITER_FACTOR * max(m + n, 32)

    if m == 0:
        # No constraints at all: optimum is 0 if c >= 0 (all y at bound 0),
        # otherwise unbounded below.
        if np.any(c < -TOL):
            return _TableauResult(SolveStatus.UNBOUNDED, None, float("-inf"), 0)
        return _TableauResult(SolveStatus.OPTIMAL, np.zeros(n), 0.0, 0)

    # ---- phase 1: artificial basis -------------------------------------
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Phase-1 objective: minimize the sum of artificials. Express the reduced
    # costs by subtracting each constraint row from the cost row.
    tableau[-1, :n] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    basis = list(range(n, n + m))
    allowed = np.ones(n + m, dtype=bool)

    phase1 = _run_simplex(tableau, basis, allowed, max_iter)
    iterations = phase1.iterations
    if phase1.status is SolveStatus.ITERATION_LIMIT:
        return _TableauResult(SolveStatus.ITERATION_LIMIT, None, 0.0, iterations)
    if phase1.objective < -1e-7 or tableau[-1, -1] < -1e-7:
        # Residual artificial infeasibility.
        return _TableauResult(SolveStatus.INFEASIBLE, None, 0.0, iterations)

    # Drive any artificial variables remaining in the basis at level ~0 out.
    for row in range(m):
        if basis[row] >= n:
            pivot_col = None
            for col in range(n):
                if abs(tableau[row, col]) > 1e-7:
                    pivot_col = col
                    break
            if pivot_col is not None:
                _pivot(tableau, row, pivot_col)
                basis[row] = pivot_col
            # else: the row is all-zero over structurals (redundant row);
            # the artificial stays basic at value 0, which is harmless.

    # ---- phase 2: true objective ----------------------------------------
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    # Express reduced costs w.r.t. the current basis.
    for row, col in enumerate(basis):
        if col < n and tableau[-1, col] != 0.0:
            tableau[-1] -= tableau[-1, col] * tableau[row]
    allowed = np.zeros(n + m, dtype=bool)
    allowed[:n] = True  # artificials are never re-admitted

    phase2 = _run_simplex(tableau, basis, allowed, max_iter)
    iterations += phase2.iterations
    if phase2.status is not SolveStatus.OPTIMAL:
        return _TableauResult(phase2.status, None, phase2.objective, iterations)

    y = _extract_solution(tableau, basis, n)
    objective = float(c @ y)
    return _TableauResult(SolveStatus.OPTIMAL, y, objective, iterations)


def solve_lp(model: Model) -> Solution:
    """Solve a continuous model with the two-phase simplex."""
    sf = to_standard_form(model)
    result = solve_standard_form(sf)
    stats = SolveStats(iterations=result.iterations, backend="simplex")
    if result.status is not SolveStatus.OPTIMAL:
        return Solution(status=result.status, stats=stats)

    x = sf.recover(result.y)
    values = {var: float(x[i]) for i, var in enumerate(model.variables)}
    mf_sign = 1.0 if model.sense == "min" else -1.0
    # result.objective is the minimized standard-form objective (without c0).
    objective = mf_sign * (result.objective + sf.c0)
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        stats=stats,
    )
