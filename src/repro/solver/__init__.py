"""From-scratch LP/MILP solver substrate.

The paper's prototype drives Gurobi through MetaOpt; this package replaces
that proprietary layer with a complete, self-contained stack:

* :mod:`repro.solver.expr` — variables, linear expressions, constraints;
* :mod:`repro.solver.model` — the model container and backend dispatch;
* :mod:`repro.solver.simplex` — two-phase primal simplex (dense tableau);
* :mod:`repro.solver.branch_and_bound` — best-first MILP search;
* :mod:`repro.solver.presolve` — redundancy elimination with recovery maps
  (the engine behind the paper's compiled-DSL speedup claim);
* :mod:`repro.solver.scipy_backend` — HiGHS via SciPy, used as the
  cross-check oracle and the large-model fast path;
* :mod:`repro.solver.template` — parametric LP templates with basis
  warm-starting (the batched gap-oracle engine's solve substrate).
"""

from repro.solver.expr import (
    Constraint,
    LinExpr,
    Relation,
    Variable,
    VarType,
    quicksum,
)
from repro.solver.knobs import sf_presolve_default, slab_engine
from repro.solver.model import INF, Model
from repro.solver.presolve import PresolveResult, presolve, solve_with_presolve
from repro.solver.sf_presolve import PresolvedForm, presolve_standard_form
from repro.solver.slab import SlabResult, solve_slab
from repro.solver.solution import Solution, SolveStats, SolveStatus
from repro.solver.template import LpTemplate, TemplateSlabResult

__all__ = [
    "Constraint",
    "INF",
    "LinExpr",
    "LpTemplate",
    "Model",
    "PresolveResult",
    "PresolvedForm",
    "Relation",
    "SlabResult",
    "Solution",
    "SolveStats",
    "SolveStatus",
    "TemplateSlabResult",
    "Variable",
    "VarType",
    "presolve",
    "presolve_standard_form",
    "quicksum",
    "sf_presolve_default",
    "slab_engine",
    "solve_slab",
    "solve_with_presolve",
]
