"""The optimization model container.

A :class:`Model` owns variables and constraints and knows how to export
itself to matrix form and to dispatch solving to a backend:

* ``backend="simplex"`` — the from-scratch two-phase simplex (LP) plus
  branch-and-bound (MILP) implemented in this package;
* ``backend="scipy"`` — ``scipy.optimize.linprog`` / ``milp`` (HiGHS);
* ``backend="auto"`` — simplex/B&B for small models, SciPy beyond a size
  threshold. Tests cross-check the two backends against each other.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.solver.expr import (
    EPS,
    Constraint,
    LinExpr,
    Relation,
    Variable,
    VarType,
)
from repro.solver.solution import Solution, SolveStats, SolveStatus

#: "auto" switches from the built-in simplex to SciPy above this many
#: variables or constraints; the built-in solver is exact but dense.
AUTO_SCIPY_THRESHOLD = 160

_model_counter = itertools.count()

INF = float("inf")


@dataclass
class MatrixForm:
    """Dense matrix export of a model.

    Inequalities are normalized to ``A_ub @ x <= b_ub``. The objective is
    expressed for *minimization*: ``minimize c @ x + c0``; callers that want
    the model's own sense should use ``objective_sign``.
    """

    variables: list[Variable]
    c: np.ndarray
    c0: float
    objective_sign: float  # +1 when the model minimizes, -1 when it maximizes
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray  # 1 where the variable must be integral


class Model:
    """A linear (or mixed-integer linear) optimization model."""

    def __init__(self, name: str = "model", sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ModelError(f"sense must be 'min' or 'max', got {sense!r}")
        self.name = name
        self.sense = sense
        self._id = next(_model_counter)
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective = LinExpr()
        self._names: set[str] = set()

    # -- construction -------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = INF,
        vartype: VarType | str = VarType.CONTINUOUS,
    ) -> Variable:
        """Create a new decision variable.

        The default domain is the non-negative reals, matching both LP
        convention and the non-negative flows of the DSL.
        """
        if isinstance(vartype, str):
            vartype = VarType(vartype)
        if vartype is VarType.BINARY:
            lb = max(lb, 0.0)
            ub = min(ub, 1.0)
        if not name:
            name = f"x{len(self._variables)}"
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        var = Variable(name, len(self._variables), lb, ub, vartype, self._id)
        self._variables.append(var)
        self._names.add(name)
        return var

    def add_vars(
        self,
        count: int,
        prefix: str,
        lb: float = 0.0,
        ub: float = INF,
        vartype: VarType | str = VarType.CONTINUOUS,
    ) -> list[Variable]:
        """Create ``count`` variables named ``{prefix}{i}``."""
        return [
            self.add_var(f"{prefix}{i}", lb=lb, ub=ub, vartype=vartype)
            for i in range(count)
        ]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (build one with <=, >=, ==); "
                f"got {constraint!r}"
            )
        self._check_ownership(constraint.expr)
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> list[Constraint]:
        return [self.add_constraint(c) for c in constraints]

    def set_objective(self, expr: LinExpr | Variable | float, sense: str | None = None) -> None:
        """Set the objective expression (and optionally flip the sense)."""
        expr = LinExpr.coerce(expr)
        self._check_ownership(expr)
        if sense is not None:
            if sense not in ("min", "max"):
                raise ModelError(f"sense must be 'min' or 'max', got {sense!r}")
            self.sense = sense
        self._objective = expr

    def _check_ownership(self, expr: LinExpr) -> None:
        for var in expr.terms:
            if var._model_id != self._id:
                raise ModelError(
                    f"variable {var.name!r} belongs to a different model"
                )

    # -- introspection -------------------------------------------------------
    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def is_mip(self) -> bool:
        """Whether any variable is integral."""
        return any(v.vartype.is_integral for v in self._variables)

    def variable_by_name(self, name: str) -> Variable:
        for var in self._variables:
            if var.name == name:
                return var
        raise KeyError(name)

    def is_feasible(self, values, tol: float = 1e-6) -> bool:
        """Check an assignment against all constraints and bounds."""
        for var in self._variables:
            val = values[var]
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.vartype.is_integral and abs(val - round(val)) > tol:
                return False
        return all(c.is_satisfied(values, tol) for c in self._constraints)

    # -- export ----------------------------------------------------------------
    def to_matrix_form(self) -> MatrixForm:
        """Export to dense matrices with a minimization objective."""
        n = len(self._variables)
        sign = 1.0 if self.sense == "min" else -1.0
        c = np.zeros(n)
        for var, coeff in self._objective.terms.items():
            c[var.index] = sign * coeff
        c0 = sign * self._objective.constant

        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for con in self._constraints:
            row = np.zeros(n)
            for var, coeff in con.expr.terms.items():
                row[var.index] = coeff
            rhs = con.rhs
            if con.relation is Relation.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.relation is Relation.GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        lb = np.array([v.lb for v in self._variables])
        ub = np.array([v.ub for v in self._variables])
        integrality = np.array(
            [1 if v.vartype.is_integral else 0 for v in self._variables]
        )
        return MatrixForm(
            variables=list(self._variables),
            c=c,
            c0=c0,
            objective_sign=sign,
            a_ub=a_ub,
            b_ub=np.array(ub_rhs) if ub_rhs else np.zeros(0),
            a_eq=a_eq,
            b_eq=np.array(eq_rhs) if eq_rhs else np.zeros(0),
            lb=lb,
            ub=ub,
            integrality=integrality,
        )

    # -- solving ----------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: float | None = None,
        node_limit: int = 200_000,
    ) -> Solution:
        """Solve the model and return a :class:`Solution`.

        ``backend`` is one of ``"simplex"`` (built-in exact solver),
        ``"scipy"`` (HiGHS via SciPy), or ``"auto"``.
        """
        start = time.perf_counter()
        if backend == "auto":
            big = (
                self.num_variables > AUTO_SCIPY_THRESHOLD
                or self.num_constraints > AUTO_SCIPY_THRESHOLD
            )
            backend = "scipy" if big else "simplex"

        if backend == "simplex":
            if self.is_mip:
                from repro.solver.branch_and_bound import solve_milp

                solution = solve_milp(
                    self, time_limit=time_limit, node_limit=node_limit
                )
            else:
                from repro.solver.simplex import solve_lp

                solution = solve_lp(self)
        elif backend == "scipy":
            from repro.solver.scipy_backend import solve_scipy

            solution = solve_scipy(self, time_limit=time_limit)
        else:
            raise ModelError(f"unknown backend {backend!r}")

        solution.stats.runtime_seconds = time.perf_counter() - start
        solution.stats.backend = backend
        return solution

    # -- misc ----------------------------------------------------------------
    def clone(self) -> "Model":
        """Deep-copy the model (fresh variables with the same structure)."""
        copy = Model(self.name, self.sense)
        mapping: dict[Variable, Variable] = {}
        for var in self._variables:
            mapping[var] = copy.add_var(var.name, var.lb, var.ub, var.vartype)
        for con in self._constraints:
            terms = {mapping[v]: c for v, c in con.expr.terms.items()}
            expr = LinExpr(terms, con.expr.constant)
            copy.add_constraint(Constraint(expr, con.relation, con.name))
        obj_terms = {mapping[v]: c for v, c in self._objective.terms.items()}
        copy._objective = LinExpr(obj_terms, self._objective.constant)
        return copy

    def pretty(self) -> str:
        """Human-readable rendering of the whole model (debugging aid)."""
        lines = [f"{self.sense} {self._objective!r}", "subject to:"]
        for con in self._constraints:
            lines.append(f"  {con!r}")
        lines.append("bounds:")
        for var in self._variables:
            lb = "-inf" if var.lb == -INF else f"{var.lb:g}"
            ub = "+inf" if var.ub == INF else f"{var.ub:g}"
            kind = "" if var.vartype is VarType.CONTINUOUS else f" [{var.vartype.value}]"
            lines.append(f"  {lb} <= {var.name} <= {ub}{kind}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        kind = "MILP" if self.is_mip else "LP"
        return (
            f"Model({self.name!r}, {kind}, vars={self.num_variables}, "
            f"cons={self.num_constraints}, sense={self.sense})"
        )
