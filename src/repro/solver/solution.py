"""Solution objects returned by the solver backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.solver.expr import LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        return self is SolveStatus.OPTIMAL


@dataclass
class SolveStats:
    """Work counters reported by the backends.

    Not every backend fills every field; SciPy, for example, does not report
    simplex iterations for its interior-point paths.
    """

    iterations: int = 0
    nodes: int = 0
    runtime_seconds: float = 0.0
    backend: str = ""
    presolve_removed_vars: int = 0
    presolve_removed_constraints: int = 0


@dataclass
class Solution:
    """Result of solving a model.

    ``values`` maps every model variable to its value when the status is
    OPTIMAL (and to a best-effort incumbent for NODE_LIMIT); it is empty for
    infeasible/unbounded outcomes.
    """

    status: SolveStatus
    objective: float | None = None
    values: Mapping["Variable", float] = field(default_factory=dict)
    stats: SolveStats = field(default_factory=SolveStats)

    def __getitem__(self, var: "Variable") -> float:
        return self.values[var]

    def value(self, expr: "LinExpr | Variable") -> float:
        """Evaluate an expression (or variable) under this solution."""
        from repro.solver.expr import LinExpr

        return LinExpr.coerce(expr).evaluate(self.values)

    def value_by_name(self, name: str) -> float:
        """Look a variable's value up by name (linear scan; test helper)."""
        for var, val in self.values.items():
            if var.name == name:
                return val
        raise KeyError(name)

    @property
    def is_optimal(self) -> bool:
        return self.status.is_optimal

    def __repr__(self) -> str:
        obj = "None" if self.objective is None else f"{self.objective:.6g}"
        return f"Solution(status={self.status.value}, objective={obj})"
