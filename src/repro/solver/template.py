"""Parametric LP solve templates with warm-started re-solves.

The XPlain pipeline queries the gap oracle thousands of times per subspace,
and for LP-backed domains each query used to rebuild the whole ``Model``
expression graph, re-lower it to standard form, and cold-start the simplex.
Across those queries the LP *structure* never changes — only some
constraint right-hand sides (e.g. TE demand caps) and objective
coefficients (e.g. the pinned-flow priority weight) do.

:class:`LpTemplate` does the expensive work once:

* lower the model to matrix form and then to standard form (keeping the
  row metadata :func:`~repro.solver.standard_form.from_matrix_form` records),
* precompute the variable -> y-column maps for vectorized objective
  retargeting,

and then serves each sample with in-place ``b``/``c`` mutation plus a
basis warm start (:func:`~repro.solver.simplex.solve_with_basis`): phase 2
restarts from the previous optimal basis and falls back to the cold
two-phase simplex when the basis no longer applies. See DESIGN.md
("Batched gap-oracle engine") for measured numbers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ModelError
from repro.solver.expr import Relation, Variable
from repro.solver.model import Model
from repro.solver.simplex import (
    solve_standard_form,
    solve_with_basis,
)
from repro.solver.solution import Solution, SolveStats, SolveStatus
from repro.solver.standard_form import from_matrix_form


class LpTemplate:
    """One LP structure, many solves with varying rhs / objective data.

    The template treats the model captured at construction time as frozen
    structure; integrality is ignored (callers needing MILPs should keep
    using :meth:`Model.solve`). Mutations:

    * :meth:`set_rhs` — overwrite one constraint's right-hand side;
    * :meth:`set_objective_coeff` — overwrite one variable's objective
      coefficient (in the model's own sense).

    Every :meth:`solve` first tries the previous optimal basis and falls
    back to the cold two-phase simplex when warm starting fails.
    """

    def __init__(self, model: Model) -> None:
        if model.is_mip:
            raise ModelError(
                f"model {model.name!r} has integer variables; LP templates "
                "only re-solve continuous structure"
            )
        self.model = model
        self._variables = list(model.variables)
        mf = model.to_matrix_form()
        self._mf = mf
        self._sign = mf.objective_sign
        sf = from_matrix_form(mf, normalize=False)
        self.sf = sf

        # ---- constraint -> standard-form row map --------------------------
        #: constraint name -> (row index in sf.b, rhs sign)
        self._row_of: dict[str, tuple[int, float]] = {}
        ub_i = 0
        eq_i = 0
        for con in model.constraints:
            if con.relation is Relation.LE:
                self._row_of[con.name] = (ub_i, 1.0)
                ub_i += 1
            elif con.relation is Relation.GE:
                self._row_of[con.name] = (ub_i, -1.0)
                ub_i += 1
            else:
                self._row_of[con.name] = (sf.num_slack + eq_i, 1.0)
                eq_i += 1
        assert sf.row_shifts is not None

        # ---- vectorized objective map -------------------------------------
        self._pos_cols = np.array([vm.positive for vm in sf.var_maps])
        neg = [
            (i, vm.negative)
            for i, vm in enumerate(sf.var_maps)
            if vm.negative is not None
        ]
        self._neg_rows = np.array([i for i, _ in neg], dtype=int)
        self._neg_cols = np.array([c for _, c in neg], dtype=int)
        self._var_shifts = np.array([vm.shift for vm in sf.var_maps])
        #: objective coefficients in *minimization* space, model variables
        self._c_model = mf.c.copy()
        self._c0_const = self._sign * model.objective.constant
        self._c_dirty = False
        self._b = sf.b.copy()

        # ---- warm-start state & counters ----------------------------------
        self._basis: list[int] | None = None
        self.warm_solves = 0
        self.cold_solves = 0
        self.iterations = 0
        self.solve_seconds = 0.0

    # -- mutation -----------------------------------------------------------
    def set_rhs(self, constraint, value: float) -> None:
        """Overwrite one constraint's right-hand side for the next solve."""
        name = constraint if isinstance(constraint, str) else constraint.name
        try:
            row, sign = self._row_of[name]
        except KeyError:
            raise ModelError(f"template has no constraint {name!r}") from None
        self._b[row] = sign * value - self.sf.row_shifts[row]

    def set_objective_coeff(self, var: Variable, coeff: float) -> None:
        """Overwrite one variable's objective coefficient (model sense)."""
        self._c_model[var.index] = self._sign * coeff
        self._c_dirty = True

    # -- solving --------------------------------------------------------------
    def _refresh_objective(self) -> None:
        """Re-expand the model-space objective onto the y-columns."""
        sf = self.sf
        c = np.zeros(sf.a.shape[1])
        c[self._pos_cols] = self._c_model
        if self._neg_rows.size:
            c[self._neg_cols] = -self._c_model[self._neg_rows]
        sf.c = c
        sf.c0 = float(self._c0_const + self._c_model @ self._var_shifts)
        self._c_dirty = False

    def solve(self, warm: bool = True) -> Solution:
        """Solve with the current rhs/objective data."""
        start = time.perf_counter()
        sf = self.sf
        sf.b = self._b
        if self._c_dirty:
            self._refresh_objective()

        result = None
        if warm and self._basis is not None:
            result = solve_with_basis(sf, self._basis)
        if result is not None:
            # Any non-None warm outcome (optimal, unbounded, infeasible)
            # is definitive; only a None handoff needs the cold path.
            self.warm_solves += 1
        else:
            result = solve_standard_form(sf)
            self.cold_solves += 1
        self.iterations += result.iterations
        self._basis = result.basis if result.status is SolveStatus.OPTIMAL else None
        self.solve_seconds += time.perf_counter() - start

        stats = SolveStats(iterations=result.iterations, backend="simplex")
        if result.status is not SolveStatus.OPTIMAL:
            return Solution(status=result.status, stats=stats)
        x = sf.recover(result.y)
        values = {var: float(x[i]) for i, var in enumerate(self._variables)}
        objective = self._sign * (result.objective + sf.c0)
        solution = Solution(
            status=SolveStatus.OPTIMAL,
            objective=objective,
            values=values,
            stats=stats,
        )
        stats.runtime_seconds = time.perf_counter() - start
        return solution

    # -- state ----------------------------------------------------------------
    def reset_state(self) -> None:
        """Forget the warm-start basis (counters are kept).

        Sharded parallel execution calls this at every work-unit boundary
        so a unit's solves depend only on the unit's own points — the
        next solve goes through the cold two-phase simplex, after which
        warm chaining resumes within the unit.
        """
        self._basis = None

    # -- introspection --------------------------------------------------------
    def solver_counters(self) -> dict[str, float]:
        """Warm/cold counters for :class:`repro.oracle.stats.OracleStats`."""
        return {
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "lp_iterations": self.iterations,
            "lp_seconds": self.solve_seconds,
        }

    def __repr__(self) -> str:
        m, n = self.sf.a.shape
        return (
            f"LpTemplate({self.model.name!r}, rows={m}, cols={n}, "
            f"warm={self.warm_solves}, cold={self.cold_solves})"
        )
