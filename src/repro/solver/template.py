"""Parametric LP solve templates with warm-started re-solves.

The XPlain pipeline queries the gap oracle thousands of times per subspace,
and for LP-backed domains each query used to rebuild the whole ``Model``
expression graph, re-lower it to standard form, and cold-start the simplex.
Across those queries the LP *structure* never changes — only some
constraint right-hand sides (e.g. TE demand caps) and objective
coefficients (e.g. the pinned-flow priority weight) do.

:class:`LpTemplate` does the expensive work once:

* lower the model to matrix form and then to standard form (keeping the
  row metadata :func:`~repro.solver.standard_form.from_matrix_form` records),
* precompute the variable -> y-column maps for vectorized objective
  retargeting,

and then serves each sample with in-place ``b``/``c`` mutation plus a
basis warm start (:func:`~repro.solver.simplex.solve_with_basis`): phase 2
restarts from the previous optimal basis and falls back to the cold
two-phase simplex when the basis no longer applies. See DESIGN.md
("Batched gap-oracle engine") for measured numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.solver.expr import Relation, Variable
from repro.solver.knobs import sf_presolve_default, slab_engine
from repro.solver.model import Model
from repro.solver.sf_presolve import PresolvedForm, presolve_standard_form
from repro.solver.simplex import (
    solve_standard_form,
    solve_with_basis,
)
from repro.solver.slab import solve_slab
from repro.solver.solution import Solution, SolveStats, SolveStatus
from repro.solver.standard_form import from_matrix_form


@dataclass
class TemplateSlabResult:
    """Model-space results of one batched template solve.

    Rows of ``x`` / entries of ``objectives`` are valid only where ``ok``
    (the per-instance status is OPTIMAL); objectives are in the model's
    own sense, matching :attr:`Solution.objective`.
    """

    statuses: list[SolveStatus]
    objectives: np.ndarray
    x: np.ndarray
    ok: np.ndarray
    iterations: np.ndarray
    warm: np.ndarray


class LpTemplate:
    """One LP structure, many solves with varying rhs / objective data.

    The template treats the model captured at construction time as frozen
    structure; integrality is ignored (callers needing MILPs should keep
    using :meth:`Model.solve`). Mutations:

    * :meth:`set_rhs` — overwrite one constraint's right-hand side;
    * :meth:`set_objective_coeff` — overwrite one variable's objective
      coefficient (in the model's own sense).

    Every :meth:`solve` first tries the previous optimal basis and falls
    back to the cold two-phase simplex when warm starting fails.
    """

    def __init__(
        self,
        model: Model,
        presolve: bool | None = None,
        rhs_ranges: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        if model.is_mip:
            raise ModelError(
                f"model {model.name!r} has integer variables; LP templates "
                "only re-solve continuous structure"
            )
        self.model = model
        self._variables = list(model.variables)
        mf = model.to_matrix_form()
        self._mf = mf
        self._sign = mf.objective_sign
        sf = from_matrix_form(mf, normalize=False)
        self.sf = sf

        # ---- constraint -> standard-form row map --------------------------
        #: constraint name -> (row index in sf.b, rhs sign)
        self._row_of: dict[str, tuple[int, float]] = {}
        ub_i = 0
        eq_i = 0
        for con in model.constraints:
            if con.relation is Relation.LE:
                self._row_of[con.name] = (ub_i, 1.0)
                ub_i += 1
            elif con.relation is Relation.GE:
                self._row_of[con.name] = (ub_i, -1.0)
                ub_i += 1
            else:
                self._row_of[con.name] = (sf.num_slack + eq_i, 1.0)
                eq_i += 1
        assert sf.row_shifts is not None

        # ---- vectorized objective map -------------------------------------
        self._pos_cols = np.array([vm.positive for vm in sf.var_maps])
        neg = [
            (i, vm.negative)
            for i, vm in enumerate(sf.var_maps)
            if vm.negative is not None
        ]
        self._neg_rows = np.array([i for i, _ in neg], dtype=int)
        self._neg_cols = np.array([c for _, c in neg], dtype=int)
        self._var_shifts = np.array([vm.shift for vm in sf.var_maps])
        #: objective coefficients in *minimization* space, model variables
        self._c_model = mf.c.copy()
        self._c0_const = self._sign * model.objective.constant
        self._c_dirty = False
        self._b = sf.b.copy()

        # ---- optional StandardForm presolve -------------------------------
        self._presolved: PresolvedForm | None = None
        if presolve if presolve is not None else sf_presolve_default():
            b_lo = self._b.copy()
            b_hi = self._b.copy()
            for name, (lo, hi) in (rhs_ranges or {}).items():
                try:
                    row, sign = self._row_of[name]
                except KeyError:
                    raise ModelError(
                        f"rhs range names unknown constraint {name!r}"
                    ) from None
                ends = (
                    sign * lo - sf.row_shifts[row],
                    sign * hi - sf.row_shifts[row],
                )
                b_lo[row] = min(ends)
                b_hi[row] = max(ends)
            self._presolved = presolve_standard_form(sf, b_lo, b_hi)

        # ---- warm-start state & counters ----------------------------------
        self._basis: list[int] | None = None
        self.warm_solves = 0
        self.cold_solves = 0
        self.iterations = 0
        self.solve_seconds = 0.0

    # -- mutation -----------------------------------------------------------
    def set_rhs(self, constraint, value: float) -> None:
        """Overwrite one constraint's right-hand side for the next solve."""
        name = constraint if isinstance(constraint, str) else constraint.name
        try:
            row, sign = self._row_of[name]
        except KeyError:
            raise ModelError(f"template has no constraint {name!r}") from None
        self._b[row] = sign * value - self.sf.row_shifts[row]

    def set_objective_coeff(self, var: Variable, coeff: float) -> None:
        """Overwrite one variable's objective coefficient (model sense)."""
        self._c_model[var.index] = self._sign * coeff
        self._c_dirty = True

    # -- solving --------------------------------------------------------------
    def _refresh_objective(self) -> None:
        """Re-expand the model-space objective onto the y-columns."""
        sf = self.sf
        c = np.zeros(sf.a.shape[1])
        c[self._pos_cols] = self._c_model
        if self._neg_rows.size:
            c[self._neg_cols] = -self._c_model[self._neg_rows]
        sf.c = c
        sf.c0 = float(self._c0_const + self._c_model @ self._var_shifts)
        self._c_dirty = False

    def _prepare_run(self):
        """The StandardForm to solve plus the objective constant.

        Without presolve this is ``self.sf`` with the live ``b``; with
        presolve it is the reduced form with mapped rhs/objective (and
        the fixed columns' objective contribution folded into ``c0``).
        """
        sf = self.sf
        if self._c_dirty:
            self._refresh_objective()
        ps = self._presolved
        if ps is None:
            sf.b = self._b
            return sf, sf.c0
        run_sf = ps.sf
        run_sf.b = ps.reduce_b(self._b)
        run_sf.c, c0_delta = ps.reduce_c(sf.c)
        return run_sf, sf.c0 + c0_delta

    def _recover_x(self, y: np.ndarray) -> np.ndarray:
        if self._presolved is not None:
            y = self._presolved.expand_y(y)
        return self.sf.recover(y)

    def solve(self, warm: bool = True) -> Solution:
        """Solve with the current rhs/objective data."""
        start = time.perf_counter()
        if self._presolved is not None and self._presolved.infeasible:
            self.cold_solves += 1
            self._basis = None
            self.solve_seconds += time.perf_counter() - start
            return Solution(
                status=SolveStatus.INFEASIBLE,
                stats=SolveStats(iterations=0, backend="simplex"),
            )
        run_sf, c0 = self._prepare_run()

        result = None
        if warm and self._basis is not None:
            result = solve_with_basis(run_sf, self._basis)
        if result is not None:
            # Any non-None warm outcome (optimal, unbounded, infeasible)
            # is definitive; only a None handoff needs the cold path.
            self.warm_solves += 1
        else:
            result = solve_standard_form(run_sf)
            self.cold_solves += 1
        self.iterations += result.iterations
        self._basis = result.basis if result.status is SolveStatus.OPTIMAL else None
        self.solve_seconds += time.perf_counter() - start

        stats = SolveStats(iterations=result.iterations, backend="simplex")
        if result.status is not SolveStatus.OPTIMAL:
            return Solution(status=result.status, stats=stats)
        x = self._recover_x(result.y)
        values = {var: float(x[i]) for i, var in enumerate(self._variables)}
        objective = self._sign * (result.objective + c0)
        solution = Solution(
            status=SolveStatus.OPTIMAL,
            objective=objective,
            values=values,
            stats=stats,
        )
        stats.runtime_seconds = time.perf_counter() - start
        return solution

    # -- batched solving ------------------------------------------------------
    def rhs_map(self, names: list[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`set_rhs` data for the named constraints.

        Returns ``(rows, signs, shifts)`` so a caller can fill a whole rhs
        matrix with ``b[:, rows] = signs * values - shifts`` — the exact
        elementwise arithmetic :meth:`set_rhs` performs per entry.
        """
        rows = np.empty(len(names), dtype=np.int64)
        signs = np.empty(len(names))
        for i, name in enumerate(names):
            try:
                rows[i], signs[i] = self._row_of[name]
            except KeyError:
                raise ModelError(
                    f"template has no constraint {name!r}"
                ) from None
        return rows, signs, self.sf.row_shifts[rows]

    def base_rhs(self) -> np.ndarray:
        """Copy of the current rhs vector (original row space)."""
        return self._b.copy()

    def base_objective(self) -> np.ndarray:
        """Copy of the current model-space objective coefficients."""
        return self._c_model.copy()

    def solve_slab(
        self,
        b_matrix: np.ndarray,
        c_model_matrix: np.ndarray | None = None,
        engine: str | None = None,
    ) -> TemplateSlabResult:
        """Solve ``K`` instances sharing this template's structure.

        ``b_matrix`` is ``(K, m)`` in original row space (start from
        :meth:`base_rhs`, overwrite via :meth:`rhs_map`);
        ``c_model_matrix`` is ``(K, num_vars)`` of model-space objective
        coefficients as :meth:`set_objective_coeff` would store them, or
        ``None`` to share the current objective. All instances start from
        the carried basis (see :mod:`repro.solver.slab` for the slab
        protocol); the carry then advances to the last instance's basis,
        exactly as a scalar loop over :meth:`solve` would leave it.
        """
        start = time.perf_counter()
        engine = engine or slab_engine()
        if engine not in ("tensor", "scalar"):
            engine = "tensor"
        b_matrix = np.asarray(b_matrix, dtype=float)
        K = b_matrix.shape[0]
        sf = self.sf
        num_y = sf.a.shape[1]

        if self._presolved is not None and self._presolved.infeasible:
            self.cold_solves += K
            self._basis = None
            self.solve_seconds += time.perf_counter() - start
            return TemplateSlabResult(
                statuses=[SolveStatus.INFEASIBLE] * K,
                objectives=np.full(K, np.nan),
                x=np.zeros((K, len(self._variables))),
                ok=np.zeros(K, dtype=bool),
                iterations=np.zeros(K, dtype=np.int64),
                warm=np.zeros(K, dtype=bool),
            )

        # ---- objective expansion (model space -> y space) -----------------
        if c_model_matrix is None:
            if self._c_dirty:
                self._refresh_objective()
            C = None
            c0 = sf.c0
        else:
            c_model_matrix = np.asarray(c_model_matrix, dtype=float)
            C = np.zeros((K, num_y))
            C[:, self._pos_cols] = c_model_matrix
            if self._neg_rows.size:
                C[:, self._neg_cols] = -c_model_matrix[:, self._neg_rows]
            c0 = self._c0_const + c_model_matrix @ self._var_shifts

        # ---- presolve mapping ---------------------------------------------
        ps = self._presolved
        if ps is None:
            run_sf = sf
            B_run = b_matrix
            C_run = C
        else:
            run_sf = ps.sf
            B_run = ps.reduce_b(b_matrix)
            if C is None:
                run_sf.c, c0_delta = ps.reduce_c(sf.c)
                c0 = c0 + c0_delta
            else:
                C_run = C[:, ps.keep_cols]
                if ps.removed_cols.size:
                    c0 = c0 + C[:, ps.removed_cols] @ ps.removed_vals
            if C is None:
                C_run = None

        result = solve_slab(
            run_sf, B_run, C_run, start_basis=self._basis, engine=engine
        )

        warm_count = int(result.warm.sum())
        self.warm_solves += warm_count
        self.cold_solves += K - warm_count
        self.iterations += int(result.iterations.sum())
        self._basis = (
            list(result.carry_basis) if result.carry_basis is not None else None
        )

        # ---- model-space recovery -----------------------------------------
        Y = result.ys
        if ps is not None:
            Y = ps.expand_y(Y)
        X = Y[:, self._pos_cols].copy()
        if self._neg_rows.size:
            X[:, self._neg_rows] = X[:, self._neg_rows] - Y[:, self._neg_cols]
        X = X + self._var_shifts[None, :]
        objectives = self._sign * (result.objectives + c0)
        ok = np.array(
            [s is SolveStatus.OPTIMAL for s in result.statuses], dtype=bool
        )
        self.solve_seconds += time.perf_counter() - start
        return TemplateSlabResult(
            statuses=result.statuses,
            objectives=objectives,
            x=X,
            ok=ok,
            iterations=result.iterations,
            warm=result.warm,
        )

    # -- state ----------------------------------------------------------------
    def reset_state(self) -> None:
        """Forget the warm-start basis (counters are kept).

        Sharded parallel execution calls this at every work-unit boundary
        so a unit's solves depend only on the unit's own points — the
        next solve goes through the cold two-phase simplex, after which
        warm chaining resumes within the unit.
        """
        self._basis = None

    # -- introspection --------------------------------------------------------
    def solver_counters(self) -> dict[str, float]:
        """Warm/cold counters for :class:`repro.oracle.stats.OracleStats`."""
        return {
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "lp_iterations": self.iterations,
            "lp_seconds": self.solve_seconds,
        }

    def __repr__(self) -> str:
        m, n = self.sf.a.shape
        return (
            f"LpTemplate({self.model.name!r}, rows={m}, cols={n}, "
            f"warm={self.warm_solves}, cold={self.cold_solves})"
        )
