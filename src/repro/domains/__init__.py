"""Domain packages: the paper's running examples plus two extensions.

* :mod:`repro.domains.te` — WAN traffic engineering with Demand Pinning;
* :mod:`repro.domains.binpack` — vector bin packing with First Fit;
* :mod:`repro.domains.sched` — makespan scheduling (the paper notes
  Virelay-style scheduling heuristics are "conceptually similar to VBP");
* :mod:`repro.domains.caching` — cache eviction, LRU/FIFO vs. Belady's
  offline optimal (sequence-structured inputs).

Each package registers itself with the plugin registry
(:mod:`repro.domains.registry`) through a ``plugin.py`` descriptor; the
CLI, campaign specs, and the analysis service resolve domains through the
registry, so adding a domain is a one-package drop-in.
"""

from repro.domains.registry import (
    DomainKnob,
    DomainPlugin,
    DomainRegistry,
    registry,
)

__all__ = ["DomainKnob", "DomainPlugin", "DomainRegistry", "registry"]
