"""Domain packages: the paper's running examples plus one extension.

* :mod:`repro.domains.te` — WAN traffic engineering with Demand Pinning;
* :mod:`repro.domains.binpack` — vector bin packing with First Fit;
* :mod:`repro.domains.sched` — makespan scheduling (the paper notes
  Virelay-style scheduling heuristics are "conceptually similar to VBP").
"""
