"""The domain plugin registry: every heuristic domain as a drop-in package.

XPlain's pitch is one analysis pipeline for *many* heuristics. This module
makes that literal: a :class:`DomainPlugin` describes one domain package —
its problem factory, typed knobs, smoke-sized defaults, figure presets,
and pipeline-config overrides — and a :class:`DomainRegistry` maps domain
names (and aliases) to plugins. Everything that used to hardcode domain
names consults the registry instead:

* the CLI's ``repro analyze <domain>`` subcommands (plus the legacy
  ``dp``/``vbp``/``sched`` top-level aliases) and ``repro domains``;
* :meth:`repro.parallel.spec.ProblemSpec.from_dict`, which accepts a
  ``{"domain": ..., "kwargs": ...}`` problem block in campaign specs;
* the analysis service's ``GET /domains`` endpoint;
* the CI ``domain-matrix`` job, which enumerates
  ``repro domains --json`` so a new domain is CI-covered automatically.

Registration is entry-point-style: dropping a package under
``repro/domains/<name>/`` with a ``plugin.py`` module that defines a
module-level ``PLUGIN`` (or ``PLUGINS`` list) is all it takes —
:func:`discover_plugins` scans the ``repro.domains`` namespace with
:mod:`pkgutil`, so no central list needs editing. Plugin modules must
stay import-light (the factory is a dotted string, resolved lazily), so
listing domains never pays for building them.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import AnalyzerError

#: knob value types a plugin may declare (mapped onto argparse by the CLI)
KNOB_TYPES = ("int", "float", "str", "flag")


@dataclass(frozen=True)
class DomainKnob:
    """One typed factory argument a domain exposes on the CLI.

    ``name`` is the factory kwarg; ``cli`` the CLI option spelling when it
    differs (``num_balls`` is ``--balls`` for backward compatibility).
    """

    name: str
    type: str
    default: object
    help: str = ""
    cli: str | None = None
    choices: tuple | None = None

    def __post_init__(self) -> None:
        if self.type not in KNOB_TYPES:
            raise AnalyzerError(
                f"knob {self.name!r} has unknown type {self.type!r}; "
                f"expected one of {KNOB_TYPES}"
            )
        if self.type == "flag" and self.default is not False:
            raise AnalyzerError(
                f"flag knob {self.name!r} must default to False"
            )

    @property
    def cli_option(self) -> str:
        """The CLI option string, e.g. ``--d-max``."""
        return "--" + (self.cli or self.name).replace("_", "-")

    @property
    def dest(self) -> str:
        """The argparse destination attribute for this knob."""
        return (self.cli or self.name).replace("-", "_")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.type,
            "default": self.default,
            "help": self.help,
            "cli": self.cli_option,
            "choices": list(self.choices) if self.choices else None,
        }


@dataclass(frozen=True)
class DomainPlugin:
    """Descriptor of one domain package, registered by name."""

    #: canonical registry name (``repro analyze <name>``)
    name: str
    #: one-line human description for listings
    title: str
    #: ``"package.module:callable"`` problem factory
    factory: str
    #: alternative names that resolve to this plugin (``dp`` -> ``te``)
    aliases: tuple[str, ...] = ()
    #: typed factory arguments exposed as CLI options
    knobs: tuple[DomainKnob, ...] = ()
    #: tiny factory kwargs for CI smoke runs and registry round-trip tests
    smoke_kwargs: Mapping[str, object] = field(default_factory=dict)
    #: :class:`~repro.core.config.XPlainConfig` overrides ``analyze``
    #: applies for this domain (e.g. forcing the black-box analyzer)
    config_defaults: Mapping[str, object] = field(default_factory=dict)
    #: named figure presets: preset name -> factory kwarg overrides
    presets: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: declared capabilities (informational; shown by listings):
    #: e.g. "exact-encoding", "native-batch-oracle", "dsl-graph"
    capabilities: tuple[str, ...] = ()
    #: top-level CLI subcommands kept as backward-compatible aliases of
    #: ``analyze <name>`` (the pre-registry command names)
    legacy_cli: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if ":" not in self.factory:
            raise AnalyzerError(
                f"domain {self.name!r} factory {self.factory!r} must be "
                "'package.module:callable'"
            )
        knob_names = {knob.name for knob in self.knobs}
        for kwarg in self.smoke_kwargs:
            if kwarg not in knob_names:
                raise AnalyzerError(
                    f"domain {self.name!r} smoke kwarg {kwarg!r} is not a "
                    f"declared knob ({sorted(knob_names)})"
                )
        for preset, overrides in self.presets.items():
            unknown = set(overrides) - knob_names
            if unknown:
                raise AnalyzerError(
                    f"domain {self.name!r} preset {preset!r} overrides "
                    f"unknown knobs {sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    def problem_spec(self, **kwargs):
        """A :class:`~repro.parallel.spec.ProblemSpec` for this domain."""
        from repro.parallel.spec import ProblemSpec

        return ProblemSpec(factory=self.factory, kwargs=dict(kwargs))

    def smoke_spec(self):
        """The tiny smoke-sized problem spec (CI, round-trip tests)."""
        return self.problem_spec(**dict(self.smoke_kwargs))

    def build(self, **kwargs):
        """Construct the domain's :class:`AnalyzedProblem` directly."""
        return self.problem_spec(**kwargs).build()

    def default_kwargs(self) -> dict:
        """Factory kwargs at every knob's declared default."""
        return {knob.name: knob.default for knob in self.knobs}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe descriptor (``repro domains --json``, ``/domains``)."""
        return {
            "name": self.name,
            "title": self.title,
            "factory": self.factory,
            "aliases": list(self.aliases),
            "knobs": [knob.to_dict() for knob in self.knobs],
            "smoke_kwargs": dict(self.smoke_kwargs),
            "config_defaults": dict(self.config_defaults),
            "presets": {k: dict(v) for k, v in self.presets.items()},
            "capabilities": list(self.capabilities),
            "legacy_cli": list(self.legacy_cli),
        }


# ----------------------------------------------------------------------
class DomainRegistry:
    """Name -> :class:`DomainPlugin` mapping with alias resolution."""

    def __init__(self) -> None:
        self._plugins: dict[str, DomainPlugin] = {}
        self._aliases: dict[str, str] = {}

    def register(self, plugin: DomainPlugin) -> DomainPlugin:
        """Add a plugin; name/alias collisions fail loudly."""
        for taken in (plugin.name, *plugin.aliases):
            if taken in self._plugins or taken in self._aliases:
                raise AnalyzerError(
                    f"domain name {taken!r} is already registered "
                    f"(names: {self.names()})"
                )
        self._plugins[plugin.name] = plugin
        for alias in plugin.aliases:
            self._aliases[alias] = plugin.name
        return plugin

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Canonical plugin names, sorted."""
        return sorted(self._plugins)

    def plugins(self) -> list[DomainPlugin]:
        """All plugins in name order."""
        return [self._plugins[name] for name in self.names()]

    def get(self, name: str) -> DomainPlugin:
        """Resolve a name or alias; unknown names list what *is* registered."""
        canonical = self._aliases.get(name, name)
        try:
            return self._plugins[canonical]
        except KeyError:
            raise AnalyzerError(
                f"unknown domain {name!r}; registered domains: "
                f"{', '.join(self.names()) or '(none)'} "
                "(see `repro domains`)"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._plugins or name in self._aliases

    def __iter__(self) -> Iterator[DomainPlugin]:
        return iter(self.plugins())

    def __len__(self) -> int:
        return len(self._plugins)


# ----------------------------------------------------------------------
def discover_plugins(registry: DomainRegistry | None = None) -> DomainRegistry:
    """Scan ``repro.domains.*`` packages for ``plugin`` modules.

    A domain package opts in by shipping ``plugin.py`` with a module-level
    ``PLUGIN`` (or a ``PLUGINS`` list). Packages without one are simply
    not registered — no error, so helper packages can coexist.
    """
    import repro.domains as domains_pkg

    registry = registry if registry is not None else DomainRegistry()
    for info in sorted(
        pkgutil.iter_modules(domains_pkg.__path__), key=lambda m: m.name
    ):
        if not info.ispkg:
            continue
        module_name = f"repro.domains.{info.name}.plugin"
        try:
            module = importlib.import_module(module_name)
        except ModuleNotFoundError as exc:
            if exc.name == module_name:
                continue  # package ships no plugin — fine
            raise
        plugins = getattr(module, "PLUGINS", None)
        if plugins is None:
            plugin = getattr(module, "PLUGIN", None)
            if plugin is None:
                raise AnalyzerError(
                    f"{module_name} defines neither PLUGIN nor PLUGINS"
                )
            plugins = [plugin]
        for plugin in plugins:
            registry.register(plugin)
    return registry


_REGISTRY: DomainRegistry | None = None


def registry() -> DomainRegistry:
    """The process-wide registry, discovered once and cached."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = discover_plugins()
    return _REGISTRY


def reset_registry() -> None:
    """Drop the cached registry (tests that register throwaway plugins)."""
    global _REGISTRY
    _REGISTRY = None


# ----------------------------------------------------------------------
#: pipeline defaults of the generated smoke campaigns: one subspace,
#: small sample pools — minutes of CI, not hours
SMOKE_CAMPAIGN_DEFAULTS = {
    "explainer_samples": 40,
    "generalizer_samples": 40,
    "generator": {
        "max_subspaces": 1,
        "tree_extra_samples": 60,
        "significance_pairs": 12,
    },
}


def smoke_campaign_spec(domains: list[str] | None = None, seed: int = 7) -> dict:
    """A ready-to-run one-unit-per-domain campaign spec (JSON-safe).

    ``repro domains --campaign-spec <domain|all>`` prints this; the CI
    ``domain-matrix`` job feeds it straight to ``repro campaign``, so a
    freshly registered domain gets campaign coverage with zero CI edits.
    Problem blocks are domain-addressed on purpose — the campaign path
    then exercises the registry resolution in
    :meth:`~repro.parallel.spec.ProblemSpec.from_dict`.
    """
    reg = registry()
    plugins = (
        reg.plugins()
        if domains is None
        else [reg.get(name) for name in domains]
    )
    jobs = [
        {
            "name": f"{plugin.name}-smoke",
            "problem": {
                "domain": plugin.name,
                "kwargs": dict(plugin.smoke_kwargs),
            },
            "config": dict(plugin.config_defaults),
        }
        for plugin in plugins
    ]
    return {
        "name": "domain-smoke"
        if domains is None or len(domains) != 1
        else f"{jobs[0]['name']}",
        "seed": seed,
        "defaults": {
            "explainer_samples": SMOKE_CAMPAIGN_DEFAULTS["explainer_samples"],
            "generalizer_samples": SMOKE_CAMPAIGN_DEFAULTS[
                "generalizer_samples"
            ],
            "generator": dict(SMOKE_CAMPAIGN_DEFAULTS["generator"]),
        },
        "jobs": jobs,
    }
