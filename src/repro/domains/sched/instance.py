"""Makespan scheduling instances.

The paper remarks that "the scheduling examples Virley studies are
conceptually similar to VBP, and we think our discussions directly
translate to those use-cases" — this package is that translation: jobs with
durations onto identical machines, minimizing makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DslError


@dataclass(frozen=True)
class SchedInstance:
    """Jobs (durations) to be placed on identical machines."""

    durations: tuple[float, ...]
    num_machines: int

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise DslError("need at least one machine")
        if not self.durations:
            raise DslError("need at least one job")
        for d in self.durations:
            if d < 0:
                raise DslError(f"negative duration {d}")

    @property
    def num_jobs(self) -> int:
        return len(self.durations)

    @property
    def duration_array(self) -> np.ndarray:
        return np.array(self.durations)

    def with_durations(self, durations) -> "SchedInstance":
        return SchedInstance(
            tuple(float(d) for d in np.asarray(durations, dtype=float).ravel()),
            self.num_machines,
        )


@dataclass
class Schedule:
    """A job -> machine assignment with its makespan."""

    assignment: list[int]
    algorithm: str = ""

    def machine_loads(self, instance: SchedInstance) -> np.ndarray:
        loads = np.zeros(instance.num_machines)
        for job, machine in enumerate(self.assignment):
            loads[machine] += instance.durations[job]
        return loads

    def makespan(self, instance: SchedInstance) -> float:
        return float(self.machine_loads(instance).max())

    def validate(self, instance: SchedInstance) -> bool:
        return all(
            0 <= m < instance.num_machines for m in self.assignment
        ) and len(self.assignment) == instance.num_jobs
