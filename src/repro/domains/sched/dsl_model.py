"""List scheduling in the XPlain DSL.

Structurally the VBP picture (Fig. 4b) with machines in place of bins:
jobs are PICK sources whose supply is the job duration, machines are SPLIT
nodes draining into a "load" sink. The makespan objective itself lives in
the oracles; the graph provides the decision structure the explainer
scores, exactly as for VBP.
"""

from __future__ import annotations

from repro.domains.sched.instance import SchedInstance, Schedule
from repro.dsl import FlowGraph, InputSpec, NodeKind

LOAD = "load"


def job_node(i: int) -> str:
    return f"job[{i}]"


def machine_node(j: int) -> str:
    return f"machine[{j}]"


def build_sched_graph(
    num_jobs: int,
    num_machines: int,
    max_duration: float = 1.0,
    name: str = "sched",
) -> FlowGraph:
    graph = FlowGraph(name)
    graph.add_node(LOAD, NodeKind.SINK, metadata={"role": "load"})
    for j in range(num_machines):
        graph.add_node(
            machine_node(j),
            NodeKind.SPLIT,
            metadata={"role": "machine", "group": "MACHINES", "index": j},
        )
        graph.add_edge(machine_node(j), LOAD)
    for i in range(num_jobs):
        graph.add_node(
            job_node(i),
            NodeKind.SOURCE,
            NodeKind.PICK,
            supply=InputSpec(0.0, max_duration),
            metadata={"role": "job", "group": "JOBS", "index": i},
        )
        for j in range(num_machines):
            graph.add_edge(
                job_node(i),
                machine_node(j),
                metadata={"role": "assign", "job": i, "machine": j},
            )
    graph.set_objective(LOAD, sense="max")
    graph.validate()
    return graph


def sched_flows_for_schedule(
    graph: FlowGraph,
    instance: SchedInstance,
    schedule: Schedule,
) -> dict[tuple[str, str], float]:
    """Map a schedule onto the graph edges (explainer input)."""
    flows: dict[tuple[str, str], float] = {e.key: 0.0 for e in graph.edges}
    for i, machine in enumerate(schedule.assignment):
        if machine < 0:
            continue
        duration = float(instance.durations[i])
        flows[(job_node(i), machine_node(machine))] = duration
        flows[(machine_node(machine), LOAD)] += duration
    return flows
