"""Scheduling heuristics: list scheduling (Graham) and LPT."""

from __future__ import annotations

import numpy as np

from repro.domains.sched.instance import SchedInstance, Schedule


def list_scheduling(instance: SchedInstance) -> Schedule:
    """Graham's list scheduling: each job goes to the least-loaded machine.

    Ties break toward the lower machine index (deterministic, which the
    analyzer encoding relies on).
    """
    loads = np.zeros(instance.num_machines)
    assignment: list[int] = []
    for duration in instance.durations:
        machine = int(np.argmin(loads))
        loads[machine] += duration
        assignment.append(machine)
    return Schedule(assignment, algorithm="list_scheduling")


def longest_processing_time(instance: SchedInstance) -> Schedule:
    """LPT: sort jobs by decreasing duration, then list-schedule."""
    order = np.argsort(-instance.duration_array, kind="stable")
    loads = np.zeros(instance.num_machines)
    assignment = [-1] * instance.num_jobs
    for job in order:
        machine = int(np.argmin(loads))
        loads[machine] += instance.durations[int(job)]
        assignment[int(job)] = machine
    return Schedule(assignment, algorithm="lpt")
