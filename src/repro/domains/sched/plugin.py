"""Registry descriptor for the makespan-scheduling domain.

Ships no exact encoding by design (it demonstrates the black-box
analyzer path), which ``config_defaults`` makes explicit so the legacy
``repro sched`` behavior is preserved verbatim.
"""

from repro.domains.registry import DomainKnob, DomainPlugin

PLUGIN = DomainPlugin(
    name="sched",
    title="Makespan scheduling: Graham's list scheduling vs. optimal",
    factory="repro.domains.sched:list_scheduling_problem",
    aliases=("scheduling",),
    knobs=(
        DomainKnob(
            "num_jobs",
            "int",
            5,
            help="jobs to schedule (one input axis per duration)",
            cli="jobs",
        ),
        DomainKnob(
            "num_machines",
            "int",
            2,
            help="identical machines",
            cli="machines",
        ),
    ),
    smoke_kwargs={"num_jobs": 3, "num_machines": 2},
    config_defaults={"analyzer": "blackbox"},
    capabilities=("dsl-graph", "blackbox-analyzer"),
    legacy_cli=("sched",),
)
