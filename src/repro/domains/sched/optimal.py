"""Optimal makespan scheduling via MILP."""

from __future__ import annotations

from repro.domains.sched.instance import SchedInstance, Schedule
from repro.exceptions import AnalyzerError
from repro.solver import Model, SolveStatus, VarType, quicksum


def solve_optimal_schedule(
    instance: SchedInstance, backend: str = "scipy"
) -> Schedule:
    """Minimize the makespan over all job -> machine assignments."""
    n, m = instance.num_jobs, instance.num_machines
    model = Model("optimal_sched", sense="min")
    assign = {
        (i, j): model.add_var(f"x[{i}|{j}]", vartype=VarType.BINARY)
        for i in range(n)
        for j in range(m)
    }
    total = float(sum(instance.durations))
    makespan = model.add_var("makespan", lb=0.0, ub=total)
    for i in range(n):
        model.add_constraint(
            quicksum(assign[i, j] for j in range(m)) == 1, name=f"place[{i}]"
        )
    for j in range(m):
        load = quicksum(
            float(instance.durations[i]) * assign[i, j] for i in range(n)
        )
        model.add_constraint(load <= makespan, name=f"span[{j}]")
    model.set_objective(makespan)
    solution = model.solve(backend=backend)
    if solution.status is not SolveStatus.OPTIMAL:
        raise AnalyzerError(
            f"optimal scheduling failed: {solution.status.value}"
        )
    assignment = [-1] * n
    for (i, j), var in assign.items():
        if solution.values[var] > 0.5:
            assignment[i] = j
    return Schedule(assignment, algorithm="optimal")


def optimal_makespan(instance: SchedInstance, backend: str = "scipy") -> float:
    schedule = solve_optimal_schedule(instance, backend=backend)
    return schedule.makespan(instance)
