"""Makespan scheduling (the paper's "conceptually similar to VBP" note)."""

from repro.domains.sched.dsl_model import (
    build_sched_graph,
    sched_flows_for_schedule,
)
from repro.domains.sched.heuristics import (
    list_scheduling,
    longest_processing_time,
)
from repro.domains.sched.instance import SchedInstance, Schedule
from repro.domains.sched.optimal import optimal_makespan, solve_optimal_schedule
from repro.domains.sched.problem import list_scheduling_problem

__all__ = [
    "SchedInstance",
    "Schedule",
    "build_sched_graph",
    "list_scheduling",
    "list_scheduling_problem",
    "longest_processing_time",
    "optimal_makespan",
    "sched_flows_for_schedule",
    "solve_optimal_schedule",
]
