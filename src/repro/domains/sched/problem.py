"""List-scheduling-vs-optimal packaged for the XPlain pipeline.

This domain intentionally ships *without* an exact MetaOpt encoding: it
demonstrates (and tests) the black-box analyzer path of
:class:`~repro.analyzer.blackbox.BlackBoxAnalyzer` — the route an operator
takes before investing in a full bilevel rewrite of their heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.analyzer.interface import AnalyzedProblem, GapSample
from repro.domains.sched.dsl_model import (
    build_sched_graph,
    sched_flows_for_schedule,
)
from repro.domains.sched.heuristics import list_scheduling
from repro.domains.sched.instance import SchedInstance
from repro.domains.sched.optimal import solve_optimal_schedule
from repro.subspace.region import Box


def list_scheduling_problem(
    num_jobs: int,
    num_machines: int,
    max_duration: float = 1.0,
    name: str | None = None,
) -> AnalyzedProblem:
    """Gap of Graham's list scheduling vs the optimal makespan.

    The makespan is minimized, so the gap convention negates values (same
    as VBP): gap = heuristic makespan - optimal makespan >= 0.
    """
    template = SchedInstance(
        tuple([0.0] * num_jobs), num_machines=num_machines
    )

    def evaluate(x: np.ndarray) -> GapSample:
        instance = template.with_durations(x)
        heuristic = list_scheduling(instance)
        optimal = solve_optimal_schedule(instance)
        return GapSample(
            x=np.asarray(x, dtype=float),
            benchmark_value=-optimal.makespan(instance),
            heuristic_value=-heuristic.makespan(instance),
        )

    graph = build_sched_graph(
        num_jobs, num_machines, max_duration=max_duration
    )

    def heuristic_flows(x: np.ndarray):
        instance = template.with_durations(x)
        return sched_flows_for_schedule(
            graph, instance, list_scheduling(instance)
        )

    def benchmark_flows(x: np.ndarray):
        instance = template.with_durations(x)
        return sched_flows_for_schedule(
            graph, instance, solve_optimal_schedule(instance)
        )

    def longest_job(x: np.ndarray) -> float:
        return float(np.max(x))

    def duration_spread(x: np.ndarray) -> float:
        return float(np.max(x) - np.min(x))

    from repro.parallel.spec import ProblemSpec

    return AnalyzedProblem(
        spec=ProblemSpec(
            factory="repro.domains.sched:list_scheduling_problem",
            kwargs={
                "num_jobs": num_jobs,
                "num_machines": num_machines,
                "max_duration": max_duration,
                "name": name,
            },
        ),
        name=name or f"list_scheduling[{num_jobs}x{num_machines}]",
        input_names=[f"J{i}" for i in range(num_jobs)],
        input_box=Box.from_arrays(
            np.zeros(num_jobs), np.full(num_jobs, max_duration)
        ),
        evaluate=evaluate,
        graph=graph,
        exact_model=None,  # black-box analyzer path by design
        heuristic_flows=heuristic_flows,
        benchmark_flows=benchmark_flows,
        features={
            "longest_job": longest_job,
            "duration_spread": duration_spread,
            "total_work": lambda x: float(np.sum(x)),
        },
        instance_info={
            "num_jobs": num_jobs,
            "num_machines": num_machines,
            "max_duration": max_duration,
        },
    )
