"""Registry descriptor for the traffic-engineering (Demand Pinning) domain.

Import-light by design: the factory is named by its dotted path and only
resolved when a problem is actually built.
"""

from repro.domains.registry import DomainKnob, DomainPlugin

PLUGIN = DomainPlugin(
    name="te",
    title="WAN traffic engineering: Demand Pinning vs. optimal max-flow",
    factory="repro.domains.te:fig1a_demand_pinning_problem",
    aliases=("dp", "demand-pinning"),
    knobs=(
        DomainKnob(
            "threshold",
            "float",
            50.0,
            help="pinning threshold T (demands <= T take their shortest path)",
        ),
        DomainKnob(
            "d_max",
            "float",
            100.0,
            help="upper bound of every demand's input range",
            cli="d-max",
        ),
        DomainKnob(
            "fig4a",
            "flag",
            False,
            help="use the eight demands of Fig. 4a instead of the three "
            "of Fig. 1a",
        ),
    ),
    smoke_kwargs={"threshold": 50.0, "d_max": 100.0},
    presets={"fig1a": {}, "fig4a": {"fig4a": True}},
    capabilities=("exact-encoding", "native-batch-oracle", "dsl-graph"),
    legacy_cli=("dp",),
)
